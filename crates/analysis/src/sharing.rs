//! Pairwise and per-thread sharing metrics (the paper's §2 inputs).

use crate::matrix::SymMatrix;
use crate::profile::AddressProfile;
use placesim_trace::{ProgramTrace, ThreadId};
use serde::{Deserialize, Serialize};

/// Per-thread sharing aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSharing {
    /// Data references to shared addresses (addresses touched by ≥ 2 threads).
    pub shared_refs: u64,
    /// Data references to private addresses.
    pub private_refs: u64,
    /// Distinct shared addresses this thread touched.
    pub shared_addrs: u64,
    /// Distinct private addresses this thread touched.
    pub private_addrs: u64,
    /// Stores to shared addresses (potential invalidation sources).
    pub writes_to_shared: u64,
}

impl ThreadSharing {
    /// All data references of the thread.
    pub fn data_refs(&self) -> u64 {
        self.shared_refs + self.private_refs
    }

    /// The paper's "% shared refs": shared refs over data refs, 0–100.
    pub fn shared_percent(&self) -> f64 {
        let total = self.data_refs();
        if total == 0 {
            0.0
        } else {
            100.0 * self.shared_refs as f64 / total as f64
        }
    }

    /// The paper's "references per shared address" for this thread.
    pub fn refs_per_shared_addr(&self) -> f64 {
        if self.shared_addrs == 0 {
            0.0
        } else {
            self.shared_refs as f64 / self.shared_addrs as f64
        }
    }
}

/// Statically measured inter-thread sharing of one program.
///
/// Derived from an [`AddressProfile`] in one pass over its addresses:
///
/// * `pair_shared_refs(a, b)` — the paper's `shared-references(tₐ, t_b)`:
///   references by both threads to their common data addresses
///   (SHARE-REFS, MIN-PRIV metrics),
/// * `pair_write_shared_refs(a, b)` — the same, restricted to
///   *write-shared* addresses (MAX-WRITES, MIN-INVS metrics),
/// * `pair_shared_addrs(a, b)` — the number of common addresses
///   (SHARE-ADDR's refs-per-shared-address denominator),
/// * per-thread aggregates ([`ThreadSharing`]) for MIN-PRIV's private
///   footprint and Table 2's "% shared refs".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingAnalysis {
    pair_refs: SymMatrix<u64>,
    pair_write_refs: SymMatrix<u64>,
    pair_addrs: SymMatrix<u64>,
    per_thread: Vec<ThreadSharing>,
    shared_addresses: u64,
    total_addresses: u64,
}

impl SharingAnalysis {
    /// Profiles `prog` and computes all sharing metrics.
    pub fn measure(prog: &ProgramTrace) -> Self {
        Self::from_profile(&AddressProfile::build(prog))
    }

    /// Computes all sharing metrics from a pre-built profile.
    pub fn from_profile(profile: &AddressProfile) -> Self {
        let n = profile.thread_count();
        let mut pair_refs = SymMatrix::new(n, 0u64);
        let mut pair_write_refs = SymMatrix::new(n, 0u64);
        let mut pair_addrs = SymMatrix::new(n, 0u64);
        let mut per_thread = vec![ThreadSharing::default(); n];
        let mut shared_addresses = 0u64;

        for (_addr, pa) in profile.iter() {
            let counts = pa.counts();
            if pa.is_shared() {
                shared_addresses += 1;
                let write_shared = pa.is_write_shared();
                for (k, a) in counts.iter().enumerate() {
                    let ts = &mut per_thread[a.thread.index()];
                    ts.shared_refs += a.total();
                    ts.shared_addrs += 1;
                    ts.writes_to_shared += a.writes as u64;
                    for b in &counts[k + 1..] {
                        let refs = a.total() + b.total();
                        pair_refs.add(a.thread.index(), b.thread.index(), refs);
                        pair_addrs.add(a.thread.index(), b.thread.index(), 1);
                        if write_shared {
                            pair_write_refs.add(a.thread.index(), b.thread.index(), refs);
                        }
                    }
                }
            } else if let Some(only) = counts.first() {
                let ts = &mut per_thread[only.thread.index()];
                ts.private_refs += only.total();
                ts.private_addrs += 1;
            }
        }

        SharingAnalysis {
            pair_refs,
            pair_write_refs,
            pair_addrs,
            per_thread,
            shared_addresses,
            total_addresses: profile.address_count() as u64,
        }
    }

    /// Number of threads analyzed.
    pub fn thread_count(&self) -> usize {
        self.per_thread.len()
    }

    /// The paper's `shared-references(tₐ, t_b)`.
    pub fn pair_shared_refs(&self, a: ThreadId, b: ThreadId) -> u64 {
        self.pair_refs.get(a.index(), b.index())
    }

    /// Pairwise shared references restricted to write-shared addresses.
    pub fn pair_write_shared_refs(&self, a: ThreadId, b: ThreadId) -> u64 {
        self.pair_write_refs.get(a.index(), b.index())
    }

    /// Number of data addresses the two threads have in common.
    pub fn pair_shared_addrs(&self, a: ThreadId, b: ThreadId) -> u64 {
        self.pair_addrs.get(a.index(), b.index())
    }

    /// The full pairwise shared-references matrix.
    pub fn pair_refs_matrix(&self) -> &SymMatrix<u64> {
        &self.pair_refs
    }

    /// The full pairwise write-shared-references matrix.
    pub fn pair_write_refs_matrix(&self) -> &SymMatrix<u64> {
        &self.pair_write_refs
    }

    /// The full pairwise common-address-count matrix.
    pub fn pair_addrs_matrix(&self) -> &SymMatrix<u64> {
        &self.pair_addrs
    }

    /// Per-thread aggregates in thread-id order.
    pub fn per_thread(&self) -> &[ThreadSharing] {
        &self.per_thread
    }

    /// Per-thread aggregates for one thread.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn thread(&self, id: ThreadId) -> &ThreadSharing {
        &self.per_thread[id.index()]
    }

    /// Number of distinct shared data addresses in the program.
    pub fn shared_address_count(&self) -> u64 {
        self.shared_addresses
    }

    /// Number of distinct data addresses in the program.
    pub fn total_address_count(&self) -> u64 {
        self.total_addresses
    }

    /// Total statically counted pairwise shared references, summed over
    /// all thread pairs (Table 4's "static" column numerator).
    pub fn total_pairwise_shared_refs(&self) -> u64 {
        self.pair_refs.iter_pairs().map(|(_, _, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef, ThreadTrace};

    /// T0 reads X(0x100) twice and writes private P(0x900).
    /// T1 writes X once and reads Y(0x200).
    /// T2 reads Y twice.
    fn prog() -> ProgramTrace {
        let t0: ThreadTrace = [
            MemRef::read(Address::new(0x100)),
            MemRef::read(Address::new(0x100)),
            MemRef::write(Address::new(0x900)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [
            MemRef::write(Address::new(0x100)),
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        let t2: ThreadTrace = [
            MemRef::read(Address::new(0x200)),
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        ProgramTrace::new("p", vec![t0, t1, t2])
    }

    #[test]
    fn pairwise_shared_refs() {
        let s = SharingAnalysis::measure(&prog());
        let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));
        // X common to T0/T1: 2 + 1 = 3 refs.
        assert_eq!(s.pair_shared_refs(t0, t1), 3);
        // Y common to T1/T2: 1 + 2 = 3 refs.
        assert_eq!(s.pair_shared_refs(t1, t2), 3);
        // T0/T2 share nothing.
        assert_eq!(s.pair_shared_refs(t0, t2), 0);
    }

    #[test]
    fn write_shared_restriction() {
        let s = SharingAnalysis::measure(&prog());
        let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));
        // X is write-shared (T1 writes it); Y is read-only shared.
        assert_eq!(s.pair_write_shared_refs(t0, t1), 3);
        assert_eq!(s.pair_write_shared_refs(t1, t2), 0);
        assert_eq!(s.pair_write_shared_refs(t0, t2), 0);
    }

    #[test]
    fn shared_address_counts() {
        let s = SharingAnalysis::measure(&prog());
        let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));
        assert_eq!(s.pair_shared_addrs(t0, t1), 1);
        assert_eq!(s.pair_shared_addrs(t1, t2), 1);
        assert_eq!(s.pair_shared_addrs(t0, t2), 0);
        assert_eq!(s.shared_address_count(), 2);
        assert_eq!(s.total_address_count(), 3);
    }

    #[test]
    fn per_thread_aggregates() {
        let s = SharingAnalysis::measure(&prog());
        let t0 = s.thread(ThreadId::new(0));
        assert_eq!(t0.shared_refs, 2);
        assert_eq!(t0.private_refs, 1);
        assert_eq!(t0.shared_addrs, 1);
        assert_eq!(t0.private_addrs, 1);
        assert_eq!(t0.writes_to_shared, 0);
        assert!((t0.shared_percent() - 200.0 / 3.0).abs() < 1e-9);
        assert!((t0.refs_per_shared_addr() - 2.0).abs() < 1e-12);

        let t1 = s.thread(ThreadId::new(1));
        assert_eq!(t1.shared_refs, 2);
        assert_eq!(t1.writes_to_shared, 1);
        assert_eq!(t1.private_refs, 0);
    }

    #[test]
    fn totals() {
        let s = SharingAnalysis::measure(&prog());
        assert_eq!(s.total_pairwise_shared_refs(), 6);
        assert_eq!(s.thread_count(), 3);
    }

    #[test]
    fn empty_thread_sharing_percentages() {
        let ts = ThreadSharing::default();
        assert_eq!(ts.shared_percent(), 0.0);
        assert_eq!(ts.refs_per_shared_addr(), 0.0);
    }
}
