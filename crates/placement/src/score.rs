//! Lexicographic cluster-combining scores.

use std::cmp::Ordering;

/// A two-level lexicographic score for a candidate cluster combination.
///
/// Higher scores combine first. The secondary component breaks primary
/// ties (e.g. SHARE-ADDR prefers, among pairs with equal shared
/// references, the pair with the denser shared working set).
///
/// Scores must be finite; constructing a NaN or infinite score panics so
/// ordering stays total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    primary: f64,
    secondary: f64,
}

impl Score {
    /// A score with no secondary component.
    pub fn primary(primary: f64) -> Self {
        Self::new(primary, 0.0)
    }

    /// Creates a lexicographic score.
    ///
    /// # Panics
    ///
    /// Panics if either component is NaN or infinite.
    pub fn new(primary: f64, secondary: f64) -> Self {
        assert!(
            primary.is_finite(),
            "score primary must be finite, got {primary}"
        );
        assert!(
            secondary.is_finite(),
            "score secondary must be finite, got {secondary}"
        );
        Score { primary, secondary }
    }

    /// The primary component.
    pub fn primary_value(&self) -> f64 {
        self.primary
    }

    /// The secondary (tie-break) component.
    pub fn secondary_value(&self) -> f64 {
        self.secondary
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite floats admit a total order via partial_cmp.
        self.primary
            .partial_cmp(&other.primary)
            .expect("scores are finite")
            .then_with(|| {
                self.secondary
                    .partial_cmp(&other.secondary)
                    .expect("scores are finite")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        assert!(Score::new(2.0, 0.0) > Score::new(1.0, 99.0));
        assert!(Score::new(1.0, 2.0) > Score::new(1.0, 1.0));
        assert_eq!(Score::new(1.0, 1.0), Score::new(1.0, 1.0));
        assert!(Score::primary(-1.0) < Score::primary(0.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_panics() {
        let _ = Score::primary(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_panics() {
        let _ = Score::new(0.0, f64::INFINITY);
    }

    #[test]
    fn sortable() {
        let mut v = vec![
            Score::primary(3.0),
            Score::primary(1.0),
            Score::primary(2.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Score::primary(1.0),
                Score::primary(2.0),
                Score::primary(3.0)
            ]
        );
    }
}
