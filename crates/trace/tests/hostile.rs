//! Hostile-input tests: no malformed trace file may crash the decoders
//! or pre-allocate more than a small multiple of its own size.
//!
//! A custom global allocator tracks live and peak heap bytes, so every
//! test can assert a hard bound on the decoder's peak allocation: the
//! historical bug here was `Vec::with_capacity(thread_count)` on an
//! attacker-controlled count, which let a 16-byte file reserve ~100 GB.
//!
//! The allocator needs `unsafe` (the library itself forbids it; this
//! integration-test binary is a separate crate and opts in locally).

use placesim_trace::hash::fnv1a64;
use placesim_trace::{
    compress, io, stream, Address, MemRef, ProgramTrace, ThreadTrace, TraceError,
};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Wraps the system allocator, tracking current and peak live bytes.
struct TrackingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

// SAFETY: delegates allocation verbatim to `System`; the bookkeeping is
// plain atomic arithmetic on the side.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = self.current.fetch_add(layout.size(), Ordering::SeqCst) + layout.size();
            self.peak.fetch_max(live, Ordering::SeqCst);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.current.fetch_sub(layout.size(), Ordering::SeqCst);
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc {
    current: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

/// Serializes measured sections: the test harness runs `#[test]` fns on
/// parallel threads, and concurrent allocations would pollute the peak.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f`, returning its result and the peak heap growth (bytes above
/// the live size at entry) during the call.
fn measured_peak<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let base = ALLOC.current.load(Ordering::SeqCst);
    ALLOC.peak.store(base, Ordering::SeqCst);
    let result = f();
    let peak = ALLOC.peak.load(Ordering::SeqCst);
    (peak.saturating_sub(base), result)
}

/// The allocation bound for a decode of `input_len` bytes: a small
/// multiple of the input (decoded references and per-thread bookkeeping
/// legitimately outgrow the compressed bytes) plus a fixed constant for
/// decoder temporaries.
fn alloc_bound(input_len: usize) -> usize {
    input_len * 16 + 64 * 1024
}

fn sample_program() -> ProgramTrace {
    let mk = |base: u64| -> ThreadTrace {
        (0..24)
            .map(|i| match i % 3 {
                0 => MemRef::instr(Address::new(base + 4 * i)),
                1 => MemRef::read(Address::new(base + 64 * i)),
                _ => MemRef::write(Address::new(base)),
            })
            .collect()
    };
    ProgramTrace::new("hostile-sample", vec![mk(0), mk(0x1000), mk(0x2000)])
}

/// A v1 header claiming `thread_count` threads with no body at all.
fn v1_claiming_threads(thread_count: u32) -> Vec<u8> {
    let mut f = Vec::new();
    f.extend_from_slice(b"PSIM");
    f.extend_from_slice(&1u32.to_le_bytes());
    f.extend_from_slice(&0u32.to_le_bytes()); // empty name
    f.extend_from_slice(&thread_count.to_le_bytes());
    f
}

/// A v2 header claiming `thread_count` threads with no body at all.
fn v2_claiming_threads(thread_count: u64) -> Vec<u8> {
    let mut f = Vec::new();
    f.extend_from_slice(b"PSIM");
    f.extend_from_slice(&2u32.to_le_bytes());
    f.push(0); // empty name (varint 0)
    let mut v = thread_count;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            f.push(byte);
            break;
        }
        f.push(byte | 0x80);
    }
    f
}

/// Appends a LEB128 varint (the v2/v3 wire integer).
fn vp(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// A hand-built v3 file whose single chunk carries ONE real record but
/// whose headers and index claim `claimed_refs` references. The chunk
/// index is internally consistent (checksums verify, totals match the
/// index when `total_instr == claimed_refs`), so decoding proceeds all
/// the way into the chunk before the lie surfaces — the worst case for
/// count-driven preallocation.
fn v3_lying_ref_count(claimed_refs: u64, total_instr: u64) -> Vec<u8> {
    let mut f = Vec::new();
    f.extend_from_slice(b"PSIM");
    f.extend_from_slice(&stream::VERSION.to_le_bytes());
    vp(&mut f, 0); // empty name
    vp(&mut f, 1); // one thread
    let data_start = f.len() as u64;
    let payload = [0u8]; // one record: instr at address 0
    vp(&mut f, 0); // thread
    vp(&mut f, claimed_refs);
    vp(&mut f, payload.len() as u64);
    f.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    f.extend_from_slice(&payload);

    let mut footer = Vec::new();
    vp(&mut footer, 1); // chunk count
    vp(&mut footer, data_start); // first offset is absolute
    vp(&mut footer, claimed_refs);
    vp(&mut footer, payload.len() as u64);
    vp(&mut footer, total_instr); // instr
    vp(&mut footer, 0); // reads
    vp(&mut footer, 0); // writes
    vp(&mut footer, 0); // barriers
    f.extend_from_slice(&footer);
    f.extend_from_slice(&fnv1a64(&footer).to_le_bytes());
    f.extend_from_slice(&(footer.len() as u64).to_le_bytes());
    f.extend_from_slice(&stream::TRAILER_MAGIC);
    f
}

/// Lying chunk ref-count (2^40 claimed, 1 present): the decode must hit
/// "truncated chunk" territory, never abort, and never preallocate
/// anywhere near the claimed count.
#[test]
fn v3_lying_ref_count_is_rejected_with_clamped_prealloc() {
    let file = v3_lying_ref_count(1 << 40, 1 << 40);
    let (peak, result) = measured_peak(|| compress::read_any(&file));
    assert!(
        matches!(result, Err(TraceError::Format { .. })),
        "{result:?}"
    );
    assert!(
        peak <= alloc_bound(file.len()),
        "claimed 2^40 refs in {} bytes, peaked at {peak}",
        file.len()
    );
}

/// Footer totals disagreeing with the chunk index must be called out as
/// a footer/index mismatch before any chunk is decoded.
#[test]
fn v3_footer_index_mismatch_is_rejected() {
    let file = v3_lying_ref_count(7, 5);
    let (peak, result) = measured_peak(|| stream::from_bytes(&file));
    match result {
        Err(TraceError::Format { reason }) => {
            assert!(reason.contains("footer/index mismatch"), "{reason}")
        }
        other => panic!("expected footer/index mismatch, got {other:?}"),
    }
    assert!(peak <= alloc_bound(file.len()));
}

/// A footer whose per-chunk payload length reaches past the data region
/// is rejected at index-parse time.
#[test]
fn v3_lying_payload_length_is_rejected() {
    let mut file = v3_lying_ref_count(1, 1);
    // Rewrite the footer with a payload_len pointing far past the file.
    file.truncate(file.len() - 20 - 9); // drop trailer + 9-byte footer tail
    let data_start = 10u64;
    let mut footer = Vec::new();
    vp(&mut footer, 1);
    vp(&mut footer, data_start);
    vp(&mut footer, 1);
    vp(&mut footer, 1 << 40); // payload allegedly a terabyte
    for _ in 0..4 {
        vp(&mut footer, 0);
    }
    let footer_start = file.len();
    file.truncate(footer_start);
    file.extend_from_slice(&footer);
    file.extend_from_slice(&fnv1a64(&footer).to_le_bytes());
    file.extend_from_slice(&(footer.len() as u64).to_le_bytes());
    file.extend_from_slice(&stream::TRAILER_MAGIC);
    let (peak, result) = measured_peak(|| stream::from_bytes(&file));
    assert!(
        matches!(result, Err(TraceError::Format { .. })),
        "{result:?}"
    );
    assert!(peak <= alloc_bound(file.len()));
}

/// A footer claiming 2^40 chunks for a thread, with no entries behind
/// it: the truncated varint errors out and the chunk-index vector's
/// preallocation is clamped by the remaining footer bytes.
#[test]
fn v3_hostile_chunk_count_stays_small() {
    let mut f = Vec::new();
    f.extend_from_slice(b"PSIM");
    f.extend_from_slice(&stream::VERSION.to_le_bytes());
    vp(&mut f, 0);
    vp(&mut f, 1);
    let mut footer = Vec::new();
    vp(&mut footer, 1 << 40); // chunk count, nothing follows
    f.extend_from_slice(&footer);
    f.extend_from_slice(&fnv1a64(&footer).to_le_bytes());
    f.extend_from_slice(&(footer.len() as u64).to_le_bytes());
    f.extend_from_slice(&stream::TRAILER_MAGIC);
    let (peak, result) = measured_peak(|| stream::from_bytes(&f));
    assert!(matches!(result, Err(TraceError::Format { .. })));
    assert!(
        peak <= 64 * 1024,
        "hostile chunk count pre-allocated {peak} bytes"
    );
}

/// Flipping a chunk-payload byte in a valid v3 file trips the per-chunk
/// checksum, not an abort or a silent wrong decode.
#[test]
fn v3_corrupted_payload_is_detected_by_checksum() {
    let file = stream::to_bytes(&sample_program()).unwrap();
    // Header is 24 bytes (magic 4 + version 4 + name varint+14 + count
    // varint); the first chunk header is 11 more. Flip a byte safely
    // inside the first chunk's payload.
    let mut bad = file.clone();
    bad[40] ^= 0xff;
    let (peak, result) = measured_peak(|| stream::from_bytes(&bad));
    match result {
        Err(TraceError::Format { reason }) => assert!(reason.contains("checksum"), "{reason}"),
        other => panic!("expected checksum failure, got {other:?}"),
    }
    assert!(peak <= alloc_bound(bad.len()));
}

/// Truncating a v3 file anywhere must produce a clean error under the
/// allocation cap: the trailer, footer or chunk tiling breaks first.
#[test]
fn v3_truncations_never_overallocate() {
    let file = stream::to_bytes(&sample_program()).unwrap();
    for cut in [
        0,
        7,
        10,
        24,
        40,
        file.len() / 2,
        file.len() - 21,
        file.len() - 1,
    ] {
        let (peak, result) = measured_peak(|| compress::read_any(&file[..cut]));
        assert!(result.is_err(), "cut {cut} decoded");
        assert!(
            peak <= alloc_bound(cut),
            "cut {cut} peaked at {peak} allocated bytes"
        );
    }
}

#[test]
fn sixteen_byte_file_claiming_4_billion_threads_stays_small() {
    let file = v1_claiming_threads(u32::MAX);
    assert_eq!(file.len(), 16);
    let (peak, result) = measured_peak(|| io::from_bytes(&file));
    assert!(matches!(result, Err(TraceError::Format { .. })));
    assert!(
        peak <= 64 * 1024,
        "16-byte hostile file pre-allocated {peak} bytes"
    );
}

#[test]
fn v2_header_claiming_huge_thread_count_stays_small() {
    let file = v2_claiming_threads(1 << 40);
    let (peak, result) = measured_peak(|| compress::read_any(&file));
    assert!(matches!(result, Err(TraceError::Format { .. })));
    assert!(
        peak <= 64 * 1024,
        "hostile v2 header pre-allocated {peak} bytes"
    );
}

#[test]
fn huge_name_length_is_rejected_without_allocation() {
    for version in [1u32, 2] {
        let mut f = Vec::new();
        f.extend_from_slice(b"PSIM");
        f.extend_from_slice(&version.to_le_bytes());
        if version == 1 {
            f.extend_from_slice(&u32::MAX.to_le_bytes());
        } else {
            // Varint name length ~2^40.
            f.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]);
        }
        let (peak, result) = measured_peak(|| compress::read_any(&f));
        assert!(
            matches!(result, Err(TraceError::Format { .. })),
            "version {version}"
        );
        assert!(peak <= 64 * 1024, "version {version} pre-allocated {peak}");
    }
}

#[test]
fn v1_overflowing_thread_length_is_rejected() {
    let mut f = v1_claiming_threads(1);
    f.extend_from_slice(&u64::MAX.to_le_bytes()); // len * 8 overflows
    let (peak, result) = measured_peak(|| io::from_bytes(&f));
    assert!(matches!(result, Err(TraceError::Format { .. })));
    assert!(peak <= 64 * 1024, "overflow length pre-allocated {peak}");
}

#[test]
fn v2_huge_per_thread_length_stays_small() {
    let mut f = v2_claiming_threads(1);
    // One thread whose length varint claims ~2^40 references.
    f.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]);
    let (peak, result) = measured_peak(|| compress::read_any(&f));
    assert!(matches!(result, Err(TraceError::Format { .. })));
    assert!(
        peak <= 64 * 1024,
        "hostile thread length pre-allocated {peak}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary byte soup: decoding must return (Ok or Err, never
    /// panic) with bounded peak allocation.
    #[test]
    fn arbitrary_bytes_never_overallocate(raw in proptest::collection::vec(0u8..=255, 0..256)) {
        let (peak, result) = measured_peak(|| compress::read_any(&raw));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(raw.len()),
            "{} input bytes peaked at {} allocated bytes",
            raw.len(),
            peak
        );
    }

    /// Valid v1 files with mutated bytes: graceful error or valid
    /// decode, never a panic or an outsized allocation.
    #[test]
    fn mutated_v1_files_never_overallocate(
        pos in 0usize..512,
        value in 0u8..=255,
        cut in 0usize..=512,
    ) {
        let mut file = io::to_bytes(&sample_program()).unwrap().to_vec();
        let idx = pos % file.len();
        file[idx] = value;
        if cut < 512 {
            file.truncate(cut % (file.len() + 1));
        }
        let (peak, result) = measured_peak(|| compress::read_any(&file));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(file.len()),
            "{} input bytes peaked at {} allocated bytes",
            file.len(),
            peak
        );
    }

    /// Same for the compressed v2 format.
    #[test]
    fn mutated_v2_files_never_overallocate(
        pos in 0usize..512,
        value in 0u8..=255,
        cut in 0usize..=512,
    ) {
        let mut file = compress::to_bytes(&sample_program()).unwrap().to_vec();
        let idx = pos % file.len();
        file[idx] = value;
        if cut < 512 {
            file.truncate(cut % (file.len() + 1));
        }
        let (peak, result) = measured_peak(|| compress::read_any(&file));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(file.len()),
            "{} input bytes peaked at {} allocated bytes",
            file.len(),
            peak
        );
    }

    /// Same for the streaming v3 format: mutate and/or truncate a valid
    /// file anywhere (header, chunks, footer, trailer) — graceful error
    /// or valid decode, never a panic or an outsized allocation.
    #[test]
    fn mutated_v3_files_never_overallocate(
        pos in 0usize..4096,
        value in 0u8..=255,
        cut in 0usize..=4096,
    ) {
        let mut file = stream::to_bytes(&sample_program()).unwrap();
        let idx = pos % file.len();
        file[idx] = value;
        if cut < 4096 {
            file.truncate(cut % (file.len() + 1));
        }
        let (peak, result) = measured_peak(|| compress::read_any(&file));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(file.len()),
            "{} input bytes peaked at {} allocated bytes",
            file.len(),
            peak
        );
    }

    /// Hostile thread counts over the whole u32 range, with a few real
    /// body bytes appended: always a graceful error or decode, always
    /// bounded.
    #[test]
    fn claimed_thread_counts_never_overallocate(
        count in 0u32..=u32::MAX,
        body in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut file = v1_claiming_threads(count);
        file.extend_from_slice(&body);
        let (peak, result) = measured_peak(|| io::from_bytes(&file));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(file.len()),
            "claimed {} threads, {} input bytes, peaked at {}",
            count,
            file.len(),
            peak
        );
    }
}
