//! Analytic multithreaded-processor efficiency model.
//!
//! The paper's related work (§5) discusses the Markov-chain processor
//! efficiency models of Saavedra-Barrera et al. and Agarwal, built from
//! the number of contexts `N`, the mean run length between misses `R`,
//! the context-switch cost `C` and the memory latency `L`. This module
//! implements the memoryless (birth–death) variant, whose steady state
//! is the Erlang-loss distribution: with offered load `a = L / (R + C)`,
//!
//! ```text
//! π(k) ∝ aᵏ / k!          k = 0..N   (k contexts waiting on memory)
//! utilization = 1 − π(N)
//! efficiency  = utilization · R / (R + C)
//! ```
//!
//! For `N = 1` this collapses to the textbook `R / (R + C + L)`. The
//! tests validate the model against the event-driven simulator: it
//! tracks simulated busy fractions to within the error expected from its
//! memorylessness assumption, and reproduces the related-work
//! conclusions — few contexts cannot hide long latencies, and efficiency
//! saturates at `R / (R + C)`.

use crate::config::ArchConfig;
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};

/// Analytic efficiency model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyModel {
    /// Mean useful cycles between misses of one context (`R`).
    pub run_length: f64,
    /// Memory latency in cycles (`L`).
    pub latency: f64,
    /// Context-switch cost in cycles (`C`).
    pub switch_cost: f64,
}

impl EfficiencyModel {
    /// Builds the model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `run_length` or `latency` is not positive, or if
    /// `switch_cost` is negative.
    pub fn new(run_length: f64, latency: f64, switch_cost: f64) -> Self {
        assert!(run_length > 0.0, "run length must be positive");
        assert!(latency > 0.0, "latency must be positive");
        assert!(switch_cost >= 0.0, "switch cost cannot be negative");
        EfficiencyModel {
            run_length,
            latency,
            switch_cost,
        }
    }

    /// Estimates the model from a simulation run: `R` is the measured
    /// references per miss, `L` and `C` come from the configuration.
    ///
    /// Returns `None` if the run had no misses (infinite run length:
    /// efficiency is 1 regardless).
    pub fn from_stats(stats: &SimStats, config: &ArchConfig) -> Option<Self> {
        let misses = stats.total_misses().total();
        if misses == 0 {
            return None;
        }
        Some(EfficiencyModel::new(
            stats.total_refs() as f64 / misses as f64,
            config.memory_latency() as f64,
            config.context_switch() as f64,
        ))
    }

    /// Offered load `a = L / (R + C)`: how many contexts' worth of
    /// latency each working period generates.
    pub fn offered_load(&self) -> f64 {
        self.latency / (self.run_length + self.switch_cost)
    }

    /// Steady-state probability that all `contexts` contexts are waiting
    /// on memory (the processor idles) — the Erlang loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero.
    pub fn all_waiting_probability(&self, contexts: usize) -> f64 {
        assert!(contexts > 0, "a processor needs at least one context");
        let a = self.offered_load();
        // Erlang B, computed with the standard stable recurrence:
        // B(0) = 1; B(k) = a·B(k−1) / (k + a·B(k−1)).
        let mut b = 1.0;
        for k in 1..=contexts {
            b = a * b / (k as f64 + a * b);
        }
        b
    }

    /// Processor *utilization* with `contexts` hardware contexts: the
    /// fraction of time the pipeline is doing anything (useful work or
    /// switching).
    pub fn utilization(&self, contexts: usize) -> f64 {
        1.0 - self.all_waiting_probability(contexts)
    }

    /// Processor *efficiency*: the fraction of time spent on useful
    /// instructions (excludes switch overhead).
    pub fn efficiency(&self, contexts: usize) -> f64 {
        self.utilization(contexts) * self.run_length / (self.run_length + self.switch_cost)
    }

    /// The efficiency ceiling as `contexts → ∞`: `R / (R + C)`.
    pub fn saturation_efficiency(&self) -> f64 {
        self.run_length / (self.run_length + self.switch_cost)
    }

    /// Contexts needed to reach `fraction` (0–1) of the saturation
    /// efficiency.
    pub fn contexts_for(&self, fraction: f64) -> usize {
        let target = fraction.clamp(0.0, 1.0) * self.saturation_efficiency();
        (1..=4096)
            .find(|&n| self.efficiency(n) >= target)
            .unwrap_or(4096)
    }
}

/// Measured busy fraction of a simulation run (useful cycles over
/// makespan), for comparing against [`EfficiencyModel::efficiency`].
pub fn simulated_efficiency(stats: &SimStats) -> f64 {
    let total: u64 = stats.per_proc().iter().map(|p| p.finish_time).sum();
    if total == 0 {
        return 0.0;
    }
    let busy: u64 = stats.per_proc().iter().map(|p| p.busy).sum();
    busy as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use placesim_placement::PlacementMap;
    use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};

    #[test]
    fn single_context_closed_form() {
        // N = 1 collapses to R / (R + C + L).
        let m = EfficiencyModel::new(20.0, 50.0, 6.0);
        let expect = 20.0 / (20.0 + 6.0 + 50.0);
        assert!((m.efficiency(1) - expect).abs() < 1e-12);
    }

    #[test]
    fn efficiency_increases_and_saturates() {
        let m = EfficiencyModel::new(20.0, 50.0, 6.0);
        let mut last = 0.0;
        for n in 1..=32 {
            let e = m.efficiency(n);
            assert!(e >= last, "efficiency must be monotone in contexts");
            last = e;
        }
        assert!(last <= m.saturation_efficiency() + 1e-12);
        assert!(
            m.efficiency(32) > 0.95 * m.saturation_efficiency(),
            "32 contexts should be near saturation"
        );
    }

    #[test]
    fn few_contexts_cannot_hide_long_latencies() {
        // Saavedra-Barrera's conclusion: with very long latencies, a few
        // contexts leave the processor mostly idle.
        let m = EfficiencyModel::new(10.0, 1000.0, 6.0);
        assert!(m.efficiency(2) < 0.1);
        assert!(m.efficiency(128) > 0.8 * m.saturation_efficiency());
    }

    #[test]
    fn contexts_for_targets() {
        let m = EfficiencyModel::new(20.0, 50.0, 6.0);
        let n = m.contexts_for(0.9);
        assert!(m.efficiency(n) >= 0.9 * m.saturation_efficiency());
        assert!(n > 1);
        assert!(m.efficiency(n - 1) < 0.9 * m.saturation_efficiency());
    }

    #[test]
    #[should_panic(expected = "at least one context")]
    fn zero_contexts_panics() {
        let m = EfficiencyModel::new(20.0, 50.0, 6.0);
        let _ = m.all_waiting_probability(0);
    }

    /// A deterministic every-R-cycles-miss workload: the model (which
    /// assumes memoryless runs) must still land within a reasonable band
    /// of the simulated busy fraction.
    #[test]
    fn model_tracks_simulator() {
        let run = 20u64;
        let contexts = 4usize;
        let mk = |tid: u64| -> ThreadTrace {
            let mut t = ThreadTrace::new();
            for blk in 0..100u64 {
                // One missing read (fresh line every time) ...
                t.push(MemRef::read(Address::new(
                    0x10_0000 * (tid + 1) + 0x1000 * blk,
                )));
                // ... then run-1 hits on the thread's own hot line.
                for _ in 0..(run - 1) {
                    t.push(MemRef::read(Address::new(0x40 * (tid + 1))));
                }
            }
            t
        };
        let prog = ProgramTrace::new("model", (0..contexts as u64).map(mk).collect());
        let map = PlacementMap::from_clusters(vec![(0..contexts).collect()]).unwrap();
        let config = ArchConfig::builder().cache_size(1 << 21).build().unwrap();
        let stats = simulate(&prog, &map, &config).unwrap();

        let model = EfficiencyModel::from_stats(&stats, &config).expect("misses occurred");
        let predicted = model.efficiency(contexts);
        let measured = simulated_efficiency(&stats);
        assert!(
            (predicted - measured).abs() < 0.15,
            "model {predicted:.3} vs simulated {measured:.3}"
        );
    }

    #[test]
    fn from_stats_none_without_misses() {
        let tr: ThreadTrace = (0..10).map(|_| MemRef::read(Address::new(0x40))).collect();
        let prog = ProgramTrace::new("hot", vec![tr]);
        let map = PlacementMap::from_clusters(vec![vec![0]]).unwrap();
        let config = ArchConfig::paper_default();
        let stats = simulate(&prog, &map, &config).unwrap();
        // One compulsory miss exists, so Some; drain it to the no-miss
        // case by checking the empty program instead.
        assert!(EfficiencyModel::from_stats(&stats, &config).is_some());

        let empty = ProgramTrace::new("none", vec![ThreadTrace::new()]);
        let map = PlacementMap::from_clusters(vec![vec![0]]).unwrap();
        let stats = simulate(&empty, &map, &config).unwrap();
        assert!(EfficiencyModel::from_stats(&stats, &config).is_none());
    }
}
