//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the subset the workspace uses: `SmallRng`
//! (xoshiro256++, the same algorithm the real crate uses on 64-bit
//! targets, seeded through SplitMix64 like the real `seed_from_u64`),
//! the `Rng` extension methods `gen`, `gen_bool`, `gen_range`, and
//! `SeedableRng::seed_from_u64`. Streams are deterministic for a given
//! seed, which is all the trace generator requires — absolute values are
//! never golden, only reproducibility is.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `rng.gen_range(..)`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire, without
/// the rejection step — the sub-2^-64 bias is irrelevant here).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self) < p
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand 0.8`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((700..1300).contains(&hits), "p=0.25 gave {hits}/4000");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
