//! The generic cluster-combining engine (paper §2.1).
//!
//! Starting from singleton clusters, the engine repeatedly combines the
//! pair of clusters with the highest metric score, subject to the
//! thread-balance constraint, until exactly `p` clusters remain. When no
//! feasible combination exists (step 4 of the paper's algorithm),
//! backtracking undoes the most recent combine and tries the
//! next-highest-scoring pair.
//!
//! For the `+LB` algorithm variants, a load constraint acts as a *filter
//! applied after the sharing criteria*: among candidate pairs in
//! descending score order, load-satisfying pairs are preferred; if none
//! satisfies the load bound the best-scoring pair is taken anyway (the
//! paper observes exactly this compromise: "they compromised on the load
//! balancing requirement and were unable to generate a well balanced
//! load").

use crate::error::PlacementError;
use crate::metrics::{MetricCache, PairMetric};
use crate::partition::{BalanceSpec, Partition, SumId};
use crate::score::Score;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Load-balance filter for the `+LB` variants.
#[derive(Debug, Clone, Copy)]
pub struct LoadConstraint<'a> {
    /// Per-thread dynamic lengths (instructions).
    pub lengths: &'a [u64],
    /// Allowed excess over the ideal per-processor load; the paper uses
    /// "typically 10%", i.e. `0.10`.
    pub tolerance: f64,
}

/// How the engine evaluates candidate-pair scores.
///
/// Both modes produce identical placements: cached aggregates are exact
/// `u64` sums equal to the fresh ones, so scores — and every
/// deterministic tie-break downstream of them — are bit-identical. The
/// differential tests in `tests/differential.rs` assert this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreMode {
    /// O(1) per-pair scores from cluster aggregates maintained
    /// incrementally through combines and undos (the default).
    #[default]
    Cached,
    /// Recompute every pair score from the thread matrices. The
    /// reference path: O(|A|·|B|) per pair.
    Fresh,
}

/// Tuning knobs for the engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions<'a> {
    /// Optional `+LB` load filter.
    pub load: Option<LoadConstraint<'a>>,
    /// Maximum combine operations explored before giving up. The paper's
    /// configurations need at most a few times `t`; the budget only
    /// guards adversarial inputs.
    pub node_budget: usize,
    /// Score evaluation strategy (cached by default).
    pub score_mode: ScoreMode,
}

impl Default for EngineOptions<'_> {
    fn default() -> Self {
        EngineOptions {
            load: None,
            node_budget: 500_000,
            score_mode: ScoreMode::Cached,
        }
    }
}

/// Runs the cluster-combining algorithm: `t` threads into exactly `p`
/// thread-balanced clusters, maximizing `metric` greedily with
/// backtracking.
///
/// # Errors
///
/// * [`PlacementError::ZeroProcessors`] if `p == 0`,
/// * [`PlacementError::TooManyProcessors`] if `p > t`,
/// * [`PlacementError::SearchExhausted`] if the node budget runs out
///   (not reachable for realistic inputs).
pub fn cluster<M: PairMetric>(
    metric: &M,
    threads: usize,
    processors: usize,
    options: EngineOptions<'_>,
) -> Result<Vec<Vec<usize>>, PlacementError> {
    if processors == 0 {
        return Err(PlacementError::ZeroProcessors);
    }
    if processors > threads {
        return Err(PlacementError::TooManyProcessors {
            threads,
            processors,
        });
    }
    let spec = BalanceSpec::new(threads, processors);
    let mut part = Partition::singletons(threads);
    let mut budget = options.node_budget;
    let ideal_load = options.load.map(|lc| {
        let total: u64 = lc.lengths.iter().sum();
        total as f64 / processors as f64 * (1.0 + lc.tolerance)
    });
    // In cached mode the metric registers its aggregates once on the
    // fresh singleton partition; the load filter's per-cluster length
    // sums ride the same machinery.
    let (cache, load_sum) = match options.score_mode {
        ScoreMode::Cached => (
            Some(metric.prepare(&mut part)),
            options.load.map(|lc| part.register_sum(lc.lengths)),
        ),
        ScoreMode::Fresh => (None, None),
    };
    let ctx = SearchCtx {
        cache,
        load_sum,
        ideal_load,
    };

    if search(metric, &spec, &mut part, &options, &ctx, &mut budget) {
        Ok(part.into_clusters())
    } else if budget == 0 {
        Err(PlacementError::SearchExhausted)
    } else {
        // The BFD completability pruner is heuristic; in the (practically
        // unobserved) case it prunes every path, fall back to a
        // deterministic thread-balanced fill in index order.
        Ok(balanced_fill(threads, processors))
    }
}

/// Deterministic thread-balanced partition in index order: the first
/// `t mod p` clusters get ⌈t/p⌉ threads, the rest ⌊t/p⌋.
fn balanced_fill(threads: usize, processors: usize) -> Vec<Vec<usize>> {
    let spec = BalanceSpec::new(threads, processors);
    let mut clusters = Vec::with_capacity(processors);
    let mut next = 0;
    for i in 0..processors {
        let size = if i < spec.big_clusters() || spec.floor_size() == spec.ceil_size() {
            spec.ceil_size()
        } else {
            spec.floor_size()
        };
        clusters.push((next..next + size).collect());
        next += size;
    }
    clusters
}

/// Per-run search context: cached-mode handles and the `+LB` ideal load.
struct SearchCtx {
    cache: Option<MetricCache>,
    load_sum: Option<SumId>,
    ideal_load: Option<f64>,
}

/// Depth-first search over combine decisions. Returns `true` when `part`
/// has been reduced to the target cluster count.
fn search<M: PairMetric>(
    metric: &M,
    spec: &BalanceSpec,
    part: &mut Partition,
    options: &EngineOptions<'_>,
    ctx: &SearchCtx,
    budget: &mut usize,
) -> bool {
    if part.len() == spec.processors() {
        return true;
    }
    if *budget == 0 {
        return false;
    }

    let mut candidates = ranked_candidates(metric, spec, part, options, ctx);
    while let Some((a, b)) = candidates.next_best() {
        if *budget == 0 {
            return false;
        }
        // Skip merges from which no thread-balanced completion exists
        // (checked lazily here so the common case pays for one packing
        // check per level, not one per candidate).
        if !bfd_completable(part, (a, b), spec) {
            continue;
        }
        *budget -= 1;
        let token = part.combine(a, b);
        if search(metric, spec, part, options, ctx, budget) {
            return true;
        }
        part.undo(token);
    }
    false
}

/// Whether a multiset of cluster sizes can still be packed into the
/// final thread-balanced shape (`t mod p` bins of ⌈t/p⌉, the rest of
/// ⌊t/p⌋), checked with best-fit-decreasing.
///
/// BFD is a heuristic, so a `false` may over-prune a feasible state;
/// the search's backtracking then simply tries another branch. In
/// practice BFD is exact for these equal-capacity shapes.
fn bfd_completable(part: &Partition, merged: (usize, usize), spec: &BalanceSpec) -> bool {
    let mut sizes: Vec<usize> = Vec::with_capacity(part.len() - 1);
    let merged_size = part.cluster(merged.0).len() + part.cluster(merged.1).len();
    sizes.push(merged_size);
    for i in 0..part.len() {
        if i != merged.0 && i != merged.1 {
            sizes.push(part.cluster(i).len());
        }
    }
    let p = spec.processors();
    if sizes.len() < p {
        return false;
    }
    let (floor, ceil) = (spec.floor_size(), spec.ceil_size());
    let big = if floor == ceil {
        0
    } else {
        spec.big_clusters()
    };
    let mut bins: Vec<usize> = std::iter::repeat_n(ceil, big)
        .chain(std::iter::repeat_n(floor, p - big))
        .collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    for s in sizes {
        // Best fit: the tightest bin that still holds s.
        let mut best: Option<usize> = None;
        for (i, &room) in bins.iter().enumerate() {
            if room >= s && best.is_none_or(|bi| bins[bi] > room) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => bins[i] -= s,
            None => return false,
        }
    }
    true
}

/// Candidate ordering key: load-ok before not, higher score first, then
/// low cluster indices. `Reverse` on the indices makes the natural `Ord`
/// max order coincide with the sort order below, so a max-heap pops
/// candidates in exactly the sorted sequence (the key is a strict total
/// order — `(a, b)` is unique — so the two are interchangeable).
type CandKey = (bool, Score, Reverse<usize>, Reverse<usize>);

/// Feasible candidate pairs, consumed best first.
///
/// Scoring every pair is unavoidable (the maximum must be found), but
/// *ordering* them fully is not: the greedy search usually takes the
/// first candidate and never looks back. In cached mode the scored pairs
/// are therefore heapified (O(n)) and popped on demand (O(log n) each) —
/// identical order, no full O(n log n) sort. Fresh mode keeps the
/// original sort; it is the retained reference path that the
/// differential tests (and the pipeline benchmark's old arm) hold
/// fixed.
enum Candidates {
    Sorted(std::vec::IntoIter<(usize, usize)>),
    Heap(BinaryHeap<CandKey>),
}

impl Candidates {
    fn next_best(&mut self) -> Option<(usize, usize)> {
        match self {
            Candidates::Sorted(iter) => iter.next(),
            Candidates::Heap(heap) => heap.pop().map(|(_, _, a, b)| (a.0, b.0)),
        }
    }
}

/// All feasible candidate pairs, best first: load-satisfying pairs by
/// descending score, then load-violating pairs by descending score, ties
/// broken by cluster indices for determinism.
fn ranked_candidates<M: PairMetric>(
    metric: &M,
    spec: &BalanceSpec,
    part: &Partition,
    options: &EngineOptions<'_>,
    ctx: &SearchCtx,
) -> Candidates {
    let ceil = spec.ceil_size();
    let floor = spec.floor_size();
    let big_now = if floor == ceil {
        0
    } else {
        part.count_of_size(ceil)
    };

    let mut scored: Vec<CandKey> = Vec::new();
    for a in 0..part.len() {
        for b in (a + 1)..part.len() {
            let new_size = part.cluster(a).len() + part.cluster(b).len();
            // A combine can only create one more ceiling-sized cluster; it
            // may also consume ceiling-sized inputs, but inputs of size
            // ceil can never legally grow, so both inputs are < ceil here
            // whenever new_size == ceil.
            let big_after = if floor != ceil && new_size == ceil {
                big_now + 1
            } else {
                big_now
            };
            if !spec.combine_allowed(new_size, big_after) {
                continue;
            }
            let load_ok = match (options.load, ctx.ideal_load) {
                (Some(lc), Some(ideal)) => {
                    // Cached and fresh sums are the same u64 value, so the
                    // filter decision cannot differ between modes.
                    let combined: u64 = match ctx.load_sum {
                        Some(id) => part.sum(id, a) + part.sum(id, b),
                        None => part
                            .cluster(a)
                            .iter()
                            .chain(part.cluster(b))
                            .map(|&t| lc.lengths[t])
                            .sum(),
                    };
                    (combined as f64) <= ideal
                }
                _ => true,
            };
            let score = match &ctx.cache {
                Some(cache) => metric.score_cached(part, cache, a, b),
                None => metric.score(part, a, b),
            };
            scored.push((load_ok, score, Reverse(a), Reverse(b)));
        }
    }
    if ctx.cache.is_some() {
        return Candidates::Heap(BinaryHeap::from(scored));
    }
    // Sort best-first: load-ok before not, then higher score, then low
    // indices. `sort_by` with reversed comparisons keeps this stable.
    scored.sort_by(|x, y| {
        y.0.cmp(&x.0)
            .then_with(|| y.1.cmp(&x.1))
            .then_with(|| x.2 .0.cmp(&y.2 .0))
            .then_with(|| x.3 .0.cmp(&y.3 .0))
    });
    Candidates::Sorted(
        scored
            .into_iter()
            .map(|(_, _, a, b)| (a.0, b.0))
            .collect::<Vec<_>>()
            .into_iter(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ShareRefsMetric;
    use placesim_analysis::SymMatrix;

    fn share_refs(n: usize, entries: &[(usize, usize, u64)]) -> SymMatrix<u64> {
        let mut m = SymMatrix::new(n, 0);
        for &(i, j, v) in entries {
            m.set(i, j, v);
        }
        m
    }

    /// The paper's §2.1.1 worked example: t = 5, p = 2. The figure's
    /// exact values are not printed in the text, but the narrative pins
    /// them down: (2,3) is the iteration-1 maximum; iteration 2 combines
    /// {1,5}; iteration 3 combines {1,5} with {4}. This matrix satisfies
    /// all the constraints the example states (thread numbers are
    /// 1-based in the paper; indices here are 0-based).
    fn paper_example_matrix() -> SymMatrix<u64> {
        share_refs(
            5,
            &[
                (1, 2, 10), // threads 2,3: highest pairwise sharing
                (0, 4, 8),  // threads 1,5: second combine
                (0, 3, 6),  // threads 1,4
                (3, 4, 5),  // threads 4,5  → {1,5}+{4} = (6+5)/2 = 5.5
                (1, 3, 5),  // threads 2,4 (the example's value 5)
                (2, 3, 4),  // threads 3,4 (the example's value 4)
                (0, 1, 1),
                (0, 2, 1),
                (1, 4, 1),
                (2, 4, 1),
            ],
        )
    }

    #[test]
    fn reproduces_paper_worked_example() {
        let m = paper_example_matrix();
        let metric = ShareRefsMetric { refs: &m };
        let clusters = cluster(&metric, 5, 2, EngineOptions::default()).unwrap();
        let mut sorted: Vec<Vec<usize>> = clusters
            .into_iter()
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect();
        sorted.sort();
        // Paper's final clusters: {2,3} and {1,4,5} → 0-based {1,2}, {0,3,4}.
        assert_eq!(sorted, vec![vec![0, 3, 4], vec![1, 2]]);
    }

    #[test]
    fn sharing_metric_example_value() {
        // The paper computes sharing-metric({2,3},{4}) = (5+4)/2 = 4.5.
        let m = paper_example_matrix();
        let metric = ShareRefsMetric { refs: &m };
        let mut part = Partition::singletons(5);
        part.combine(1, 2); // {2,3} in paper numbering
                            // Clusters now: {0},{1,2},{3},{4}; score({1,2},{3}):
        let s = metric.score(&part, 1, 2);
        assert_eq!(s, Score::primary(4.5));
    }

    #[test]
    fn exact_processor_count_is_reached() {
        let m = share_refs(7, &[]);
        let metric = ShareRefsMetric { refs: &m };
        for p in 1..=7 {
            let clusters = cluster(&metric, 7, p, EngineOptions::default()).unwrap();
            assert_eq!(clusters.len(), p, "p = {p}");
            let sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
            let floor = 7 / p;
            let ceil = 7usize.div_ceil(p);
            assert!(
                sizes.iter().all(|&s| s == floor || s == ceil),
                "p={p} sizes={sizes:?}"
            );
            assert_eq!(
                sizes
                    .iter()
                    .filter(|&&s| s == ceil && floor != ceil)
                    .count(),
                7 % p
            );
        }
    }

    #[test]
    fn backtracking_recovers_from_greedy_trap() {
        // t = 8, p = 2, cap = 4. Make the greedy path build {0,1,2} and
        // {3,4,5} (sizes 3,3) with threads 6,7 left: combining 3+3 = 6 is
        // illegal and 3+1 = 4 then 3+1 = 4 is required. A pure greedy
        // (highest pair always) walks into the 3,3,1,1 state if pair
        // scores are arranged so, and must backtrack or route around it.
        let m = share_refs(
            8,
            &[(0, 1, 100), (1, 2, 90), (3, 4, 80), (4, 5, 70), (6, 7, 1)],
        );
        let metric = ShareRefsMetric { refs: &m };
        let clusters = cluster(&metric, 8, 2, EngineOptions::default()).unwrap();
        let sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 4]);
    }

    #[test]
    fn p_equals_t_keeps_singletons() {
        let m = share_refs(4, &[(0, 1, 5)]);
        let metric = ShareRefsMetric { refs: &m };
        let clusters = cluster(&metric, 4, 4, EngineOptions::default()).unwrap();
        assert_eq!(clusters, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn error_cases() {
        let m = share_refs(3, &[]);
        let metric = ShareRefsMetric { refs: &m };
        assert_eq!(
            cluster(&metric, 3, 0, EngineOptions::default()).unwrap_err(),
            PlacementError::ZeroProcessors
        );
        assert_eq!(
            cluster(&metric, 3, 4, EngineOptions::default()).unwrap_err(),
            PlacementError::TooManyProcessors {
                threads: 3,
                processors: 4
            }
        );
    }

    #[test]
    fn budget_exhaustion_reports() {
        let m = share_refs(6, &[]);
        let metric = ShareRefsMetric { refs: &m };
        let opts = EngineOptions {
            load: None,
            node_budget: 0,
            score_mode: ScoreMode::Cached,
        };
        assert_eq!(
            cluster(&metric, 6, 2, opts).unwrap_err(),
            PlacementError::SearchExhausted
        );
    }

    #[test]
    fn load_filter_prefers_balanced_combines() {
        // Threads 0,1 share the most but are both long; with the load
        // filter the engine pairs long with short instead.
        let m = share_refs(4, &[(0, 1, 100), (0, 2, 50), (1, 3, 50), (2, 3, 10)]);
        let metric = ShareRefsMetric { refs: &m };
        let lengths = [100u64, 100, 5, 5];
        let opts = EngineOptions {
            load: Some(LoadConstraint {
                lengths: &lengths,
                tolerance: 0.10,
            }),
            node_budget: 100_000,
            score_mode: ScoreMode::Cached,
        };
        let clusters = cluster(&metric, 4, 2, opts).unwrap();
        // Ideal load 105/processor; {0,1} = 200 violates, so the best
        // load-satisfying pair by sharing is {0,2} (50).
        let mut sorted: Vec<Vec<usize>> = clusters
            .into_iter()
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect();
        sorted.sort();
        assert_eq!(sorted, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn load_filter_compromises_when_unsatisfiable() {
        // Every combine violates the load bound; the engine must still
        // produce a placement (sharing first, load compromised).
        let m = share_refs(4, &[(0, 1, 9)]);
        let metric = ShareRefsMetric { refs: &m };
        let lengths = [100u64, 100, 100, 100];
        let opts = EngineOptions {
            load: Some(LoadConstraint {
                lengths: &lengths,
                tolerance: 0.0,
            }),
            node_budget: 100_000,
            score_mode: ScoreMode::Cached,
        };
        let clusters = cluster(&metric, 4, 2, opts).unwrap();
        assert_eq!(clusters.len(), 2);
    }
}
