//! The packed, append-only reference trace of a single thread.

use crate::record::{MemRef, RefKind};
use serde::{Deserialize, Serialize};

/// The complete memory-reference trace of one thread.
///
/// References are stored packed (one `u64` each, see [`MemRef::pack`]) so
/// that paper-scale traces (hundreds of thousands to millions of references
/// per thread) stay compact. Counts of each reference kind are maintained
/// incrementally so the common statistics are O(1).
///
/// # Example
///
/// ```
/// use placesim_trace::{Address, MemRef, ThreadTrace};
///
/// let mut trace = ThreadTrace::new();
/// trace.push(MemRef::instr(Address::new(0x400)));
/// trace.push(MemRef::write(Address::new(0x8000)));
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.instr_len(), 1);
/// assert_eq!(trace.write_len(), 1);
/// let kinds: Vec<_> = trace.iter().map(|r| r.kind).collect();
/// assert_eq!(kinds.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadTrace {
    packed: Vec<u64>,
    instr: u64,
    reads: u64,
    writes: u64,
    barriers: u64,
}

impl ThreadTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with capacity for `n` references.
    pub fn with_capacity(n: usize) -> Self {
        ThreadTrace {
            packed: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Appends a reference to the trace.
    #[inline]
    pub fn push(&mut self, r: MemRef) {
        match r.kind {
            RefKind::Instr => self.instr += 1,
            RefKind::Read => self.reads += 1,
            RefKind::Write => self.writes += 1,
            RefKind::Barrier => self.barriers += 1,
        }
        self.packed.push(r.pack());
    }

    /// Total number of references (instruction + data).
    #[inline]
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Returns `true` if the trace has no references.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Number of instruction fetches.
    ///
    /// The paper measures *thread length* in instructions; this is that
    /// length.
    #[inline]
    pub fn instr_len(&self) -> u64 {
        self.instr
    }

    /// Number of data loads.
    #[inline]
    pub fn read_len(&self) -> u64 {
        self.reads
    }

    /// Number of data stores.
    #[inline]
    pub fn write_len(&self) -> u64 {
        self.writes
    }

    /// Number of data references (loads + stores).
    #[inline]
    pub fn data_len(&self) -> u64 {
        self.reads + self.writes
    }

    /// Number of barrier records.
    #[inline]
    pub fn barrier_len(&self) -> u64 {
        self.barriers
    }

    /// Iterates over the references in program order.
    pub fn iter(&self) -> ThreadTraceIter<'_> {
        ThreadTraceIter {
            inner: self.packed.iter(),
        }
    }

    /// Returns the reference at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<MemRef> {
        self.packed
            .get(index)
            .map(|&p| MemRef::unpack(p).expect("trace contains only packed MemRefs"))
    }

    /// Borrows the raw packed representation (for zero-copy serialization).
    pub(crate) fn packed(&self) -> &[u64] {
        &self.packed
    }

    /// Rebuilds a trace from raw packed words.
    ///
    /// Used by the deserializer; validates every word.
    pub(crate) fn from_packed(packed: Vec<u64>) -> Result<Self, crate::TraceError> {
        let mut t = ThreadTrace {
            packed: Vec::new(),
            instr: 0,
            reads: 0,
            writes: 0,
            barriers: 0,
        };
        for &word in &packed {
            let r = MemRef::unpack(word).ok_or_else(|| crate::TraceError::Format {
                reason: format!("invalid packed reference {word:#x}"),
            })?;
            match r.kind {
                RefKind::Instr => t.instr += 1,
                RefKind::Read => t.reads += 1,
                RefKind::Write => t.writes += 1,
                RefKind::Barrier => t.barriers += 1,
            }
        }
        t.packed = packed;
        Ok(t)
    }
}

impl FromIterator<MemRef> for ThreadTrace {
    fn from_iter<I: IntoIterator<Item = MemRef>>(iter: I) -> Self {
        let mut t = ThreadTrace::new();
        for r in iter {
            t.push(r);
        }
        t
    }
}

impl Extend<MemRef> for ThreadTrace {
    fn extend<I: IntoIterator<Item = MemRef>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

impl<'a> IntoIterator for &'a ThreadTrace {
    type Item = MemRef;
    type IntoIter = ThreadTraceIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the references of a [`ThreadTrace`], in program order.
#[derive(Debug, Clone)]
pub struct ThreadTraceIter<'a> {
    inner: std::slice::Iter<'a, u64>,
}

impl Iterator for ThreadTraceIter<'_> {
    type Item = MemRef;

    #[inline]
    fn next(&mut self) -> Option<MemRef> {
        self.inner
            .next()
            .map(|&p| MemRef::unpack(p).expect("trace contains only packed MemRefs"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for ThreadTraceIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Address;

    fn sample() -> ThreadTrace {
        let mut t = ThreadTrace::new();
        t.push(MemRef::instr(Address::new(0x100)));
        t.push(MemRef::read(Address::new(0x8000)));
        t.push(MemRef::instr(Address::new(0x104)));
        t.push(MemRef::write(Address::new(0x8000)));
        t.push(MemRef::read(Address::new(0x8040)));
        t
    }

    #[test]
    fn counts_by_kind() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.instr_len(), 2);
        assert_eq!(t.read_len(), 2);
        assert_eq!(t.write_len(), 1);
        assert_eq!(t.data_len(), 3);
        assert!(!t.is_empty());
        assert!(ThreadTrace::new().is_empty());
    }

    #[test]
    fn iteration_preserves_order() {
        let t = sample();
        let refs: Vec<MemRef> = t.iter().collect();
        assert_eq!(refs[0], MemRef::instr(Address::new(0x100)));
        assert_eq!(refs[3], MemRef::write(Address::new(0x8000)));
        assert_eq!(t.iter().len(), 5);
    }

    #[test]
    fn get_in_and_out_of_bounds() {
        let t = sample();
        assert_eq!(t.get(1), Some(MemRef::read(Address::new(0x8000))));
        assert_eq!(t.get(5), None);
    }

    #[test]
    fn from_iterator_and_extend() {
        let refs = vec![
            MemRef::instr(Address::new(1)),
            MemRef::read(Address::new(2)),
        ];
        let mut t: ThreadTrace = refs.iter().copied().collect();
        assert_eq!(t.len(), 2);
        t.extend([MemRef::write(Address::new(3))]);
        assert_eq!(t.write_len(), 1);
    }

    #[test]
    fn from_packed_accepts_all_kinds() {
        let good = sample().packed().to_vec();
        let rebuilt = ThreadTrace::from_packed(good).unwrap();
        assert_eq!(rebuilt, sample());

        // Tag 3 is a barrier record.
        let barriers = ThreadTrace::from_packed(vec![3u64 << 62]).unwrap();
        assert_eq!(barriers.barrier_len(), 1);
    }

    #[test]
    fn barrier_counting() {
        let mut t = ThreadTrace::new();
        t.push(MemRef::instr(Address::new(0)));
        t.push(MemRef::barrier(0));
        t.push(MemRef::barrier(1));
        assert_eq!(t.barrier_len(), 2);
        assert_eq!(t.instr_len(), 1);
        assert_eq!(t.data_len(), 0);
        assert_eq!(t.len(), 3);
    }
}
