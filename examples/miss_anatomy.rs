//! Miss anatomy: dissect cache misses into the paper's four components
//! across machine configurations, reproducing the Figure 5 story — fewer
//! threads per processor turn inter-thread conflicts into intra-thread
//! conflicts and shrink conflicts overall, while compulsory and
//! invalidation misses stay put regardless of placement.
//!
//! ```sh
//! cargo run --release --example miss_anatomy -- water
//! ```

use placesim_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "water".into());
    let spec = spec(&name).ok_or_else(|| format!("unknown application {name}"))?;
    let app = PreparedApp::prepare(
        &spec,
        &GenOptions {
            scale: 0.05,
            seed: 13,
        },
    );

    println!(
        "{name}: {} threads, {} KB cache\n",
        app.threads(),
        app.config.cache_size() / 1024
    );
    println!(
        "{:<12} {:<12} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "processors", "algorithm", "compulsory", "intra", "inter", "invalid", "miss %"
    );
    println!("{}", "-".repeat(80));

    for processors in [2usize, 4, 8, 16] {
        if processors > app.threads() {
            continue;
        }
        for algo in [
            PlacementAlgorithm::Random,
            PlacementAlgorithm::LoadBal,
            PlacementAlgorithm::ShareRefs,
        ] {
            let r = placesim::run_placement(&app, algo, processors)?;
            let m = r.stats.total_misses();
            println!(
                "{:<12} {:<12} {:>10} {:>10} {:>10} {:>10} {:>8.2}%",
                processors,
                algo.paper_name(),
                m.compulsory,
                m.intra_thread_conflict,
                m.inter_thread_conflict,
                m.invalidation,
                100.0 * r.stats.miss_rate(),
            );
        }
        println!();
    }

    println!(
        "Note how the compulsory and invalidation columns barely move\n\
         between RANDOM, LOAD-BAL and SHARE-REFS at any processor count:\n\
         sharing-based placement has nothing to harvest."
    );
    Ok(())
}
