//! Exports every figure's data as CSV files for plotting pipelines.
//!
//! ```sh
//! cargo run --release -p placesim-bench --bin export_csv -- /tmp/placesim-csv
//! ```

use placesim::figures::{default_processor_counts, exec_time_figure, miss_components_figure};
use placesim_bench::{harness_opts, prepare};
use placesim_placement::PlacementAlgorithm;
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "placesim-csv".into());
    let out = Path::new(&out_dir);
    fs::create_dir_all(out)?;
    eprintln!(
        "exporting CSVs to {out_dir} (scale {})",
        harness_opts().scale
    );

    for (figure, app_name) in [
        ("fig2", "locusroute"),
        ("fig3", "fft"),
        ("fig4", "barnes-hut"),
    ] {
        let app = prepare(app_name);
        let procs = default_processor_counts(app.threads());
        let fig = exec_time_figure(&app, &procs)?;
        let path = out.join(format!("{figure}_{app_name}_exec_time.csv"));
        fs::write(&path, fig.to_csv())?;
        eprintln!("  wrote {}", path.display());
    }

    let app = prepare("locusroute");
    let procs = default_processor_counts(app.threads());
    let algos = [
        PlacementAlgorithm::Random,
        PlacementAlgorithm::LoadBal,
        PlacementAlgorithm::ShareRefs,
        PlacementAlgorithm::MaxWrites,
        PlacementAlgorithm::MinShare,
    ];
    let fig5 = miss_components_figure(&app, &procs, &algos)?;
    let path = out.join("fig5_locusroute_miss_components.csv");
    fs::write(&path, fig5.to_csv())?;
    eprintln!("  wrote {}", path.display());

    Ok(())
}
