//! Regenerates the paper's Figure 4: Barnes-Hut execution time across
//! placement algorithms, normalized to RANDOM.

fn main() {
    placesim_bench::print_exec_time_figure("barnes-hut", "Figure 4");
}
