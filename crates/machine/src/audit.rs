//! Post-drain invariant auditor (feature `audit`).
//!
//! The paper's results are only as trustworthy as the simulator's cycle
//! accounting and miss taxonomy, and both engines have been through
//! aggressive hot-path rewrites. With the `audit` feature on, every
//! simulation re-derives the laws those rewrites must preserve after
//! the event queue drains and aborts with a structured diagnostic if
//! any fails:
//!
//! 1. **Cycle conservation** — per processor,
//!    `busy + switching + idle == finish_time`.
//! 2. **Reference conservation** — per processor,
//!    `hits + misses + barrier_ops` equals the references its placed
//!    threads dispatched.
//! 3. **Taxonomy vs. cache counts** — per processor, the four-way miss
//!    breakdown sums to the cache's fill count (every miss fills
//!    exactly once).
//! 4. **Owner-state consistency** — every resident cache line agrees
//!    with the directory in both directions: residents are tracked
//!    sharers, Modified residents are the directory's exclusive owner,
//!    and every directory entry points at caches that actually hold the
//!    line in the matching state.
//!
//! Plus the global symmetry `invalidations sent == received`.

use crate::cache::{LineState, ProcessorCache};
use crate::directory::Directory;
use crate::stats::ProcStats;
use placesim_placement::{PlacementMap, ProcessorId};
use placesim_trace::ProgramTrace;

/// Validates the post-drain machine state against the conservation
/// laws.
///
/// # Panics
///
/// Panics with a diagnostic listing every violated invariant; a clean
/// machine returns silently.
pub(crate) fn check_drained(
    prog: &ProgramTrace,
    map: &PlacementMap,
    stats: &[ProcStats],
    caches: &[ProcessorCache],
    directory: &Directory,
) {
    let mut violations: Vec<String> = Vec::new();

    for (pi, st) in stats.iter().enumerate() {
        if st.accounted_cycles() != st.finish_time {
            violations.push(format!(
                "processor {pi}: busy {} + switching {} + idle {} = {} != finish_time {}",
                st.busy,
                st.switching,
                st.idle,
                st.accounted_cycles(),
                st.finish_time
            ));
        }
        let dispatched: u64 = map
            .threads_on(ProcessorId::from_index(pi))
            .iter()
            .map(|&tid| prog.thread(tid).len() as u64)
            .sum();
        if st.refs() != dispatched {
            violations.push(format!(
                "processor {pi}: hits {} + misses {} + barrier_ops {} = {} != {} refs dispatched",
                st.hits,
                st.misses.total(),
                st.barrier_ops,
                st.refs(),
                dispatched
            ));
        }
        if st.misses.total() != caches[pi].fill_count() {
            violations.push(format!(
                "processor {pi}: miss taxonomy totals {} but the cache performed {} fills",
                st.misses.total(),
                caches[pi].fill_count()
            ));
        }
    }

    let sent: u64 = stats.iter().map(|s| s.invalidations_sent).sum();
    let received: u64 = stats.iter().map(|s| s.invalidations_received).sum();
    if sent != received {
        violations.push(format!(
            "machine: {sent} invalidations sent but {received} received"
        ));
    }

    // Cache → directory: every resident line must be a tracked sharer,
    // and Modified residents must be the exclusive owner.
    for (pi, cache) in caches.iter().enumerate() {
        let me = ProcessorId::from_index(pi);
        for (line, state) in cache.iter_resident() {
            if !directory.holds(me, line) {
                violations.push(format!(
                    "processor {pi}: line {line:#x} resident {state:?} but untracked by the \
                     directory"
                ));
            } else if state == LineState::Modified && directory.owner(line) != Some(me) {
                violations.push(format!(
                    "processor {pi}: line {line:#x} resident Modified but directory owner is \
                     {:?}",
                    directory.owner(line)
                ));
            }
        }
    }

    // Directory → caches: every tracked sharer must hold the line in the
    // matching state.
    for (line, sharers, owner) in directory.iter_lines() {
        match owner {
            Some(o) => {
                if sharers.len() != 1 || !sharers.contains(o) {
                    violations.push(format!(
                        "directory: Modified line {line:#x} owned by {} has sharer set of {}",
                        o.index(),
                        sharers.len()
                    ));
                }
                if caches[o.index()].state_of(line) != Some(LineState::Modified) {
                    violations.push(format!(
                        "directory: line {line:#x} Modified by {} but its cache holds {:?}",
                        o.index(),
                        caches[o.index()].state_of(line)
                    ));
                }
            }
            None => {
                for q in sharers.iter() {
                    if caches[q.index()].state_of(line) != Some(LineState::Shared) {
                        violations.push(format!(
                            "directory: line {line:#x} Shared by {} but its cache holds {:?}",
                            q.index(),
                            caches[q.index()].state_of(line)
                        ));
                    }
                }
            }
        }
    }

    assert!(
        violations.is_empty(),
        "invariant audit failed after drain ({} violation{}):\n  - {}",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" },
        violations.join("\n  - ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use crate::engine::simulate;
    use placesim_trace::{Address, MemRef, ThreadTrace};

    fn prog_and_map() -> (ProgramTrace, PlacementMap) {
        let mk = |base: u64| -> ThreadTrace {
            (0..40)
                .map(|i| MemRef::instr(Address::new(base + 4 * (i % 8))))
                .collect()
        };
        let prog = ProgramTrace::new("audited", vec![mk(0), mk(0x4000), mk(0x8000), mk(0)]);
        let map = PlacementMap::from_clusters(vec![vec![0, 3], vec![1, 2]]).unwrap();
        (prog, map)
    }

    #[test]
    fn clean_run_passes_the_auditor() {
        // `simulate` itself runs the auditor when this module is
        // compiled; this pins that a normal run does not trip it.
        let (prog, map) = prog_and_map();
        let stats = simulate(&prog, &map, &ArchConfig::paper_default()).unwrap();
        assert_eq!(stats.total_refs(), prog.total_refs());
    }

    #[test]
    fn corrupt_stats_are_caught() {
        let (prog, map) = prog_and_map();
        let config = ArchConfig::paper_default();
        let stats = simulate(&prog, &map, &config).unwrap();
        let mut forged: Vec<ProcStats> = stats.per_proc().to_vec();
        forged[0].busy += 1; // break cycle conservation
        forged[1].hits += 1; // break reference conservation
        let caches: Vec<ProcessorCache> = (0..2)
            .map(|_| ProcessorCache::new(config.num_sets()))
            .collect();
        let directory = Directory::new();
        let err = std::panic::catch_unwind(|| {
            check_drained(&prog, &map, &forged, &caches, &directory);
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("invariant audit failed"), "got: {msg}");
        assert!(msg.contains("finish_time"), "got: {msg}");
        assert!(msg.contains("refs dispatched"), "got: {msg}");
    }

    #[test]
    fn owner_state_divergence_is_caught() {
        let (prog, map) = prog_and_map();
        let config = ArchConfig::paper_default();
        let mut caches: Vec<ProcessorCache> = (0..2)
            .map(|_| ProcessorCache::new(config.num_sets()))
            .collect();
        let mut directory = Directory::new();
        // Cache 0 holds line 7 Modified, directory thinks 1 owns it.
        caches[0].fill(7, LineState::Modified, placesim_trace::ThreadId::new(0));
        directory.write_fill(ProcessorId::from_index(1), 7);
        // Zeroed stats for the empty "machine", with refs forged to match
        // dispatch so only the owner-state checks fire.
        let mut stats = vec![ProcStats::default(); 2];
        for (pi, st) in stats.iter_mut().enumerate() {
            st.hits = map
                .threads_on(ProcessorId::from_index(pi))
                .iter()
                .map(|&tid| prog.thread(tid).len() as u64)
                .sum();
        }
        stats[0].misses.compulsory = caches[0].fill_count();
        stats[0].hits -= caches[0].fill_count();
        let err = std::panic::catch_unwind(|| {
            check_drained(&prog, &map, &stats, &caches, &directory);
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("line 0x7"), "got: {msg}");
    }
}
