//! Per-address, per-thread reference counting: the base pass all static
//! sharing metrics derive from.

use placesim_trace::hash::FastMap;
use placesim_trace::{ProgramTrace, ThreadId};
use serde::{Deserialize, Serialize};

type AddrMap<V> = FastMap<u64, V>;

/// Reference counts of one thread at one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerThreadCount {
    /// The thread.
    pub thread: ThreadId,
    /// Loads issued by `thread` to this address.
    pub reads: u32,
    /// Stores issued by `thread` to this address.
    pub writes: u32,
}

impl PerThreadCount {
    /// Total references (loads + stores).
    pub fn total(&self) -> u64 {
        self.reads as u64 + self.writes as u64
    }
}

/// All per-thread counts at one address, ordered by thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerAddress {
    counts: Vec<PerThreadCount>,
}

impl PerAddress {
    /// Number of distinct threads that touched the address.
    pub fn sharer_count(&self) -> usize {
        self.counts.len()
    }

    /// `true` if at least two threads touched the address.
    pub fn is_shared(&self) -> bool {
        self.counts.len() >= 2
    }

    /// `true` if the address is shared and at least one access is a write
    /// (i.e. the address can generate invalidations).
    pub fn is_write_shared(&self) -> bool {
        self.is_shared() && self.counts.iter().any(|c| c.writes > 0)
    }

    /// Total references by all threads.
    pub fn total_refs(&self) -> u64 {
        self.counts.iter().map(PerThreadCount::total).sum()
    }

    /// Per-thread counts, ascending by thread id.
    pub fn counts(&self) -> &[PerThreadCount] {
        &self.counts
    }

    fn bump(&mut self, thread: ThreadId, is_write: bool) {
        // Fast path: `build` scans threads in ascending id order, so a
        // repeated reference hits the last slot and a new sharer always
        // appends — no binary search, no mid-vector `insert`, and no
        // quadratic behaviour on heavily-shared addresses.
        let slot = match self.counts.last_mut() {
            Some(last) if last.thread == thread => self.counts.last_mut().expect("non-empty"),
            Some(last) if last.thread < thread => {
                self.counts.push(PerThreadCount {
                    thread,
                    reads: 0,
                    writes: 0,
                });
                self.counts.last_mut().expect("just pushed")
            }
            None => {
                self.counts.push(PerThreadCount {
                    thread,
                    reads: 0,
                    writes: 0,
                });
                self.counts.last_mut().expect("just pushed")
            }
            // Out-of-order callers (tests, future incremental updates)
            // still get the ordered-insert slow path.
            Some(_) => match self.counts.binary_search_by_key(&thread, |c| c.thread) {
                Ok(i) => &mut self.counts[i],
                Err(i) => {
                    self.counts.insert(
                        i,
                        PerThreadCount {
                            thread,
                            reads: 0,
                            writes: 0,
                        },
                    );
                    &mut self.counts[i]
                }
            },
        };
        if is_write {
            slot.writes += 1;
        } else {
            slot.reads += 1;
        }
    }

    /// Builds the entry from counts already sorted by ascending thread
    /// id (the sharded merge produces them in exactly that order).
    pub(crate) fn from_sorted_counts(counts: Vec<PerThreadCount>) -> Self {
        debug_assert!(counts.windows(2).all(|w| w[0].thread < w[1].thread));
        PerAddress { counts }
    }
}

/// Per-address, per-thread reference counts over a whole program.
///
/// One linear pass over every thread's data references; everything in
/// [`crate::SharingAnalysis`] is derived from this profile. Instruction
/// references are excluded — the paper's sharing metrics are over data.
///
/// # Example
///
/// ```
/// use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
/// use placesim_analysis::AddressProfile;
///
/// let t0: ThreadTrace = [MemRef::read(Address::new(0x10))].into_iter().collect();
/// let t1: ThreadTrace = [MemRef::write(Address::new(0x10))].into_iter().collect();
/// let prog = ProgramTrace::new("p", vec![t0, t1]);
///
/// let profile = AddressProfile::build(&prog);
/// assert_eq!(profile.address_count(), 1);
/// assert!(profile.get(0x10).unwrap().is_write_shared());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AddressProfile {
    map: AddrMap<PerAddress>,
    threads: usize,
}

impl AddressProfile {
    /// Builds the profile by scanning every thread's data references.
    ///
    /// This is the reference path: one hash-map probe per reference. It
    /// is kept byte-for-byte equivalent to [`Self::build_parallel`] (the
    /// differential proptests compare the two) and used by tests and the
    /// old-front-end arm of `bench_pipeline`.
    pub fn build(prog: &ProgramTrace) -> Self {
        let mut map: AddrMap<PerAddress> = AddrMap::default();
        for (tid, trace) in prog.iter() {
            for r in trace.iter() {
                if r.kind.is_data() {
                    map.entry(r.addr.raw())
                        .or_default()
                        .bump(tid, r.kind.is_write());
                }
            }
        }
        AddressProfile {
            map,
            threads: prog.thread_count(),
        }
    }

    /// Builds the same profile via the sharded sort-merge pass
    /// ([`crate::shard`]): per-thread sorted run extraction, then a
    /// parallel k-way merge over disjoint address shards. One hash-map
    /// insert per *distinct* address instead of one probe per reference.
    pub fn build_parallel(prog: &ProgramTrace) -> Self {
        let shards = crate::shard::sharded_scan(
            prog,
            Vec::new,
            |acc: &mut Vec<(u64, PerAddress)>, addr, counts| {
                acc.push((addr, PerAddress::from_sorted_counts(counts.to_vec())));
            },
        );
        let mut map: AddrMap<PerAddress> = AddrMap::default();
        map.reserve(shards.iter().map(Vec::len).sum());
        for shard in shards {
            map.extend(shard);
        }
        AddressProfile {
            map,
            threads: prog.thread_count(),
        }
    }

    /// Builds the same profile out-of-core from a streaming (v3) trace
    /// file, with stage-1 memory bounded by `budget` (see
    /// [`crate::SpillBudget`]). Bit-identical to [`Self::build_parallel`]
    /// on the decoded trace for any budget.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors from the trace file and the
    /// spill files.
    pub fn build_parallel_streamed(
        reader: &placesim_trace::stream::FileReader,
        budget: &crate::SpillBudget,
    ) -> Result<Self, placesim_trace::TraceError> {
        let shards = crate::stream::sharded_scan_streamed(
            reader,
            budget,
            Vec::new,
            |acc: &mut Vec<(u64, PerAddress)>, addr, counts| {
                acc.push((addr, PerAddress::from_sorted_counts(counts.to_vec())));
            },
        )?;
        let mut map: AddrMap<PerAddress> = AddrMap::default();
        map.reserve(shards.iter().map(Vec::len).sum());
        for shard in shards {
            map.extend(shard);
        }
        Ok(AddressProfile {
            map,
            threads: reader.thread_count(),
        })
    }

    /// Number of threads in the profiled program.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Number of distinct data addresses referenced.
    pub fn address_count(&self) -> usize {
        self.map.len()
    }

    /// Number of distinct shared (≥ 2 sharers) addresses.
    pub fn shared_address_count(&self) -> usize {
        self.map.values().filter(|a| a.is_shared()).count()
    }

    /// Looks up the counts at one raw address.
    pub fn get(&self, addr: u64) -> Option<&PerAddress> {
        self.map.get(&addr)
    }

    /// Iterates over `(address, counts)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PerAddress)> + '_ {
        self.map.iter().map(|(&a, p)| (a, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef, ThreadTrace};

    fn prog() -> ProgramTrace {
        // T0: reads X twice, writes P0 once. T1: writes X once, reads Y.
        // T2: reads Y. X is write-shared, Y is read-shared, P0 private.
        let t0: ThreadTrace = [
            MemRef::read(Address::new(0x100)),
            MemRef::read(Address::new(0x100)),
            MemRef::write(Address::new(0x900)),
            MemRef::instr(Address::new(0x4)), // ignored by the profile
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [
            MemRef::write(Address::new(0x100)),
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        let t2: ThreadTrace = [MemRef::read(Address::new(0x200))].into_iter().collect();
        ProgramTrace::new("p", vec![t0, t1, t2])
    }

    #[test]
    fn counts_per_thread() {
        let p = AddressProfile::build(&prog());
        let x = p.get(0x100).unwrap();
        assert_eq!(x.sharer_count(), 2);
        assert!(x.is_shared());
        assert!(x.is_write_shared());
        assert_eq!(x.total_refs(), 3);
        assert_eq!(x.counts()[0].reads, 2);
        assert_eq!(x.counts()[1].writes, 1);

        let y = p.get(0x200).unwrap();
        assert!(y.is_shared());
        assert!(!y.is_write_shared());

        let p0 = p.get(0x900).unwrap();
        assert!(!p0.is_shared());
        assert!(!p0.is_write_shared());
    }

    #[test]
    fn aggregate_counts() {
        let p = AddressProfile::build(&prog());
        assert_eq!(p.thread_count(), 3);
        assert_eq!(p.address_count(), 3);
        assert_eq!(p.shared_address_count(), 2);
        assert!(p.get(0x4).is_none(), "instruction addresses are excluded");
    }

    #[test]
    fn parallel_build_matches_reference() {
        let p = prog();
        assert_eq!(
            AddressProfile::build_parallel(&p),
            AddressProfile::build(&p)
        );
    }

    #[test]
    fn per_address_orders_threads() {
        // Insert out of thread order and check the invariant.
        let mut pa = PerAddress::default();
        pa.bump(ThreadId::new(5), false);
        pa.bump(ThreadId::new(1), true);
        pa.bump(ThreadId::new(5), true);
        let ids: Vec<u16> = pa.counts().iter().map(|c| c.thread.raw()).collect();
        assert_eq!(ids, vec![1, 5]);
        assert_eq!(pa.counts()[1].reads, 1);
        assert_eq!(pa.counts()[1].writes, 1);
    }
}
