//! Regenerates the paper's Figure 3: FFT execution time across placement
//! algorithms, normalized to RANDOM.

fn main() {
    placesim_bench::print_exec_time_figure("fft", "Figure 3");
}
