//! Infinite cache: the paper's §4.3 stress test. An 8 MB cache removes
//! all capacity and conflict misses, leaving only compulsory and
//! invalidation misses — the two components sharing-based placement is
//! supposed to reduce. If co-location were ever going to win, it would
//! win here. It doesn't.
//!
//! ```sh
//! cargo run --release --example infinite_cache -- water 4
//! ```

use placesim::run_placement_with_config;
use placesim_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "water".into());
    let processors: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let spec = spec(&name).ok_or_else(|| format!("unknown application {name}"))?;
    let mut app = PreparedApp::prepare(
        &spec,
        &GenOptions {
            scale: 0.05,
            seed: 99,
        },
    );
    app.run_probe()?; // enables the coherence-traffic oracle

    let infinite = ArchConfig::infinite_cache();
    println!("{name} on {processors} processors, 8 MB cache (no conflict misses)\n");

    let lb = run_placement_with_config(&app, PlacementAlgorithm::LoadBal, processors, &infinite)?;
    let lb_time = lb.execution_time();

    println!(
        "{:<16} {:>14} {:>12} {:>12} {:>10}",
        "algorithm", "exec (cycles)", "vs LOAD-BAL", "compulsory", "invalid"
    );
    println!("{}", "-".repeat(70));
    for algo in [
        PlacementAlgorithm::LoadBal,
        PlacementAlgorithm::Random,
        PlacementAlgorithm::ShareRefs,
        PlacementAlgorithm::MaxWrites,
        PlacementAlgorithm::MinShare,
        PlacementAlgorithm::CoherenceTraffic,
    ] {
        let r = run_placement_with_config(&app, algo, processors, &infinite)?;
        let m = r.stats.total_misses();
        assert_eq!(m.conflicts(), 0, "an 8 MB cache must kill all conflicts");
        println!(
            "{:<16} {:>14} {:>11.3}x {:>12} {:>10}",
            algo.paper_name(),
            r.execution_time(),
            r.execution_time() as f64 / lb_time as f64,
            m.compulsory,
            m.invalidation,
        );
    }

    println!(
        "\nEven with conflicts out of the picture, the best sharing-based\n\
         placement sits within a few percent of LOAD-BAL (paper Table 5)."
    );
    Ok(())
}
