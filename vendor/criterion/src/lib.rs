//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the builder/macro surface the workspace's benches use —
//! `Criterion::default().sample_size(..)`, `benchmark_group`,
//! `throughput`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!` — backed by a
//! plain wall-clock harness: each benchmark runs a short warmup, then
//! `sample_size` timed samples, and prints median time per iteration
//! plus throughput (elem/s) when declared.
//!
//! No statistical analysis, plots, or saved baselines; results are for
//! relative comparison within one machine/run, which is how this repo's
//! `BENCH_*.json` exporters consume them.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the closure under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly: a warmup pass, then one timed call per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: fill caches / JIT-free but still useful for branch
        // predictors and page faults; bounded so huge cases stay cheap.
        let warm_start = Instant::now();
        while warm_start.elapsed() < Duration::from_millis(30) {
            black_box(f());
            if warm_start.elapsed() > Duration::from_millis(300) {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return Duration::ZERO;
        }
        s.sort();
        s[s.len() / 2]
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Ungrouped benchmark, mirroring `Criterion::bench_function`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(id, None, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing throughput metadata.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, self.criterion.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, self.criterion.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (formatting no-op; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let med = b.median();
    let per_iter = med.as_secs_f64();
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            println!(
                "bench {id:<48} {:>12.3?}/iter  {:>14.0} elem/s",
                med,
                n as f64 / per_iter
            );
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            println!(
                "bench {id:<48} {:>12.3?}/iter  {:>14.0} B/s",
                med,
                n as f64 / per_iter
            );
        }
        _ => println!("bench {id:<48} {:>12.3?}/iter", med),
    }
}

/// Mirrors `criterion_group!` — both the struct form
/// (`name = ..; config = ..; targets = ..`) and the simple list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_target(c: &mut Criterion) {
        let mut group = c.benchmark_group("self-test");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny_target
    }

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p8").to_string(), "p8");
    }
}
