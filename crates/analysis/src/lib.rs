//! Static per-thread trace analysis for the thread-placement study.
//!
//! The placement algorithms of Thekkath & Eggers (ISCA 1994) consume
//! *statically measured* program characteristics: inter-thread sharing
//! metrics extracted by analyzing each thread's trace separately (the
//! paper's §3.1, Table 2). This crate computes all of them:
//!
//! * [`AddressProfile`] — per-address, per-thread reference counts, the
//!   single pass over the traces everything else derives from (with a
//!   sharded sort-merge fast path, `build_parallel`),
//! * [`SharingAnalysis`] — pairwise shared-reference matrices
//!   (all-shared, write-shared, common-address counts) and per-thread
//!   aggregates (% shared refs, private footprints); `measure` fuses the
//!   profiling scan and matrix build, `measure_reference` keeps the
//!   original two-pass path for differential testing,
//! * [`nway`] — group ("N-way") sharing metrics over clusters of threads,
//! * [`write_runs`] — write-run and migratory-data analysis over an
//!   interleaved reference stream (the paper's §4.2 FFT discussion),
//! * [`CharacteristicsRow`] — one row of the paper's Table 2.
//!
//! # Example
//!
//! ```
//! use placesim_trace::{Address, MemRef, ProgramTrace, ThreadId, ThreadTrace};
//! use placesim_analysis::SharingAnalysis;
//!
//! // Two threads both touching 0x100; thread 1 also has a private address.
//! let t0: ThreadTrace = [MemRef::read(Address::new(0x100))].into_iter().collect();
//! let t1: ThreadTrace = [
//!     MemRef::read(Address::new(0x100)),
//!     MemRef::write(Address::new(0x200)),
//! ].into_iter().collect();
//! let prog = ProgramTrace::new("ex", vec![t0, t1]);
//!
//! let sharing = SharingAnalysis::measure(&prog);
//! // One ref each to the common address 0x100.
//! assert_eq!(sharing.pair_shared_refs(ThreadId::new(0), ThreadId::new(1)), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod locality;
mod matrix;
pub mod nway;
mod profile;
mod shard;
mod sharing;
mod stream;
mod summary;
pub mod write_runs;

pub use locality::{LocalityProfile, WorkingSetSummary};
pub use matrix::SymMatrix;
pub use profile::{AddressProfile, PerAddress, PerThreadCount};
pub use sharing::{SharingAnalysis, ThreadSharing};
pub use stream::SpillBudget;
pub use summary::CharacteristicsRow;
