//! Error type for trace construction and (de)serialization.

use std::fmt;
use std::io;

/// Errors produced when reading, writing or validating traces.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The byte stream is not a valid trace file.
    Format {
        /// Human-readable description of the malformation.
        reason: String,
    },
    /// The file was written by an unsupported format version.
    Version {
        /// The version found in the file header.
        found: u32,
        /// The version this library writes and reads.
        supported: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Format { reason } => write!(f, "malformed trace: {reason}"),
            TraceError::Version { found, supported } => write!(
                f,
                "unsupported trace format version {found} (supported: {supported})"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages() {
        let e = TraceError::Format {
            reason: "bad magic".into(),
        };
        assert_eq!(e.to_string(), "malformed trace: bad magic");

        let e = TraceError::Version {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));

        let e = TraceError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }
}
