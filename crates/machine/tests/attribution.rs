//! Coherence-attribution conservation and differential suite.
//!
//! Four families of guarantees, over randomized programs, placements
//! and geometries:
//!
//! * **Observer transparency** — [`simulate_attributed`] returns
//!   [`SimStats`] bit-identical to [`simulate`] for every protocol:
//!   attribution never perturbs the machine.
//! * **Conservation** — the collector's totals reconcile exactly with
//!   the statistics: attributed invalidations ≡ `total_invalidations`,
//!   attributed updates ≡ `total_updates`, attributed coherence misses
//!   ≡ `total_misses().invalidation`; and the thread-pair matrix plus
//!   the unattributed remainder sums back to the event total.
//! * **Parallel bit-identity** — the work-sharded engine's collector
//!   matches the serial one's *full report* (order-sensitive sharing-run
//!   histograms and sketch state included) at 1/2/4/8 workers, adaptive
//!   and tiny fixed windows.
//! * **Sketch fidelity** — the Misra-Gries fallback keeps every heavy
//!   hitter and honors its declared error bound against an exact run of
//!   the same workload.

#![cfg(feature = "obs")]

use placesim_machine::{
    simulate, simulate_attributed, simulate_attributed_configured, ArchConfig, AttrKind,
    AttributionConfig, ParConfig, Protocol,
};
use placesim_placement::PlacementMap;
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use proptest::prelude::*;

/// Random program over a small address universe to provoke sharing,
/// conflicts, invalidations, upgrades and updates.
fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    let r#ref = (0u8..3, 0u64..64);
    let thread = proptest::collection::vec(r#ref, 0..150);
    proptest::collection::vec(thread, 1..6).prop_map(|threads| {
        let traces: Vec<ThreadTrace> = threads
            .into_iter()
            .map(|refs| {
                refs.into_iter()
                    .map(|(kind, slot)| {
                        let addr = Address::new(slot * 16); // overlapping lines
                        match kind {
                            0 => MemRef::instr(addr),
                            1 => MemRef::read(addr),
                            _ => MemRef::write(addr),
                        }
                    })
                    .collect()
            })
            .collect();
        ProgramTrace::new("attr-prop", traces)
    })
}

/// Programs with barrier phases, so the parallel differential covers
/// parks, releases and window truncation while events are buffered.
fn arb_barrier_program() -> impl Strategy<Value = ProgramTrace> {
    let segment = proptest::collection::vec((0u8..3, 0u64..48), 0..30);
    (
        1usize..4,
        proptest::collection::vec(proptest::collection::vec(segment, 3), 1..5),
    )
        .prop_map(|(phases, threads)| {
            let traces: Vec<ThreadTrace> = threads
                .into_iter()
                .map(|segments| {
                    let mut t = ThreadTrace::new();
                    for (pi, seg) in segments.into_iter().take(phases).enumerate() {
                        for (kind, slot) in seg {
                            let addr = Address::new(0x100 + slot * 16);
                            t.push(match kind {
                                0 => MemRef::instr(addr),
                                1 => MemRef::read(addr),
                                _ => MemRef::write(addr),
                            });
                        }
                        if pi + 1 < phases {
                            t.push(MemRef::barrier(pi as u64));
                        }
                    }
                    t
                })
                .collect();
            ProgramTrace::new("attr-barrier-prop", traces)
        })
}

fn arb_placement(t: usize, seed: u64) -> PlacementMap {
    let p = 1 + (seed as usize % t.max(1));
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); p.min(t).max(1)];
    for i in 0..t {
        let k = (seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64) >> 7) as usize
            % clusters.len();
        clusters[k].push(i);
    }
    PlacementMap::from_clusters(clusters).expect("valid clusters")
}

/// Randomized geometry at associativity 1 and 2, per protocol.
fn arb_config(protocol: Protocol) -> impl Strategy<Value = ArchConfig> {
    (0u8..3, 0u8..2, 0u64..3).prop_map(move |(geom, assoc, switch)| {
        let (cache, line) = match geom {
            0 => (256, 32),
            1 => (512, 32),
            _ => (1024, 64),
        };
        let mut builder = ArchConfig::builder();
        builder
            .cache_size(cache)
            .line_size(line)
            .associativity(1 + u32::from(assoc))
            .context_switch(1 + switch * 5)
            .protocol(protocol);
        builder.build().expect("valid random config")
    })
}

/// One scenario's full conservation check for a protocol: transparency,
/// totals reconciliation, pair-matrix closure and report validity.
fn assert_attribution_conserves(prog: &ProgramTrace, map: &PlacementMap, config: &ArchConfig) {
    let protocol = config.protocol();
    let plain = simulate(prog, map, config).expect("plain simulation");
    let (stats, attr) = simulate_attributed(prog, map, config, AttributionConfig::default())
        .expect("attributed simulation");
    assert_eq!(
        plain, stats,
        "{protocol}: attribution perturbed the simulation"
    );

    assert_eq!(
        attr.total(AttrKind::Invalidation),
        stats.total_invalidations(),
        "{protocol}: attributed invalidations diverge from SimStats"
    );
    assert_eq!(
        attr.total(AttrKind::Update),
        stats.total_updates(),
        "{protocol}: attributed updates diverge from SimStats"
    );
    assert_eq!(
        attr.total(AttrKind::CoherenceMiss),
        stats.total_misses().invalidation,
        "{protocol}: attributed coherence misses diverge from SimStats"
    );

    let pair_sum: u64 = attr.pair_counts().iter().map(|&(_, _, n)| n).sum();
    assert_eq!(
        pair_sum + attr.unattributed(),
        attr.total_events(),
        "{protocol}: thread-pair matrix does not close"
    );

    // Exact mode (the default limit dwarfs these programs): per-address
    // counts are complete, so they sum back to the event total too.
    assert!(!attr.is_sketch(), "{protocol}: tiny program forced sketch");
    assert_eq!(attr.error_bound(), 0, "{protocol}: exact mode has error");
    let addr_sum: u64 = attr
        .top_addresses(usize::MAX)
        .iter()
        .map(|&(_, n, _)| n)
        .sum();
    assert_eq!(
        addr_sum,
        attr.total_events(),
        "{protocol}: per-address counts do not close"
    );

    // The rendered report must satisfy the strict parser's invariants.
    let report = attr.report_json(&protocol.to_string(), prog.thread_count(), 32);
    let parsed = placesim_obs::attribution::parse(&report).expect("report parses");
    assert_eq!(parsed.events(), attr.total_events());
    assert_eq!(parsed.protocol, protocol.to_string());
}

/// Serial vs parallel full-report equality on one scenario, across the
/// worker-thread counts the issue pins (1/2/4/8) and the given window.
fn assert_parallel_attribution_agrees(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    window: u64,
) {
    let acfg = AttributionConfig::default();
    let (serial_stats, serial_attr) =
        simulate_attributed(prog, map, config, acfg).expect("serial attributed");
    let name = config.protocol().to_string();
    let serial_report = serial_attr.report_json(&name, prog.thread_count(), 1 << 16);
    for threads in [1usize, 2, 4, 8] {
        let par = ParConfig { threads, window };
        let (stats, attr) =
            simulate_attributed_configured(prog, map, config, acfg, &par).expect("parallel");
        assert_eq!(
            serial_stats, stats,
            "serial and parallel SimStats diverge (threads={threads}, window={window})"
        );
        // Full-report equality pins everything the collector holds:
        // totals, pair matrix, per-address counts, order-sensitive
        // sharing-run histograms, and the sketch/exact mode state.
        assert_eq!(
            serial_report,
            attr.report_json(&name, prog.thread_count(), 1 << 16),
            "serial and parallel attribution diverge (threads={threads}, window={window})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn attribution_conserves_wi(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(Protocol::Wi),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        assert_attribution_conserves(&prog, &map, &config);
    }

    #[test]
    fn attribution_conserves_mesi(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(Protocol::Mesi),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        assert_attribution_conserves(&prog, &map, &config);
    }

    #[test]
    fn attribution_conserves_dragon(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(Protocol::Dragon),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        assert_attribution_conserves(&prog, &map, &config);
    }

    #[test]
    fn parallel_attribution_matches_serial(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(Protocol::Wi),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        assert_parallel_attribution_agrees(&prog, &map, &config, 0);
    }

    #[test]
    fn parallel_attribution_matches_serial_under_tiny_windows(
        prog in arb_barrier_program(),
        seed in 1u64..5000,
        config in arb_config(Protocol::Wi),
        window in 1u64..9,
    ) {
        // Tiny fixed windows force foreign events to drain at window
        // edges and barrier truncation to re-execute shards — exactly
        // the paths where stale attribution buffers would double-count.
        let map = arb_placement(prog.thread_count(), seed);
        assert_parallel_attribution_agrees(&prog, &map, &config, window);
    }

    #[test]
    fn dragon_parallel_entry_falls_back_with_attribution(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(Protocol::Dragon),
    ) {
        // Dragon shards serially; the parallel entry point must still
        // attribute (the observer rides the fallback).
        let map = arb_placement(prog.thread_count(), seed);
        assert_parallel_attribution_agrees(&prog, &map, &config, 0);
    }
}

/// A deliberately skewed workload: two threads ping-pong writes on a
/// handful of hot lines while a long tail of lines is each written once
/// after being read remotely — classic heavy-hitter shape.
fn skewed_program(tail: u64) -> (ProgramTrace, PlacementMap) {
    let hot = [0u64, 0x40, 0x80];
    let mut t0 = ThreadTrace::new();
    let mut t1 = ThreadTrace::new();
    for i in 0..400u64 {
        let line = hot[(i % 3) as usize];
        t0.push(MemRef::write(Address::new(line)));
        t1.push(MemRef::write(Address::new(line)));
    }
    for i in 0..tail {
        let addr = Address::new(0x10_000 + i * 0x40);
        t0.push(MemRef::read(addr));
        t1.push(MemRef::write(addr));
    }
    let prog = ProgramTrace::new("skewed", vec![t0, t1]);
    let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
    (prog, map)
}

/// The sketch keeps every heavy hitter, and its per-address undercount
/// stays within the declared Misra-Gries error bound.
#[test]
fn sketch_agrees_with_exact_on_heavy_hitters() {
    let (prog, map) = skewed_program(600);
    let config = ArchConfig::paper_default();

    let (_, exact) =
        simulate_attributed(&prog, &map, &config, AttributionConfig::default()).expect("exact run");
    assert!(!exact.is_sketch());

    let (_, sketch) =
        simulate_attributed(&prog, &map, &config, AttributionConfig::new(1, 16)).expect("sketch");
    assert!(sketch.is_sketch(), "tiny exact_limit must force the sketch");
    assert!(sketch.error_bound() > 0);
    assert_eq!(
        sketch.total_events(),
        exact.total_events(),
        "totals are exact regardless of mode"
    );

    let tracked = sketch.top_addresses(usize::MAX);
    let bound = sketch.error_bound();
    for &(line, true_count, _) in &exact.top_addresses(3) {
        let sketched = tracked.iter().find(|&&(l, _, _)| l == line);
        assert!(
            true_count <= bound || sketched.is_some(),
            "heavy hitter {line:#x} (count {true_count}) dropped by sketch (bound {bound})"
        );
        if let Some(&(_, approx, _)) = sketched {
            assert!(approx <= true_count, "sketch overcounts {line:#x}");
            assert!(
                true_count - approx <= bound,
                "sketch undercounts {line:#x} beyond its bound: {approx} vs {true_count}"
            );
        }
    }
    assert!(
        tracked.len() <= 16,
        "sketch exceeded its configured capacity"
    );
}

/// Sketch state is part of the parallel bit-identity contract too: the
/// sharded run converts to the sketch at the same event, producing the
/// same survivors and error bound.
#[test]
fn parallel_sketch_state_matches_serial() {
    let (prog, map) = skewed_program(300);
    let config = ArchConfig::paper_default();
    let acfg = AttributionConfig::new(64, 16);
    let (_, serial) = simulate_attributed(&prog, &map, &config, acfg).expect("serial");
    assert!(serial.is_sketch());
    let name = config.protocol().to_string();
    let serial_report = serial.report_json(&name, 2, 1 << 16);
    for threads in [2usize, 4, 8] {
        for window in [0u64, 4] {
            let par = ParConfig { threads, window };
            let (_, attr) =
                simulate_attributed_configured(&prog, &map, &config, acfg, &par).expect("parallel");
            assert_eq!(
                serial_report,
                attr.report_json(&name, 2, 1 << 16),
                "sketch state diverged (threads={threads}, window={window})"
            );
        }
    }
}

/// Attribution accounting survives a collector merge the way a sweep
/// aggregates per-cell collectors: totals add, reports stay valid.
#[test]
fn merged_collectors_report_validates() {
    let (prog, map) = skewed_program(50);
    let config = ArchConfig::paper_default();
    let acfg = AttributionConfig::default();
    let (_, mut a) = simulate_attributed(&prog, &map, &config, acfg).expect("run a");
    let (_, b) = simulate_attributed(&prog, &map, &config, acfg).expect("run b");
    let single_events = a.total_events();
    a.merge(b);
    assert_eq!(a.total_events(), 2 * single_events);
    let report = a.report_json("wi", prog.thread_count(), 16);
    placesim_obs::attribution::validate(&report).expect("merged report validates");
}
