//! Streaming chunked trace serialization (format version 3).
//!
//! Versions 1 and 2 are monolithic: a reader must materialize the whole
//! `ProgramTrace` before it can look at a single reference, so the
//! largest traces are capped by RAM long before they are capped by CPU.
//! Version 3 keeps the v2 varint record encoding but splits the stream
//! into independently decodable, checksummed chunks with a per-thread
//! index in a footer:
//!
//! ```text
//! header   magic "PSIM" · version u32 LE = 3 · name (varint len + UTF-8)
//!          · thread count (varint)
//! chunk*   thread (varint) · ref count (varint) · payload len (varint)
//!          · fnv1a64(payload) u64 LE
//!          · payload: v2 varint records, delta base reset to 0
//! footer   per thread: chunk count (varint), then per chunk
//!            (offset delta, ref count, payload len) varints,
//!            then totals (instr, reads, writes, barriers) varints
//! trailer  fnv1a64(footer) u64 LE · footer len u64 LE · magic "PSV3"
//! ```
//!
//! Because every chunk resets its delta base, a chunk decodes from its
//! own bytes alone; because the footer indexes chunks by thread, a
//! reader iterates one thread's references without touching any other
//! thread's bytes. The trailer sits at a fixed position relative to the
//! file end, so a reader finds the footer with two seeks and never
//! scans the data region.
//!
//! Three access paths are provided:
//!
//! * [`TraceFile`] / [`ChunkReader`] — zero-copy decode from a borrowed
//!   `&[u8]` (e.g. an mmap). Allocation is proportional to the *chunk
//!   index*, never to the number of references.
//! * [`FileReader`] / [`FileChunks`] — out-of-core decode from a file,
//!   one chunk resident at a time per reader.
//! * [`from_bytes`] — full materialization into a [`ProgramTrace`],
//!   used by [`crate::compress::read_any`] for version dispatch.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), placesim_trace::TraceError> {
//! use placesim_trace::{stream, Address, MemRef, ProgramTrace, ThreadTrace, ThreadId};
//!
//! let t: ThreadTrace = (0..100).map(|i| MemRef::instr(Address::new(4 * i))).collect();
//! let prog = ProgramTrace::new("small", vec![t]);
//!
//! let v3 = stream::to_bytes(&prog)?;
//! assert_eq!(stream::from_bytes(&v3)?, prog);
//!
//! // Zero-copy per-thread iteration.
//! let file = stream::TraceFile::parse(&v3)?;
//! let refs: Result<Vec<_>, _> = file.chunk_reader(ThreadId::new(0)).collect();
//! assert_eq!(refs?.len(), 100);
//! # Ok(())
//! # }
//! ```

use crate::compress::{get_varint, put_varint, unzigzag, zigzag, MAGIC};
use crate::hash::fnv1a64;
use crate::record::{Address, MemRef, RefKind, ThreadId};
use crate::{ProgramTrace, ThreadTrace, TraceError};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Version tag of the streaming format.
pub const VERSION: u32 = 3;
/// Magic at the very end of the file, locating the footer.
pub const TRAILER_MAGIC: [u8; 4] = *b"PSV3";
/// Default target payload size of one chunk.
pub const DEFAULT_CHUNK_BYTES: usize = 256 * 1024;

/// Fixed trailer: footer checksum (8) + footer length (8) + magic (4).
const TRAILER_LEN: usize = 20;
/// Smallest possible chunk: three 1-byte varints + 8-byte checksum.
const MIN_CHUNK_HEADER: u64 = 11;
/// Largest chunk header: three 10-byte varints + 8-byte checksum.
const MAX_CHUNK_HEADER: u64 = 38;

fn format_err<T>(reason: impl Into<String>) -> Result<T, TraceError> {
    Err(TraceError::Format {
        reason: reason.into(),
    })
}

/// Encoded size of a LEB128 varint.
fn varint_len(mut v: u64) -> u64 {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Per-thread reference counts by kind, recorded in the footer so
/// readers can size buffers and report lengths without decoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindTotals {
    /// Instruction fetches.
    pub instr: u64,
    /// Data reads.
    pub reads: u64,
    /// Data writes.
    pub writes: u64,
    /// Barrier markers.
    pub barriers: u64,
}

impl KindTotals {
    /// Total references of all kinds.
    #[must_use]
    pub fn refs(&self) -> u64 {
        self.instr + self.reads + self.writes + self.barriers
    }

    fn count(&mut self, kind: RefKind) {
        match kind {
            RefKind::Instr => self.instr += 1,
            RefKind::Read => self.reads += 1,
            RefKind::Write => self.writes += 1,
            RefKind::Barrier => self.barriers += 1,
        }
    }
}

/// Location and claimed shape of one chunk, from the footer index.
#[derive(Clone, Copy, Debug)]
struct ChunkMeta {
    /// File offset of the chunk header.
    offset: u64,
    /// References encoded in the chunk payload.
    ref_count: u64,
    /// Payload bytes (excluding the chunk header).
    payload_len: u64,
}

/// Footer index entry for one thread.
#[derive(Clone, Debug, Default)]
struct ThreadIndex {
    chunks: Vec<ChunkMeta>,
    totals: KindTotals,
}

/// Decodes `ref_count` v2 varint records from `payload` (delta base 0),
/// feeding each reference to `f`. The payload must be fully consumed.
fn decode_payload(
    mut payload: &[u8],
    ref_count: u64,
    mut f: impl FnMut(MemRef),
) -> Result<(), TraceError> {
    let mut prev: i64 = 0;
    for _ in 0..ref_count {
        let word = get_varint(&mut payload)?;
        let kind = RefKind::from_tag(word & 3).expect("2-bit tag");
        let delta = unzigzag(word >> 2);
        let addr = match prev.checked_add(delta) {
            Some(a) if (0..=Address::MAX.raw() as i64).contains(&a) => a,
            _ => return format_err("decoded address out of range"),
        };
        prev = addr;
        f(MemRef::new(kind, Address::new(addr as u64)));
    }
    if !payload.is_empty() {
        return format_err(format!(
            "chunk payload has {} trailing bytes",
            payload.len()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Totals returned by [`StreamWriter::finish`].
#[derive(Clone, Debug)]
pub struct StreamSummary {
    /// References written across all threads.
    pub total_refs: u64,
    /// Bytes written, including header, footer and trailer.
    pub bytes_written: u64,
    /// Per-thread reference counts by kind.
    pub totals: Vec<KindTotals>,
}

/// Incremental v3 writer over any byte sink.
///
/// References are appended one thread run at a time; a chunk is flushed
/// whenever its payload reaches the target size or the writer switches
/// threads, so peak memory is one chunk regardless of trace length. The
/// sink only needs [`Write`] — offsets are tracked by counting.
#[derive(Debug)]
pub struct StreamWriter<W: Write> {
    w: W,
    offset: u64,
    threads: Vec<ThreadIndex>,
    chunk_target: usize,
    cur_thread: Option<ThreadId>,
    payload: Vec<u8>,
    refs_in_chunk: u64,
    prev: i64,
}

impl<W: Write> StreamWriter<W> {
    /// Starts a v3 stream with the default chunk size and writes the
    /// header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the sink fails, and
    /// [`TraceError::Format`] if `thread_count` exceeds the
    /// [`ThreadId`] range.
    pub fn new(w: W, name: &str, thread_count: usize) -> Result<Self, TraceError> {
        Self::with_chunk_bytes(w, name, thread_count, DEFAULT_CHUNK_BYTES)
    }

    /// Starts a v3 stream with an explicit chunk payload target.
    ///
    /// # Errors
    ///
    /// See [`StreamWriter::new`].
    pub fn with_chunk_bytes(
        mut w: W,
        name: &str,
        thread_count: usize,
        chunk_bytes: usize,
    ) -> Result<Self, TraceError> {
        if thread_count > usize::from(u16::MAX) + 1 {
            return format_err(format!(
                "thread count {thread_count} exceeds ThreadId range"
            ));
        }
        let mut head = Vec::with_capacity(16 + name.len());
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&VERSION.to_le_bytes());
        put_varint(&mut head, name.len() as u64);
        head.extend_from_slice(name.as_bytes());
        put_varint(&mut head, thread_count as u64);
        w.write_all(&head)?;
        Ok(Self {
            w,
            offset: head.len() as u64,
            threads: vec![ThreadIndex::default(); thread_count],
            chunk_target: chunk_bytes.max(16),
            cur_thread: None,
            payload: Vec::with_capacity(chunk_bytes.max(16) + 16),
            refs_in_chunk: 0,
            prev: 0,
        })
    }

    /// Appends one reference to `thread`'s stream.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if flushing a completed chunk fails.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is outside the count declared at creation.
    pub fn push(&mut self, thread: ThreadId, r: MemRef) -> Result<(), TraceError> {
        assert!(
            thread.index() < self.threads.len(),
            "thread {thread} outside declared count {}",
            self.threads.len()
        );
        if self.cur_thread != Some(thread) {
            self.flush_chunk()?;
            self.cur_thread = Some(thread);
        }
        let addr = r.addr.raw() as i64;
        put_varint(
            &mut self.payload,
            zigzag(addr - self.prev) << 2 | r.kind.to_tag(),
        );
        self.prev = addr;
        self.refs_in_chunk += 1;
        self.threads[thread.index()].totals.count(r.kind);
        if self.payload.len() >= self.chunk_target {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends a whole run of references for one thread.
    ///
    /// # Errors
    ///
    /// See [`StreamWriter::push`].
    pub fn append_thread(
        &mut self,
        thread: ThreadId,
        refs: impl IntoIterator<Item = MemRef>,
    ) -> Result<(), TraceError> {
        for r in refs {
            self.push(thread, r)?;
        }
        Ok(())
    }

    /// Writes out the buffered chunk, if any, and records its index
    /// entry.
    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        self.prev = 0;
        if self.refs_in_chunk == 0 {
            return Ok(());
        }
        let thread = self.cur_thread.expect("refs imply a current thread");
        let mut head = Vec::with_capacity(38);
        put_varint(&mut head, thread.index() as u64);
        put_varint(&mut head, self.refs_in_chunk);
        put_varint(&mut head, self.payload.len() as u64);
        head.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        self.w.write_all(&head)?;
        self.w.write_all(&self.payload)?;
        self.threads[thread.index()].chunks.push(ChunkMeta {
            offset: self.offset,
            ref_count: self.refs_in_chunk,
            payload_len: self.payload.len() as u64,
        });
        self.offset += head.len() as u64 + self.payload.len() as u64;
        self.payload.clear();
        self.refs_in_chunk = 0;
        Ok(())
    }

    /// Flushes the final chunk, writes the footer and trailer, and
    /// returns what was written.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the sink fails.
    pub fn finish(mut self) -> Result<StreamSummary, TraceError> {
        self.flush_chunk()?;
        let mut footer = Vec::new();
        for idx in &self.threads {
            put_varint(&mut footer, idx.chunks.len() as u64);
            let mut prev_off = 0u64;
            for c in &idx.chunks {
                put_varint(&mut footer, c.offset - prev_off);
                put_varint(&mut footer, c.ref_count);
                put_varint(&mut footer, c.payload_len);
                prev_off = c.offset;
            }
            put_varint(&mut footer, idx.totals.instr);
            put_varint(&mut footer, idx.totals.reads);
            put_varint(&mut footer, idx.totals.writes);
            put_varint(&mut footer, idx.totals.barriers);
        }
        self.w.write_all(&footer)?;
        self.w.write_all(&fnv1a64(&footer).to_le_bytes())?;
        self.w.write_all(&(footer.len() as u64).to_le_bytes())?;
        self.w.write_all(&TRAILER_MAGIC)?;
        self.w.flush()?;
        let totals: Vec<KindTotals> = self.threads.iter().map(|t| t.totals).collect();
        Ok(StreamSummary {
            total_refs: totals.iter().map(KindTotals::refs).sum(),
            bytes_written: self.offset + footer.len() as u64 + TRAILER_LEN as u64,
            totals,
        })
    }
}

/// Serializes a program trace in the streaming v3 format.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the sink fails.
pub fn write_program<W: Write>(prog: &ProgramTrace, w: W) -> Result<(), TraceError> {
    let mut sw = StreamWriter::new(w, prog.name(), prog.thread_count())?;
    for (tid, thread) in prog.iter() {
        sw.append_thread(tid, thread.iter())?;
    }
    sw.finish()?;
    Ok(())
}

/// Serializes into an owned buffer.
///
/// # Errors
///
/// See [`write_program`].
pub fn to_bytes(prog: &ProgramTrace) -> Result<Vec<u8>, TraceError> {
    let mut buf = Vec::new();
    write_program(prog, &mut buf)?;
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Shared header/footer parsing
// ---------------------------------------------------------------------------

/// Parsed v3 header: trace name plus the cursor offset of the first
/// chunk.
struct Header {
    name: String,
    thread_count: u64,
    data_start: u64,
}

/// Parses the fixed prefix (`magic · version`) and returns the rest.
fn check_magic_version(raw: &[u8]) -> Result<&[u8], TraceError> {
    if raw.len() < 8 {
        return format_err("truncated header");
    }
    let (magic, rest) = raw.split_at(4);
    if magic != MAGIC {
        return format_err(format!("bad magic {magic:?}"));
    }
    let (ver, rest) = rest.split_at(4);
    let version = u32::from_le_bytes(ver.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(TraceError::Version {
            found: version,
            supported: VERSION,
        });
    }
    Ok(rest)
}

/// Parses the v3 header from the front of `raw`.
fn parse_header(raw: &[u8]) -> Result<Header, TraceError> {
    let rest = check_magic_version(raw)?;
    let mut cursor = rest;
    let name_len = get_varint(&mut cursor)? as usize;
    if cursor.len() < name_len {
        return format_err("truncated name");
    }
    let (name_bytes, rest) = cursor.split_at(name_len);
    let name = std::str::from_utf8(name_bytes)
        .map_err(|_| TraceError::Format {
            reason: "name is not UTF-8".into(),
        })?
        .to_owned();
    cursor = rest;
    let thread_count = get_varint(&mut cursor)?;
    if thread_count > u64::from(u16::MAX) + 1 {
        return format_err(format!(
            "thread count {thread_count} exceeds ThreadId range"
        ));
    }
    Ok(Header {
        name,
        thread_count,
        data_start: (raw.len() - cursor.len()) as u64,
    })
}

/// Locates and checksums the footer given the file length and the last
/// [`TRAILER_LEN`] bytes; returns the footer payload's file range.
fn locate_footer(file_len: u64, trailer: &[u8; TRAILER_LEN]) -> Result<(u64, u64), TraceError> {
    if trailer[16..] != TRAILER_MAGIC {
        return format_err("missing v3 trailer magic");
    }
    let checksum = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
    let footer_len = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
    let trailer_start = file_len - TRAILER_LEN as u64;
    let footer_start = trailer_start
        .checked_sub(footer_len)
        .ok_or(TraceError::Format {
            reason: "footer length exceeds file".into(),
        })?;
    Ok((footer_start, checksum))
}

/// Parses the footer payload into per-thread chunk indexes, validating
/// that the indexed chunks exactly tile the data region
/// `[data_start, footer_start)` and that per-thread totals agree with
/// the per-chunk reference counts.
fn parse_footer(
    payload: &[u8],
    thread_count: u64,
    data_start: u64,
    footer_start: u64,
) -> Result<Vec<ThreadIndex>, TraceError> {
    let mut cursor = payload;
    // The counts come from the file; bound every pre-allocation by what
    // the remaining footer bytes could actually encode (a thread entry
    // is at least 5 varint bytes, a chunk entry at least 3).
    let mut threads = Vec::with_capacity((thread_count as usize).min(payload.len() / 5 + 1));
    for t in 0..thread_count {
        let chunk_count = get_varint(&mut cursor)?;
        let mut chunks = Vec::with_capacity((chunk_count as usize).min(cursor.len() / 3 + 1));
        let mut prev_off = 0u64;
        let mut indexed_refs = 0u64;
        for _ in 0..chunk_count {
            let delta = get_varint(&mut cursor)?;
            let ref_count = get_varint(&mut cursor)?;
            let payload_len = get_varint(&mut cursor)?;
            let offset = prev_off.checked_add(delta).ok_or(TraceError::Format {
                reason: "chunk offset overflows".into(),
            })?;
            prev_off = offset;
            if ref_count == 0 {
                return format_err(format!("empty chunk indexed for thread {t}"));
            }
            let end = offset
                .checked_add(MIN_CHUNK_HEADER)
                .and_then(|o| o.checked_add(payload_len));
            if offset < data_start || end.is_none_or(|end| end > footer_start) {
                return format_err(format!(
                    "chunk index for thread {t} points outside the data region"
                ));
            }
            indexed_refs = indexed_refs.wrapping_add(ref_count);
            chunks.push(ChunkMeta {
                offset,
                ref_count,
                payload_len,
            });
        }
        let totals = KindTotals {
            instr: get_varint(&mut cursor)?,
            reads: get_varint(&mut cursor)?,
            writes: get_varint(&mut cursor)?,
            barriers: get_varint(&mut cursor)?,
        };
        if totals.refs() != indexed_refs {
            return format_err(format!(
                "footer/index mismatch: thread {t} totals claim {} refs, chunks claim {indexed_refs}",
                totals.refs()
            ));
        }
        threads.push(ThreadIndex { chunks, totals });
    }
    if !cursor.is_empty() {
        return format_err(format!("{} trailing bytes in footer", cursor.len()));
    }

    // The indexed chunks must exactly tile the data region: no gaps for
    // unindexed bytes to hide in, no overlaps, no length lies.
    let mut spans: Vec<(u64, u64)> =
        Vec::with_capacity(threads.iter().map(|i| i.chunks.len()).sum::<usize>());
    for (t, idx) in threads.iter().enumerate() {
        for c in &idx.chunks {
            let head =
                varint_len(t as u64) + varint_len(c.ref_count) + varint_len(c.payload_len) + 8;
            spans.push((c.offset, head + c.payload_len));
        }
    }
    spans.sort_unstable();
    let mut cursor_off = data_start;
    for (off, len) in spans {
        if off != cursor_off {
            return format_err("chunk index does not tile the data region");
        }
        cursor_off += len;
    }
    if cursor_off != footer_start {
        return format_err("chunk index does not tile the data region");
    }
    Ok(threads)
}

// ---------------------------------------------------------------------------
// Zero-copy slice reader
// ---------------------------------------------------------------------------

/// A parsed v3 trace over a borrowed byte slice (mmap-friendly).
///
/// Parsing reads only the header and footer; chunk payloads are
/// checksummed and decoded lazily, per thread, by [`ChunkReader`].
/// Allocation is proportional to the chunk index, never to the number
/// of references.
#[derive(Debug)]
pub struct TraceFile<'a> {
    raw: &'a [u8],
    name: String,
    threads: Vec<ThreadIndex>,
}

impl<'a> TraceFile<'a> {
    /// Parses the header and footer of a v3 trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] on malformed input,
    /// [`TraceError::Version`] on a version mismatch.
    pub fn parse(raw: &'a [u8]) -> Result<Self, TraceError> {
        check_magic_version(raw)?;
        if raw.len() < 8 + TRAILER_LEN {
            return format_err("truncated trailer");
        }
        let trailer: &[u8; TRAILER_LEN] =
            raw[raw.len() - TRAILER_LEN..].try_into().expect("20 bytes");
        let (footer_start, checksum) = locate_footer(raw.len() as u64, trailer)?;
        let header = parse_header(raw)?;
        if footer_start < header.data_start {
            return format_err("footer overlaps header");
        }
        let footer = &raw[footer_start as usize..raw.len() - TRAILER_LEN];
        if fnv1a64(footer) != checksum {
            return format_err("footer checksum mismatch");
        }
        let threads = parse_footer(footer, header.thread_count, header.data_start, footer_start)?;
        Ok(Self {
            raw,
            name: header.name,
            threads,
        })
    }

    /// Trace name from the header.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of threads declared in the header.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Footer totals for one thread.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    #[must_use]
    pub fn totals(&self, thread: ThreadId) -> KindTotals {
        self.threads[thread.index()].totals
    }

    /// Total references across all threads, from the footer.
    #[must_use]
    pub fn total_refs(&self) -> u64 {
        self.threads.iter().map(|t| t.totals.refs()).sum()
    }

    /// A zero-copy reader over one thread's references.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    #[must_use]
    pub fn chunk_reader(&self, thread: ThreadId) -> ChunkReader<'_> {
        ChunkReader {
            raw: self.raw,
            chunks: self.threads[thread.index()].chunks.iter(),
            thread: thread.index() as u64,
            cur: &[],
            left: 0,
            prev: 0,
            failed: false,
        }
    }
}

/// Iterator over one thread's references, decoding chunk payloads in
/// place from the borrowed file bytes.
///
/// Each chunk's header is cross-checked against the footer index and
/// its payload checksummed before any record is yielded. After the
/// first error the iterator fuses and yields nothing further.
#[derive(Debug)]
pub struct ChunkReader<'a> {
    raw: &'a [u8],
    chunks: std::slice::Iter<'a, ChunkMeta>,
    thread: u64,
    cur: &'a [u8],
    left: u64,
    prev: i64,
    failed: bool,
}

impl ChunkReader<'_> {
    /// Verifies the next indexed chunk and exposes its payload.
    fn load_chunk(&mut self, meta: &ChunkMeta) -> Result<(), TraceError> {
        let mut cursor = &self.raw[meta.offset as usize..];
        let thread = get_varint(&mut cursor)?;
        let ref_count = get_varint(&mut cursor)?;
        let payload_len = get_varint(&mut cursor)?;
        if thread != self.thread || ref_count != meta.ref_count || payload_len != meta.payload_len {
            return format_err(format!(
                "footer/index mismatch: chunk at offset {} disagrees with its index entry",
                meta.offset
            ));
        }
        if cursor.len() < 8 + payload_len as usize {
            return format_err("truncated chunk");
        }
        let (sum, rest) = cursor.split_at(8);
        let checksum = u64::from_le_bytes(sum.try_into().expect("8 bytes"));
        let payload = &rest[..payload_len as usize];
        if fnv1a64(payload) != checksum {
            return format_err(format!("chunk checksum mismatch at offset {}", meta.offset));
        }
        self.cur = payload;
        self.left = ref_count;
        self.prev = 0;
        Ok(())
    }

    fn step(&mut self) -> Result<Option<MemRef>, TraceError> {
        while self.left == 0 {
            if !self.cur.is_empty() {
                return format_err(format!(
                    "chunk payload has {} trailing bytes",
                    self.cur.len()
                ));
            }
            let Some(meta) = self.chunks.next().copied() else {
                return Ok(None);
            };
            self.load_chunk(&meta)?;
        }
        let word = get_varint(&mut self.cur)?;
        let kind = RefKind::from_tag(word & 3).expect("2-bit tag");
        let delta = unzigzag(word >> 2);
        let addr = match self.prev.checked_add(delta) {
            Some(a) if (0..=Address::MAX.raw() as i64).contains(&a) => a,
            _ => return format_err("decoded address out of range"),
        };
        self.prev = addr;
        self.left -= 1;
        Ok(Some(MemRef::new(kind, Address::new(addr as u64))))
    }
}

impl Iterator for ChunkReader<'_> {
    type Item = Result<MemRef, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.step() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Out-of-core file reader
// ---------------------------------------------------------------------------

/// A v3 trace on disk, opened by reading only the header and footer.
///
/// Each call to [`FileReader::chunks`] opens an independent file
/// handle, so multiple threads' streams can be consumed concurrently
/// from one `FileReader`.
#[derive(Debug)]
pub struct FileReader {
    path: PathBuf,
    name: String,
    threads: Vec<ThreadIndex>,
    footer_start: u64,
    footer_len: u64,
}

impl FileReader {
    /// Opens a v3 trace file and parses its header and footer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failures and the
    /// [`TraceFile::parse`] errors on malformed content.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < 8 + TRAILER_LEN as u64 {
            return format_err("truncated trailer");
        }

        let mut trailer = [0u8; TRAILER_LEN];
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        file.read_exact(&mut trailer)?;
        let (footer_start, checksum) = locate_footer(file_len, &trailer)?;

        // The header's size depends on the name length it carries, so
        // probe a small prefix first, then read exactly enough. Every
        // read is bounded by the footer offset, which is bounded by the
        // real file length.
        let probe_len = footer_start.min(64) as usize;
        let mut probe = vec![0u8; probe_len];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut probe)?;
        check_magic_version(&probe)?;
        let mut cursor = &probe[8..];
        let name_len = get_varint(&mut cursor)?;
        let head_len = (8 + varint_len(name_len) + name_len + 10).min(footer_start) as usize;
        let mut head = vec![0u8; head_len];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        let header = parse_header(&head)?;
        if footer_start < header.data_start {
            return format_err("footer overlaps header");
        }

        let footer_len = file_len - TRAILER_LEN as u64 - footer_start;
        let mut footer = vec![0u8; footer_len as usize];
        file.seek(SeekFrom::Start(footer_start))?;
        file.read_exact(&mut footer)?;
        if fnv1a64(&footer) != checksum {
            return format_err("footer checksum mismatch");
        }
        let threads = parse_footer(
            &footer,
            header.thread_count,
            header.data_start,
            footer_start,
        )?;
        Ok(Self {
            path,
            name: header.name,
            threads,
            footer_start,
            footer_len,
        })
    }

    /// Trace name from the header.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of threads declared in the header.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Footer totals for one thread.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    #[must_use]
    pub fn totals(&self, thread: ThreadId) -> KindTotals {
        self.threads[thread.index()].totals
    }

    /// Per-thread instruction counts, in thread order (the quantity
    /// placement algorithms use as thread length).
    #[must_use]
    pub fn instr_lengths(&self) -> Vec<u64> {
        self.threads.iter().map(|t| t.totals.instr).collect()
    }

    /// Total references across all threads, from the footer.
    #[must_use]
    pub fn total_refs(&self) -> u64 {
        self.threads.iter().map(|t| t.totals.refs()).sum()
    }

    /// Number of data chunks the footer indexes for one thread, i.e.
    /// how many bounded-memory read steps [`FileReader::chunks`] takes.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    #[must_use]
    pub fn chunk_count(&self, thread: ThreadId) -> usize {
        self.threads[thread.index()].chunks.len()
    }

    /// Checksummed payload bytes the footer indexes for one thread
    /// (chunk payloads only, excluding the per-chunk headers).
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    #[must_use]
    pub fn payload_bytes(&self, thread: ThreadId) -> u64 {
        self.threads[thread.index()]
            .chunks
            .iter()
            .map(|c| c.payload_len)
            .sum()
    }

    /// Total chunks indexed across all threads.
    #[must_use]
    pub fn total_chunks(&self) -> usize {
        self.threads.iter().map(|t| t.chunks.len()).sum()
    }

    /// Total checksummed payload bytes across all threads.
    #[must_use]
    pub fn total_payload_bytes(&self) -> u64 {
        (0..self.threads.len())
            .map(|t| self.payload_bytes(ThreadId::from_index(t)))
            .sum()
    }

    /// File offset where the footer index begins — equivalently, the
    /// end of the chunk data region the index tiles exactly.
    #[must_use]
    pub fn footer_start(&self) -> u64 {
        self.footer_start
    }

    /// Length in bytes of the footer index (the region the trailer
    /// checksum covers).
    #[must_use]
    pub fn footer_bytes(&self) -> u64 {
        self.footer_len
    }

    /// Opens a chunk-at-a-time reader over one thread's references.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file cannot be reopened.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn chunks(&self, thread: ThreadId) -> Result<FileChunks<'_>, TraceError> {
        Ok(FileChunks {
            file: File::open(&self.path)?,
            chunks: &self.threads[thread.index()].chunks,
            thread: thread.index() as u64,
            footer_start: self.footer_start,
            next: 0,
            raw: Vec::new(),
            refs: Vec::new(),
        })
    }
}

/// Chunk-at-a-time reader over one thread of an on-disk v3 trace.
///
/// Buffers are reused across chunks, so the resident set is one chunk's
/// payload plus its decoded references, independent of trace length.
#[derive(Debug)]
pub struct FileChunks<'r> {
    file: File,
    chunks: &'r [ChunkMeta],
    thread: u64,
    footer_start: u64,
    next: usize,
    raw: Vec<u8>,
    refs: Vec<MemRef>,
}

impl FileChunks<'_> {
    /// Reads, verifies and decodes the next chunk. Returns `None` after
    /// the last chunk. The returned slice is valid until the next call.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on read failures and
    /// [`TraceError::Format`] on checksum or index mismatches.
    pub fn next_chunk(&mut self) -> Result<Option<&[MemRef]>, TraceError> {
        let Some(meta) = self.chunks.get(self.next).copied() else {
            return Ok(None);
        };
        self.next += 1;

        // One read covers the worst-case header plus the indexed
        // payload; `parse_footer` bounded `offset + payload_len` by the
        // footer offset, so this allocation is bounded by the file.
        let want =
            (MAX_CHUNK_HEADER + meta.payload_len).min(self.footer_start - meta.offset) as usize;
        self.raw.clear();
        self.raw.resize(want, 0);
        self.file.seek(SeekFrom::Start(meta.offset))?;
        self.file.read_exact(&mut self.raw)?;

        let mut cursor = self.raw.as_slice();
        let thread = get_varint(&mut cursor)?;
        let ref_count = get_varint(&mut cursor)?;
        let payload_len = get_varint(&mut cursor)?;
        if thread != self.thread || ref_count != meta.ref_count || payload_len != meta.payload_len {
            return format_err(format!(
                "footer/index mismatch: chunk at offset {} disagrees with its index entry",
                meta.offset
            ));
        }
        if cursor.len() < 8 + payload_len as usize {
            return format_err("truncated chunk");
        }
        let (sum, rest) = cursor.split_at(8);
        let checksum = u64::from_le_bytes(sum.try_into().expect("8 bytes"));
        let payload = &rest[..payload_len as usize];
        if fnv1a64(payload) != checksum {
            return format_err(format!("chunk checksum mismatch at offset {}", meta.offset));
        }
        self.refs.clear();
        self.refs.reserve((ref_count as usize).min(payload.len()));
        let refs = &mut self.refs;
        decode_payload(payload, ref_count, |r| refs.push(r))?;
        Ok(Some(&self.refs))
    }
}

// ---------------------------------------------------------------------------
// Materialization
// ---------------------------------------------------------------------------

/// Fully materializes a v3 byte stream into a [`ProgramTrace`],
/// verifying every chunk checksum and the footer totals.
///
/// # Errors
///
/// Returns [`TraceError::Format`] on malformed input,
/// [`TraceError::Version`] on a version mismatch.
pub fn from_bytes(raw: &[u8]) -> Result<ProgramTrace, TraceError> {
    let file = TraceFile::parse(raw)?;
    let mut threads = Vec::with_capacity(file.thread_count());
    for t in 0..file.thread_count() {
        let tid = ThreadId::from_index(t);
        let totals = file.totals(tid);
        // The claimed total is bounded by the data region: one byte per
        // reference at minimum.
        let mut trace = ThreadTrace::with_capacity((totals.refs() as usize).min(raw.len()));
        for r in file.chunk_reader(tid) {
            trace.push(r?);
        }
        let decoded = KindTotals {
            instr: trace.instr_len(),
            reads: trace.read_len(),
            writes: trace.write_len(),
            barriers: trace.barrier_len(),
        };
        if decoded != totals {
            return format_err(format!(
                "footer/index mismatch: thread {t} totals disagree with decoded records"
            ));
        }
        threads.push(trace);
    }
    Ok(ProgramTrace::new(file.name, threads))
}

/// Deserializes from any reader by buffering it fully; prefer
/// [`FileReader`] for large files.
///
/// # Errors
///
/// See [`from_bytes`].
pub fn read_program<R: Read>(mut r: R) -> Result<ProgramTrace, TraceError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    from_bytes(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress;

    fn sample() -> ProgramTrace {
        let mut t0 = ThreadTrace::new();
        for i in 0..500u64 {
            t0.push(MemRef::instr(Address::new(4 * i)));
            if i % 3 == 0 {
                t0.push(MemRef::read(Address::new(0x4000_0000 + 32 * (i % 50))));
            }
            if i % 7 == 0 {
                t0.push(MemRef::write(Address::new(0x8000_0000 + 32 * (i % 20))));
            }
        }
        t0.push(MemRef::barrier(0));
        let t1: ThreadTrace = (0..100u64)
            .map(|i| MemRef::read(Address::new(0x4000_0000 + 32 * (i % 5))))
            .collect();
        ProgramTrace::new("stream-me", vec![t0, t1])
    }

    fn multi_chunk_bytes(prog: &ProgramTrace, chunk_bytes: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut sw =
            StreamWriter::with_chunk_bytes(&mut buf, prog.name(), prog.thread_count(), chunk_bytes)
                .unwrap();
        for (tid, thread) in prog.iter() {
            sw.append_thread(tid, thread.iter()).unwrap();
        }
        sw.finish().unwrap();
        buf
    }

    #[test]
    fn roundtrip_single_chunk() {
        let prog = sample();
        let bytes = to_bytes(&prog).unwrap();
        assert_eq!(from_bytes(&bytes).unwrap(), prog);
    }

    #[test]
    fn roundtrip_many_small_chunks() {
        let prog = sample();
        let bytes = multi_chunk_bytes(&prog, 32);
        assert_eq!(from_bytes(&bytes).unwrap(), prog);
    }

    #[test]
    fn summary_reports_totals() {
        let prog = sample();
        let mut buf = Vec::new();
        let mut sw = StreamWriter::new(&mut buf, prog.name(), prog.thread_count()).unwrap();
        for (tid, thread) in prog.iter() {
            sw.append_thread(tid, thread.iter()).unwrap();
        }
        let summary = sw.finish().unwrap();
        assert_eq!(summary.total_refs, prog.total_refs());
        assert_eq!(summary.bytes_written, buf.len() as u64);
        assert_eq!(
            summary.totals[0].instr,
            prog.thread(ThreadId::new(0)).instr_len()
        );
        assert_eq!(
            summary.totals[1].reads,
            prog.thread(ThreadId::new(1)).read_len()
        );
    }

    #[test]
    fn read_any_dispatches_v3() {
        let prog = sample();
        let bytes = to_bytes(&prog).unwrap();
        assert_eq!(compress::read_any(&bytes).unwrap(), prog);
    }

    #[test]
    fn per_thread_iteration_is_isolated() {
        // Corrupt a payload byte of thread 0's (only) chunk; thread 1
        // must still decode cleanly because its reader never touches
        // thread 0's bytes.
        let prog = sample();
        let mut bytes = multi_chunk_bytes(&prog, 1 << 20);
        let file = TraceFile::parse(&bytes).unwrap();
        let t0_off = file.threads[0].chunks[0].offset as usize;
        drop(file);
        bytes[t0_off + 15] ^= 0xff;

        let file = TraceFile::parse(&bytes).unwrap();
        let t1: Result<Vec<_>, _> = file.chunk_reader(ThreadId::new(1)).collect();
        let decoded = t1.unwrap();
        assert_eq!(decoded.len(), prog.thread(ThreadId::new(1)).len());
        let t0: Result<Vec<_>, _> = file.chunk_reader(ThreadId::new(0)).collect();
        assert!(t0.is_err());
    }

    #[test]
    fn chunk_reader_matches_thread_trace() {
        let prog = sample();
        let bytes = multi_chunk_bytes(&prog, 64);
        let file = TraceFile::parse(&bytes).unwrap();
        for (tid, thread) in prog.iter() {
            let decoded: Result<Vec<_>, _> = file.chunk_reader(tid).collect();
            assert_eq!(decoded.unwrap(), thread.iter().collect::<Vec<_>>());
            assert_eq!(file.totals(tid).refs(), thread.len() as u64);
        }
    }

    #[test]
    fn file_reader_matches_slice_reader() {
        let prog = sample();
        let bytes = multi_chunk_bytes(&prog, 128);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("placesim-stream-test-{}.trace", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();

        let reader = FileReader::open(&path).unwrap();
        assert_eq!(reader.name(), prog.name());
        assert_eq!(reader.thread_count(), prog.thread_count());
        assert_eq!(reader.total_refs(), prog.total_refs());
        assert_eq!(
            reader.instr_lengths(),
            prog.threads()
                .iter()
                .map(|t| t.instr_len())
                .collect::<Vec<_>>()
        );
        for (tid, thread) in prog.iter() {
            let mut chunks = reader.chunks(tid).unwrap();
            let mut decoded = Vec::new();
            while let Some(refs) = chunks.next_chunk().unwrap() {
                decoded.extend_from_slice(refs);
            }
            assert_eq!(decoded, thread.iter().collect::<Vec<_>>());
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// The footer-metadata accessors describe the file exactly: chunk
    /// counts match the index, payload bytes plus chunk headers plus
    /// header and footer and trailer tile the whole file, and chunking
    /// scales with the chunk-size knob.
    #[test]
    fn footer_metadata_accessors_describe_the_file() {
        let prog = sample();
        let bytes = multi_chunk_bytes(&prog, 64);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("placesim-stream-meta-{}.trace", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();

        let reader = FileReader::open(&path).unwrap();
        let per_thread: Vec<usize> = (0..reader.thread_count())
            .map(|t| reader.chunk_count(ThreadId::from_index(t)))
            .collect();
        assert_eq!(per_thread.iter().sum::<usize>(), reader.total_chunks());
        // 64-byte chunks over a 500+-instruction thread: many chunks.
        assert!(per_thread[0] > 1, "{per_thread:?}");
        // Each indexed chunk delivers exactly one bounded read step.
        for (t, &n) in per_thread.iter().enumerate() {
            let tid = ThreadId::from_index(t);
            let mut chunks = reader.chunks(tid).unwrap();
            let mut steps = 0;
            while chunks.next_chunk().unwrap().is_some() {
                steps += 1;
            }
            assert_eq!(steps, n, "thread {t}");
        }
        assert_eq!(
            reader.total_payload_bytes(),
            (0..reader.thread_count())
                .map(|t| reader.payload_bytes(ThreadId::from_index(t)))
                .sum::<u64>()
        );
        // The data region [data_start, footer_start) is payload plus
        // chunk headers; footer + trailer close out the file.
        assert!(reader.total_payload_bytes() < reader.footer_start());
        assert_eq!(
            reader.footer_start() + reader.footer_bytes() + TRAILER_LEN as u64,
            bytes.len() as u64
        );

        // A generous chunk size collapses each thread to one chunk.
        let one = multi_chunk_bytes(&prog, 1 << 20);
        std::fs::write(&path, &one).unwrap();
        let reader = FileReader::open(&path).unwrap();
        assert_eq!(reader.chunk_count(ThreadId::new(0)), 1);
        assert_eq!(reader.chunk_count(ThreadId::new(1)), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_program_roundtrips() {
        let prog = ProgramTrace::new("", vec![]);
        let bytes = to_bytes(&prog).unwrap();
        assert_eq!(from_bytes(&bytes).unwrap(), prog);
        assert_eq!(compress::read_any(&bytes).unwrap(), prog);
    }

    #[test]
    fn empty_threads_roundtrip() {
        let prog = ProgramTrace::new(
            "holes",
            vec![
                ThreadTrace::new(),
                (0..10u64)
                    .map(|i| MemRef::instr(Address::new(4 * i)))
                    .collect(),
                ThreadTrace::new(),
            ],
        );
        let bytes = multi_chunk_bytes(&prog, 8);
        assert_eq!(from_bytes(&bytes).unwrap(), prog);
        let file = TraceFile::parse(&bytes).unwrap();
        assert_eq!(file.chunk_reader(ThreadId::new(0)).count(), 0);
        assert_eq!(file.chunk_reader(ThreadId::new(2)).count(), 0);
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = multi_chunk_bytes(&sample(), 64);
        for cut in [0, 3, 7, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_payload_corruption() {
        let prog = sample();
        let bytes = multi_chunk_bytes(&prog, 1 << 20);
        let file = TraceFile::parse(&bytes).unwrap();
        let off = file.threads[0].chunks[0].offset as usize;
        drop(file);
        let mut bad = bytes.clone();
        bad[off + 20] ^= 0x55;
        let err = from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn rejects_footer_corruption() {
        let bytes = to_bytes(&sample()).unwrap();
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - TRAILER_LEN - 1] ^= 0x01; // last footer payload byte
        let err = from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x01; // trailer magic
        assert!(from_bytes(&bad).is_err());
    }

    #[test]
    fn rejects_version_mismatch() {
        let mut bytes = to_bytes(&sample()).unwrap();
        bytes[4] = 9;
        assert!(matches!(
            from_bytes(&bytes),
            Err(TraceError::Version { found: 9, .. })
        ));
    }

    #[test]
    fn varint_len_matches_encoder() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len() as u64);
        }
    }
}
