//! Hostile-input tests: no malformed trace file may crash the decoders
//! or pre-allocate more than a small multiple of its own size.
//!
//! A custom global allocator tracks live and peak heap bytes, so every
//! test can assert a hard bound on the decoder's peak allocation: the
//! historical bug here was `Vec::with_capacity(thread_count)` on an
//! attacker-controlled count, which let a 16-byte file reserve ~100 GB.
//!
//! The allocator needs `unsafe` (the library itself forbids it; this
//! integration-test binary is a separate crate and opts in locally).

use placesim_trace::{compress, io, Address, MemRef, ProgramTrace, ThreadTrace, TraceError};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Wraps the system allocator, tracking current and peak live bytes.
struct TrackingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

// SAFETY: delegates allocation verbatim to `System`; the bookkeeping is
// plain atomic arithmetic on the side.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = self.current.fetch_add(layout.size(), Ordering::SeqCst) + layout.size();
            self.peak.fetch_max(live, Ordering::SeqCst);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.current.fetch_sub(layout.size(), Ordering::SeqCst);
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc {
    current: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

/// Serializes measured sections: the test harness runs `#[test]` fns on
/// parallel threads, and concurrent allocations would pollute the peak.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f`, returning its result and the peak heap growth (bytes above
/// the live size at entry) during the call.
fn measured_peak<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let base = ALLOC.current.load(Ordering::SeqCst);
    ALLOC.peak.store(base, Ordering::SeqCst);
    let result = f();
    let peak = ALLOC.peak.load(Ordering::SeqCst);
    (peak.saturating_sub(base), result)
}

/// The allocation bound for a decode of `input_len` bytes: a small
/// multiple of the input (decoded references and per-thread bookkeeping
/// legitimately outgrow the compressed bytes) plus a fixed constant for
/// decoder temporaries.
fn alloc_bound(input_len: usize) -> usize {
    input_len * 16 + 64 * 1024
}

fn sample_program() -> ProgramTrace {
    let mk = |base: u64| -> ThreadTrace {
        (0..24)
            .map(|i| match i % 3 {
                0 => MemRef::instr(Address::new(base + 4 * i)),
                1 => MemRef::read(Address::new(base + 64 * i)),
                _ => MemRef::write(Address::new(base)),
            })
            .collect()
    };
    ProgramTrace::new("hostile-sample", vec![mk(0), mk(0x1000), mk(0x2000)])
}

/// A v1 header claiming `thread_count` threads with no body at all.
fn v1_claiming_threads(thread_count: u32) -> Vec<u8> {
    let mut f = Vec::new();
    f.extend_from_slice(b"PSIM");
    f.extend_from_slice(&1u32.to_le_bytes());
    f.extend_from_slice(&0u32.to_le_bytes()); // empty name
    f.extend_from_slice(&thread_count.to_le_bytes());
    f
}

/// A v2 header claiming `thread_count` threads with no body at all.
fn v2_claiming_threads(thread_count: u64) -> Vec<u8> {
    let mut f = Vec::new();
    f.extend_from_slice(b"PSIM");
    f.extend_from_slice(&2u32.to_le_bytes());
    f.push(0); // empty name (varint 0)
    let mut v = thread_count;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            f.push(byte);
            break;
        }
        f.push(byte | 0x80);
    }
    f
}

#[test]
fn sixteen_byte_file_claiming_4_billion_threads_stays_small() {
    let file = v1_claiming_threads(u32::MAX);
    assert_eq!(file.len(), 16);
    let (peak, result) = measured_peak(|| io::from_bytes(&file));
    assert!(matches!(result, Err(TraceError::Format { .. })));
    assert!(
        peak <= 64 * 1024,
        "16-byte hostile file pre-allocated {peak} bytes"
    );
}

#[test]
fn v2_header_claiming_huge_thread_count_stays_small() {
    let file = v2_claiming_threads(1 << 40);
    let (peak, result) = measured_peak(|| compress::read_any(&file));
    assert!(matches!(result, Err(TraceError::Format { .. })));
    assert!(
        peak <= 64 * 1024,
        "hostile v2 header pre-allocated {peak} bytes"
    );
}

#[test]
fn huge_name_length_is_rejected_without_allocation() {
    for version in [1u32, 2] {
        let mut f = Vec::new();
        f.extend_from_slice(b"PSIM");
        f.extend_from_slice(&version.to_le_bytes());
        if version == 1 {
            f.extend_from_slice(&u32::MAX.to_le_bytes());
        } else {
            // Varint name length ~2^40.
            f.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]);
        }
        let (peak, result) = measured_peak(|| compress::read_any(&f));
        assert!(
            matches!(result, Err(TraceError::Format { .. })),
            "version {version}"
        );
        assert!(peak <= 64 * 1024, "version {version} pre-allocated {peak}");
    }
}

#[test]
fn v1_overflowing_thread_length_is_rejected() {
    let mut f = v1_claiming_threads(1);
    f.extend_from_slice(&u64::MAX.to_le_bytes()); // len * 8 overflows
    let (peak, result) = measured_peak(|| io::from_bytes(&f));
    assert!(matches!(result, Err(TraceError::Format { .. })));
    assert!(peak <= 64 * 1024, "overflow length pre-allocated {peak}");
}

#[test]
fn v2_huge_per_thread_length_stays_small() {
    let mut f = v2_claiming_threads(1);
    // One thread whose length varint claims ~2^40 references.
    f.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]);
    let (peak, result) = measured_peak(|| compress::read_any(&f));
    assert!(matches!(result, Err(TraceError::Format { .. })));
    assert!(
        peak <= 64 * 1024,
        "hostile thread length pre-allocated {peak}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary byte soup: decoding must return (Ok or Err, never
    /// panic) with bounded peak allocation.
    #[test]
    fn arbitrary_bytes_never_overallocate(raw in proptest::collection::vec(0u8..=255, 0..256)) {
        let (peak, result) = measured_peak(|| compress::read_any(&raw));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(raw.len()),
            "{} input bytes peaked at {} allocated bytes",
            raw.len(),
            peak
        );
    }

    /// Valid v1 files with mutated bytes: graceful error or valid
    /// decode, never a panic or an outsized allocation.
    #[test]
    fn mutated_v1_files_never_overallocate(
        pos in 0usize..512,
        value in 0u8..=255,
        cut in 0usize..=512,
    ) {
        let mut file = io::to_bytes(&sample_program()).unwrap().to_vec();
        let idx = pos % file.len();
        file[idx] = value;
        if cut < 512 {
            file.truncate(cut % (file.len() + 1));
        }
        let (peak, result) = measured_peak(|| compress::read_any(&file));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(file.len()),
            "{} input bytes peaked at {} allocated bytes",
            file.len(),
            peak
        );
    }

    /// Same for the compressed v2 format.
    #[test]
    fn mutated_v2_files_never_overallocate(
        pos in 0usize..512,
        value in 0u8..=255,
        cut in 0usize..=512,
    ) {
        let mut file = compress::to_bytes(&sample_program()).unwrap().to_vec();
        let idx = pos % file.len();
        file[idx] = value;
        if cut < 512 {
            file.truncate(cut % (file.len() + 1));
        }
        let (peak, result) = measured_peak(|| compress::read_any(&file));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(file.len()),
            "{} input bytes peaked at {} allocated bytes",
            file.len(),
            peak
        );
    }

    /// Hostile thread counts over the whole u32 range, with a few real
    /// body bytes appended: always a graceful error or decode, always
    /// bounded.
    #[test]
    fn claimed_thread_counts_never_overallocate(
        count in 0u32..=u32::MAX,
        body in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut file = v1_claiming_threads(count);
        file.extend_from_slice(&body);
        let (peak, result) = measured_peak(|| io::from_bytes(&file));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(file.len()),
            "claimed {} threads, {} input bytes, peaked at {}",
            count,
            file.len(),
            peak
        );
    }
}
