//! Custom experiment grids as CSV on stdout.
//!
//! ```sh
//! cargo run --release -p placesim-bench --bin grid -- \
//!     --apps water,fft --algos LOAD-BAL,RANDOM,SHARE-REFS --procs 2,4,8
//! ```
//!
//! Defaults: all 14 applications, all 14 static algorithms, the paper's
//! processor counts. `--infinite` switches to the 8 MB cache.

use placesim::figures::default_processor_counts;
use placesim::grid::{grid_to_csv, run_grid};
use placesim_bench::{harness_opts, prepare};
use placesim_machine::ArchConfig;
use placesim_placement::PlacementAlgorithm;
use placesim_workloads::SUITE_NAMES;

fn list_arg(args: &[String], name: &str) -> Option<Vec<String>> {
    args.iter().position(|a| a == name).and_then(|i| {
        args.get(i + 1)
            .map(|v| v.split(',').map(str::to_owned).collect())
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let apps = list_arg(&args, "--apps")
        .unwrap_or_else(|| SUITE_NAMES.iter().map(|s| s.to_string()).collect());
    let algos: Vec<PlacementAlgorithm> = match list_arg(&args, "--algos") {
        None => PlacementAlgorithm::STATIC.to_vec(),
        Some(names) => names
            .iter()
            .map(|n| {
                PlacementAlgorithm::ALL
                    .into_iter()
                    .find(|a| a.paper_name().eq_ignore_ascii_case(n))
                    .unwrap_or_else(|| {
                        eprintln!("unknown algorithm {n}");
                        std::process::exit(2);
                    })
            })
            .collect(),
    };
    let procs: Option<Vec<usize>> = list_arg(&args, "--procs").map(|ps| {
        ps.iter()
            .map(|p| p.parse().expect("--procs takes integers"))
            .collect()
    });
    let infinite = args.iter().any(|a| a == "--infinite");
    let config = infinite.then(ArchConfig::infinite_cache);

    let opts = harness_opts();
    eprintln!(
        "grid: {} apps x {} algorithms (scale {})",
        apps.len(),
        algos.len(),
        opts.scale
    );

    let mut all = Vec::new();
    for name in &apps {
        let app = prepare(name);
        let pcs = procs
            .clone()
            .unwrap_or_else(|| default_processor_counts(app.threads()));
        let records = run_grid(&app, &algos, &pcs, config.as_ref()).expect("grid cell failed");
        all.extend(records);
    }
    print!("{}", grid_to_csv(&all));
}
