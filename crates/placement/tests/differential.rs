//! Differential tests: the engine's cached score mode must produce the
//! *identical* placement as fresh scoring, for every algorithm.
//!
//! The cached mode replaces O(|A|·|B|) cross-sum walks with O(1) lookups
//! of incrementally maintained aggregates. Because the cached sums are
//! the same exact `u64` values, every score — and therefore every
//! deterministic tie-break in `ranked_candidates` — is bit-identical,
//! and so is the final `PlacementMap`. These tests pin that contract on
//! randomized programs, uneven balance shapes, and inputs engineered to
//! force backtracking (where undo must restore the caches exactly).

use placesim_analysis::{SharingAnalysis, SymMatrix};
use placesim_placement::engine::{cluster, EngineOptions, LoadConstraint};
use placesim_placement::{PlacementAlgorithm, PlacementInputs, ScoreMode, ShareRefsMetric};
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use proptest::prelude::*;

/// A random small program: up to 12 threads, each touching a random
/// subset of 16 shared addresses and some private ones.
fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    let thread = proptest::collection::vec((0u64..16, 0u8..3, 1u32..6), 1..24);
    proptest::collection::vec(thread, 2..12).prop_map(|threads| {
        let traces: Vec<ThreadTrace> = threads
            .into_iter()
            .enumerate()
            .map(|(tid, accesses)| {
                let mut t = ThreadTrace::new();
                for i in 0..(tid + 1) * 3 {
                    t.push(MemRef::instr(Address::new(4 * i as u64)));
                }
                for (slot, kind, reps) in accesses {
                    let addr = Address::new(0x1000 + slot * 8);
                    for _ in 0..reps {
                        let r = match kind {
                            0 => MemRef::read(addr),
                            1 => MemRef::write(addr),
                            _ => MemRef::read(Address::new(
                                0x10_0000 + tid as u64 * 0x1000 + slot * 8,
                            )),
                        };
                        t.push(r);
                    }
                }
                t
            })
            .collect();
        ProgramTrace::new("prop", traces)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm, every processor-count shape: cached == fresh.
    #[test]
    fn cached_placement_identical_to_fresh(
        prog in arb_program(),
        p_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let t = prog.thread_count();
        let p = 1 + ((t - 1) as f64 * p_frac) as usize;
        let sharing = SharingAnalysis::measure(&prog);
        let lengths = placesim_placement::thread_lengths(&prog);
        let mut traffic = SymMatrix::new(t, 0u64);
        if t >= 2 {
            traffic.set(0, 1, seed % 17);
        }
        let inputs = PlacementInputs::new(&sharing, &lengths)
            .with_seed(seed)
            .with_traffic(&traffic);

        for algo in PlacementAlgorithm::ALL {
            let cached = algo.place_with_mode(&inputs, p, ScoreMode::Cached).unwrap();
            let fresh = algo.place_with_mode(&inputs, p, ScoreMode::Fresh).unwrap();
            prop_assert_eq!(cached, fresh, "{} with p={} diverged", algo, p);
        }
    }

    /// Uneven cluster shapes (t not divisible by p) exercise the
    /// big-cluster accounting; +LB variants exercise the cached load
    /// sums. Randomized matrices drive them directly through the engine.
    #[test]
    fn engine_modes_agree_on_random_matrices(
        entries in proptest::collection::vec((0usize..9, 0usize..9, 0u64..50), 0..30),
        lengths in proptest::collection::vec(1u64..100, 9),
        p in 2usize..8,
    ) {
        let t = 9;
        let mut m = SymMatrix::new(t, 0u64);
        for (i, j, v) in entries {
            if i != j {
                m.add(i, j, v);
            }
        }
        let metric = ShareRefsMetric { refs: &m };
        for load in [None, Some(LoadConstraint { lengths: &lengths, tolerance: 0.10 })] {
            let run = |mode| {
                cluster(&metric, t, p, EngineOptions {
                    load,
                    score_mode: mode,
                    ..EngineOptions::default()
                }).unwrap()
            };
            prop_assert_eq!(
                run(ScoreMode::Cached),
                run(ScoreMode::Fresh),
                "p={} load={} diverged", p, load.is_some()
            );
        }
    }
}

/// The greedy-trap fixture from the engine's unit tests: the search must
/// backtrack out of a dead end, so cached aggregates go through
/// combine → undo → combine sequences. Both modes must still agree.
#[test]
fn modes_agree_under_backtracking() {
    let mut m = SymMatrix::new(8, 0u64);
    for &(i, j, v) in &[(0, 1, 100), (1, 2, 90), (3, 4, 80), (4, 5, 70), (6, 7, 1)] {
        m.set(i, j, v);
    }
    let metric = ShareRefsMetric { refs: &m };
    let run = |mode| {
        cluster(
            &metric,
            8,
            2,
            EngineOptions {
                score_mode: mode,
                ..EngineOptions::default()
            },
        )
        .unwrap()
    };
    let cached = run(ScoreMode::Cached);
    assert_eq!(cached, run(ScoreMode::Fresh));
    let sizes: Vec<usize> = cached.iter().map(Vec::len).collect();
    assert_eq!(sizes, vec![4, 4], "backtracking reached the balanced shape");
}
