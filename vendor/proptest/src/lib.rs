//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the real crate this workspace's property
//! tests use: the `proptest!` macro (including `#![proptest_config]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `prop_oneof!`,
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! strategies for integer and float ranges, tuples, `Just`,
//! [`collection::vec`], and a minimal `[class]{m,n}`-style string
//! strategy.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case
//!   index so it can be replayed exactly; it is not minimized.
//! * **Deterministic seeding.** Case `i` of test `t` derives its RNG
//!   from `hash(module_path, t, i)`, so failures reproduce across runs
//!   without a persistence file. Set `PROPTEST_SEED_OFFSET` to explore
//!   a different slice of the input space.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Configuration and the deterministic RNG.

    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// SplitMix64 generator seeded from the test identity and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG for case `case` of the test named `ident`.
        pub fn deterministic(ident: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in ident.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            let offset = std::env::var("PROPTEST_SEED_OFFSET")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            TestRng(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ offset)
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then a value from the
        /// strategy `f` builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    trait ErasedStrategy {
        type Value;
        fn generate_erased(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> ErasedStrategy for S {
        type Value = S::Value;
        fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_erased(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Pattern strategy for `&str`: supports concatenations of literal
/// characters and `[a-z0-9-]`-style classes, each optionally repeated
/// `{m,n}` or `{m}` times — the subset the workspace's tests use.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [class] in string strategy")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m} / {m,n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed {rep} in string strategy")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad {m,n}"),
                        n.trim().parse::<usize>().expect("bad {m,n}"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("bad {m}");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                let k = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A size or size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Like `assert!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Like `assert_eq!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Like `assert_ne!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-definition macro. Accepts the real crate's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, mut v in arb_vec()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || $body,
                    ));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest {}: failed at deterministic case {}/{} \
                             (regenerate with the same case index to replay)",
                            stringify!($name),
                            case,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("self-test", 0);
        let s = (1u64..5, 0.25f64..0.75);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.25..0.75).contains(&b));
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::deterministic("self-test-str", 1);
        for _ in 0..100 {
            let s = "[a-z0-9-]{0,16}".generate(&mut rng);
            assert!(s.len() <= 16);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
        assert_eq!("ab".generate(&mut rng), "ab");
        assert_eq!("x{3}".generate(&mut rng), "xxx");
    }

    #[test]
    fn vec_and_oneof_and_map() {
        let mut rng = TestRng::deterministic("self-test-vec", 2);
        let s = crate::collection::vec(0u8..4, 3..7).prop_map(|v| v.len());
        for _ in 0..50 {
            let n = s.generate(&mut rng);
            assert!((3..7).contains(&n));
        }
        let u = prop_oneof![Just(1u32), Just(2u32), 5u32..7];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2));
        assert!(seen
            .iter()
            .all(|&v| v == 1 || v == 2 || (5..7).contains(&v)));
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = TestRng::deterministic("self-test-exact", 3);
        let s = crate::collection::vec(0u8..10, 3usize);
        assert_eq!(s.generate(&mut rng).len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, mut v in crate::collection::vec(0u8..3, 0..5)) {
            v.push(0);
            prop_assert!(x < 100);
            prop_assert_eq!(v.last().copied(), Some(0));
            prop_assert_ne!(v.len(), 0);
        }
    }
}
