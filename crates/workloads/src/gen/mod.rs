//! The trace generator: turns an [`AppSpec`] into a [`ProgramTrace`].

mod emit;
mod length;
mod patterns;
pub mod reference;
pub(crate) mod regions;

use crate::spec::AppSpec;
use placesim_trace::par::parallel_map;
use placesim_trace::{AddrCounts, ProgramTrace};
use serde::{Deserialize, Serialize};

/// Generation options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenOptions {
    /// Length scale factor: 1.0 reproduces the paper's simulated thread
    /// lengths (Table 2); smaller values shrink traces proportionally
    /// while preserving all distributional shapes. Mirrors the paper's
    /// own practice of scaling trace and data-set size together (§3.2).
    pub scale: f64,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            scale: 1.0,
            seed: 0x1994,
        }
    }
}

/// Generates the synthetic trace of one application.
///
/// Deterministic: the same `spec` and `opts` always produce the same
/// trace. Threads are emitted in parallel (each thread's rng is seeded
/// independently, so the per-thread streams — and hence the program —
/// are identical at any worker count); [`reference::generate`] keeps
/// the original serial emitter for differential testing.
///
/// # Panics
///
/// Panics if `opts.scale` is not strictly positive or the spec has zero
/// threads.
pub fn generate(spec: &AppSpec, opts: &GenOptions) -> ProgramTrace {
    generate_with_access(spec, opts).0
}

/// Generates the synthetic trace *and* its access profile in one pass.
///
/// The second component holds, per thread, one [`AddrCounts`] entry per
/// run the emitter produced (unaggregated: an address recurs once per
/// run). The emitter already knows every run it emits, so the profile is
/// free — downstream sharing analysis (`SharingAnalysis::measure_access`
/// in `placesim-analysis`) can consume it without re-scanning the trace.
///
/// # Panics
///
/// Panics if `opts.scale` is not strictly positive or the spec has zero
/// threads.
pub fn generate_with_access(
    spec: &AppSpec,
    opts: &GenOptions,
) -> (ProgramTrace, Vec<Vec<AddrCounts>>) {
    assert!(opts.scale > 0.0, "scale must be positive");
    assert!(spec.threads > 0, "an application needs at least one thread");

    let lengths = length::sample_lengths(spec, opts);
    let plans = patterns::assign_addresses(spec, &lengths, opts);
    let layout = regions::Layout::new(
        lengths
            .iter()
            .map(|&n| emit::private_slot_count(spec, n))
            .collect(),
    );
    let schedule = emit::Schedule::build(spec, lengths.iter().copied().max().unwrap_or(0));
    let jobs: Vec<(usize, u64, patterns::SharedPlan)> = lengths
        .iter()
        .zip(plans)
        .enumerate()
        .map(|(tid, (&n_instr, plan))| (tid, n_instr, plan))
        .collect();
    let results = parallel_map(&jobs, |(tid, n_instr, plan)| {
        emit::emit_thread(spec, *tid, *n_instr, plan, &layout, opts, &schedule)
    });
    let (threads, access): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    (ProgramTrace::new(spec.name, threads), access)
}

/// Generates the synthetic trace straight into a streaming (v3) trace
/// writer, one thread at a time, without ever holding the whole program
/// in memory.
///
/// Produces a byte stream whose decoded contents are bit-identical to
/// [`generate`] with the same `spec` and `opts`: every thread's rng is
/// seeded independently, so emitting threads serially (and dropping each
/// [`placesim_trace::ThreadTrace`] after appending it) changes nothing
/// about the reference streams. Peak memory is the generation skeleton
/// (lengths, plans, layout, schedule) plus a single thread's trace,
/// independent of thread count × thread length.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
///
/// # Panics
///
/// Panics if `opts.scale` is not strictly positive or the spec has zero
/// threads.
pub fn generate_streamed<W: std::io::Write>(
    spec: &AppSpec,
    opts: &GenOptions,
    w: W,
) -> Result<placesim_trace::stream::StreamSummary, placesim_trace::TraceError> {
    assert!(opts.scale > 0.0, "scale must be positive");
    assert!(spec.threads > 0, "an application needs at least one thread");

    let lengths = length::sample_lengths(spec, opts);
    let plans = patterns::assign_addresses(spec, &lengths, opts);
    let layout = regions::Layout::new(
        lengths
            .iter()
            .map(|&n| emit::private_slot_count(spec, n))
            .collect(),
    );
    let schedule = emit::Schedule::build(spec, lengths.iter().copied().max().unwrap_or(0));

    let mut writer = placesim_trace::stream::StreamWriter::new(w, spec.name, spec.threads)?;
    for (tid, (&n_instr, plan)) in lengths.iter().zip(&plans).enumerate() {
        let (thread, _access) =
            emit::emit_thread(spec, tid, n_instr, plan, &layout, opts, &schedule);
        writer.append_thread(placesim_trace::ThreadId::from_index(tid), thread.iter())?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn deterministic_per_seed() {
        let spec = suite::fft();
        let opts = GenOptions {
            scale: 0.01,
            seed: 42,
        };
        let a = generate(&spec, &opts);
        let b = generate(&spec, &opts);
        assert_eq!(a, b);
        let c = generate(
            &spec,
            &GenOptions {
                scale: 0.01,
                seed: 43,
            },
        );
        assert_ne!(a, c, "different seeds should vary the trace");
    }

    #[test]
    fn thread_count_matches_spec() {
        for spec in suite::suite() {
            let prog = generate(
                &spec,
                &GenOptions {
                    scale: 0.002,
                    seed: 1,
                },
            );
            assert_eq!(prog.thread_count(), spec.threads, "{}", spec.name);
            assert!(prog.total_refs() > 0);
        }
    }

    #[test]
    fn scale_shrinks_traces_proportionally() {
        let spec = suite::water();
        let small = generate(
            &spec,
            &GenOptions {
                scale: 0.005,
                seed: 9,
            },
        );
        let large = generate(
            &spec,
            &GenOptions {
                scale: 0.01,
                seed: 9,
            },
        );
        let ratio = large.total_instrs() as f64 / small.total_instrs() as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn streamed_generation_is_bit_identical() {
        let spec = suite::fft();
        let opts = GenOptions {
            scale: 0.01,
            seed: 42,
        };
        let mut bytes = Vec::new();
        let summary = generate_streamed(&spec, &opts, &mut bytes).unwrap();
        let expected = generate(&spec, &opts);
        assert_eq!(summary.total_refs, expected.total_refs());
        assert_eq!(summary.bytes_written as usize, bytes.len());
        let decoded = placesim_trace::stream::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, expected);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = generate(
            &suite::water(),
            &GenOptions {
                scale: 0.0,
                seed: 1,
            },
        );
    }
}
