//! Regenerates the paper's Table 3: architectural simulator inputs.

fn main() {
    placesim_bench::print_table3();
}
