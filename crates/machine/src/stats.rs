//! Cycle accounting and the four-way cache-miss taxonomy.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// The paper's cache-miss classification (§3.2: "separate statistics on
/// the individual cache miss components of compulsory, intra-thread
/// conflict, inter-thread conflict and invalidation misses").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissKind {
    /// First reference to the line by this processor's cache, ever.
    Compulsory,
    /// The line was previously evicted by a reference of the *same*
    /// thread.
    IntraThreadConflict,
    /// The line was previously evicted by a reference of a *different*
    /// co-resident thread.
    InterThreadConflict,
    /// The line was invalidated by another processor's write.
    Invalidation,
}

impl MissKind {
    /// All kinds, in the paper's presentation order.
    pub const ALL: [MissKind; 4] = [
        MissKind::Compulsory,
        MissKind::IntraThreadConflict,
        MissKind::InterThreadConflict,
        MissKind::Invalidation,
    ];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            MissKind::Compulsory => "compulsory",
            MissKind::IntraThreadConflict => "intra-thread conflict",
            MissKind::InterThreadConflict => "inter-thread conflict",
            MissKind::Invalidation => "invalidation",
        }
    }
}

impl fmt::Display for MissKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Miss counts by [`MissKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissBreakdown {
    /// Compulsory misses.
    pub compulsory: u64,
    /// Intra-thread conflict misses.
    pub intra_thread_conflict: u64,
    /// Inter-thread conflict misses.
    pub inter_thread_conflict: u64,
    /// Invalidation misses.
    pub invalidation: u64,
}

impl MissBreakdown {
    /// Records one miss of `kind`.
    pub fn record(&mut self, kind: MissKind) {
        match kind {
            MissKind::Compulsory => self.compulsory += 1,
            MissKind::IntraThreadConflict => self.intra_thread_conflict += 1,
            MissKind::InterThreadConflict => self.inter_thread_conflict += 1,
            MissKind::Invalidation => self.invalidation += 1,
        }
    }

    /// Count for one kind.
    pub fn get(&self, kind: MissKind) -> u64 {
        match kind {
            MissKind::Compulsory => self.compulsory,
            MissKind::IntraThreadConflict => self.intra_thread_conflict,
            MissKind::InterThreadConflict => self.inter_thread_conflict,
            MissKind::Invalidation => self.invalidation,
        }
    }

    /// All misses.
    pub fn total(&self) -> u64 {
        self.compulsory
            + self.intra_thread_conflict
            + self.inter_thread_conflict
            + self.invalidation
    }

    /// Conflict misses (intra + inter).
    pub fn conflicts(&self) -> u64 {
        self.intra_thread_conflict + self.inter_thread_conflict
    }

    /// Compulsory + invalidation misses — the component the sharing
    /// hypothesis predicts placement should reduce.
    pub fn compulsory_plus_invalidation(&self) -> u64 {
        self.compulsory + self.invalidation
    }

    /// Iterates over `(kind, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MissKind, u64)> + '_ {
        MissKind::ALL.into_iter().map(|k| (k, self.get(k)))
    }
}

impl AddAssign for MissBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.compulsory += rhs.compulsory;
        self.intra_thread_conflict += rhs.intra_thread_conflict;
        self.inter_thread_conflict += rhs.inter_thread_conflict;
        self.invalidation += rhs.invalidation;
    }
}

/// Per-processor cycle and event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcStats {
    /// Cycles spent executing references (one per completed reference).
    pub busy: u64,
    /// Cycles spent draining the pipeline on context switches.
    pub switching: u64,
    /// Cycles spent with no ready context.
    pub idle: u64,
    /// Cycle at which this processor's last reference completed.
    pub finish_time: u64,
    /// References that hit in the cache.
    pub hits: u64,
    /// Miss counts by kind.
    pub misses: MissBreakdown,
    /// Invalidations this processor's writes sent to remote caches.
    pub invalidations_sent: u64,
    /// Invalidations received (lines removed from this cache).
    pub invalidations_received: u64,
    /// Write hits on Shared lines (coherence upgrades). Always zero
    /// under Dragon, whose shared writes send updates instead.
    pub upgrades: u64,
    /// Write-update messages this processor's writes sent to remote
    /// sharers (Dragon only; structurally zero under write-invalidate
    /// protocols, never double-counted as invalidations).
    pub updates_sent: u64,
    /// Write-update messages received (lines refreshed in place).
    pub updates_received: u64,
    /// Barrier operations executed (arrivals at global barriers).
    pub barrier_ops: u64,
}

impl ProcStats {
    /// Total references executed (including barrier records).
    pub fn refs(&self) -> u64 {
        self.hits + self.misses.total() + self.barrier_ops
    }

    /// `busy + switching + idle` — must equal `finish_time` (conservation
    /// law, enforced by tests).
    pub fn accounted_cycles(&self) -> u64 {
        self.busy + self.switching + self.idle
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    per_proc: Vec<ProcStats>,
}

impl SimStats {
    pub(crate) fn new(per_proc: Vec<ProcStats>) -> Self {
        SimStats { per_proc }
    }

    /// Per-processor statistics, indexed by processor id.
    pub fn per_proc(&self) -> &[ProcStats] {
        &self.per_proc
    }

    /// Execution time: the maximum finish time over all processors (the
    /// quantity the paper's Figures 2–4 plot).
    pub fn execution_time(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|p| p.finish_time)
            .max()
            .unwrap_or(0)
    }

    /// Aggregated miss breakdown over all processors.
    pub fn total_misses(&self) -> MissBreakdown {
        let mut sum = MissBreakdown::default();
        for p in &self.per_proc {
            sum += p.misses;
        }
        sum
    }

    /// Total cache hits.
    pub fn total_hits(&self) -> u64 {
        self.per_proc.iter().map(|p| p.hits).sum()
    }

    /// Total references executed.
    pub fn total_refs(&self) -> u64 {
        self.per_proc.iter().map(|p| p.refs()).sum()
    }

    /// Total invalidations sent.
    pub fn total_invalidations(&self) -> u64 {
        self.per_proc.iter().map(|p| p.invalidations_sent).sum()
    }

    /// Total write-update messages sent (Dragon's `UpdateTraffic`
    /// column; zero under write-invalidate protocols).
    pub fn total_updates(&self) -> u64 {
        self.per_proc.iter().map(|p| p.updates_sent).sum()
    }

    /// The paper's "coherence traffic" generalized across protocols:
    /// invalidations plus invalidation misses (write-invalidate family)
    /// plus update messages (write-update family). Each transaction
    /// lands in exactly one bucket, so the buckets sum without double
    /// counting; under the paper's protocol updates are structurally
    /// zero and this reduces to the original definition.
    pub fn coherence_traffic(&self) -> u64 {
        self.total_invalidations() + self.total_misses().invalidation + self.total_updates()
    }

    /// Miss rate over all references (0–1).
    pub fn miss_rate(&self) -> f64 {
        let refs = self.total_refs();
        if refs == 0 {
            0.0
        } else {
            self.total_misses().total() as f64 / refs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_records_and_totals() {
        let mut b = MissBreakdown::default();
        b.record(MissKind::Compulsory);
        b.record(MissKind::Compulsory);
        b.record(MissKind::IntraThreadConflict);
        b.record(MissKind::InterThreadConflict);
        b.record(MissKind::Invalidation);
        assert_eq!(b.total(), 5);
        assert_eq!(b.conflicts(), 2);
        assert_eq!(b.compulsory_plus_invalidation(), 3);
        assert_eq!(b.get(MissKind::Compulsory), 2);
        let counts: Vec<u64> = b.iter().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![2, 1, 1, 1]);
    }

    #[test]
    fn breakdown_add_assign() {
        let mut a = MissBreakdown {
            compulsory: 1,
            intra_thread_conflict: 2,
            inter_thread_conflict: 3,
            invalidation: 4,
        };
        a += a;
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn sim_stats_aggregates() {
        let p0 = ProcStats {
            busy: 10,
            switching: 6,
            idle: 4,
            finish_time: 20,
            hits: 8,
            misses: MissBreakdown {
                compulsory: 2,
                ..Default::default()
            },
            invalidations_sent: 1,
            invalidations_received: 0,
            upgrades: 1,
            updates_sent: 0,
            updates_received: 0,
            barrier_ops: 0,
        };
        let p1 = ProcStats {
            finish_time: 30,
            hits: 5,
            misses: MissBreakdown {
                invalidation: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let s = SimStats::new(vec![p0, p1]);
        assert_eq!(s.execution_time(), 30);
        assert_eq!(s.total_hits(), 13);
        assert_eq!(s.total_refs(), 16);
        assert_eq!(s.total_misses().total(), 3);
        assert_eq!(s.total_invalidations(), 1);
        assert_eq!(s.coherence_traffic(), 2);
        assert!((s.miss_rate() - 3.0 / 16.0).abs() < 1e-12);
        assert_eq!(p0.refs(), 10);
        assert_eq!(p0.accounted_cycles(), 20);
    }

    #[test]
    fn empty_stats() {
        let s = SimStats::new(vec![]);
        assert_eq!(s.execution_time(), 0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.total_updates(), 0);
    }

    /// Updates are their own coherence-traffic bucket: they add to
    /// `coherence_traffic` without inflating the invalidation counters
    /// or the miss taxonomy (the satellite no-double-counting law).
    #[test]
    fn updates_count_once_in_coherence_traffic() {
        let writer = ProcStats {
            hits: 4,
            updates_sent: 3,
            ..Default::default()
        };
        let sharer = ProcStats {
            hits: 2,
            updates_received: 3,
            ..Default::default()
        };
        let s = SimStats::new(vec![writer, sharer]);
        assert_eq!(s.total_updates(), 3);
        assert_eq!(s.total_invalidations(), 0);
        assert_eq!(s.total_misses().invalidation, 0);
        assert_eq!(s.coherence_traffic(), 3);
    }

    #[test]
    fn kind_labels() {
        for k in MissKind::ALL {
            assert!(!k.label().is_empty());
            assert_eq!(k.to_string(), k.label());
        }
    }
}
