//! Small parallel-map helpers shared by trace analysis and experiment
//! sweeps.
//!
//! This module lives in the trace crate (the bottom of the dependency
//! stack) so both the analysis passes and the high-level sweep runner
//! can fan work out over the same pool discipline; `placesim`
//! re-exports it unchanged.

use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A cooperative cancellation flag shared between a job pool and its
/// supervisor. Cloning is cheap (the flag is reference-counted); once
/// [`CancelToken::cancel`] is called, workers stop claiming new items
/// but finish the item they are on — cancellation is cooperative, never
/// preemptive.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A worker panic captured with the index of the item whose closure
/// panicked. [`parallel_map`] re-raises non-string payloads wrapped in
/// this struct so supervising callers can still classify the original
/// payload (a bare `resume_unwind` would lose the index; stringifying
/// would lose the payload type).
#[derive(Debug)]
pub struct IndexedPanic {
    /// Index of the input item whose closure panicked.
    pub index: usize,
    /// The original panic payload, untouched.
    pub payload: Box<dyn std::any::Any + Send>,
}

impl IndexedPanic {
    /// Human-readable description of the payload: the string itself for
    /// `&str`/`String` payloads, a placeholder otherwise.
    pub fn summary(&self) -> String {
        panic_payload_summary(self.payload.as_ref())
    }
}

/// Describes a panic payload: string payloads verbatim, anything else
/// as an opaque marker (the type cannot be named through `dyn Any`).
pub fn panic_payload_summary(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Maximum worker threads a [`parallel_map`] call may use.
///
/// Defaults to `std::thread::available_parallelism()`; the
/// `PLACESIM_THREADS` environment variable overrides it (values < 1 or
/// unparsable are ignored), so benchmark and CI runs can pin the worker
/// count — `PLACESIM_THREADS=1` forces fully serial execution without
/// code edits.
pub fn max_workers() -> usize {
    std::env::var("PLACESIM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Worker threads each *simulation* may use internally (the intra-sim
/// parallel engine in the machine crate).
///
/// Defaults to 1 (serial engine, bit-identical behavior); the
/// `PLACESIM_SIM_THREADS` environment variable raises it. Values < 1 or
/// unparsable fall back to 1 so a typo can never silently change engine
/// results — the parallel engine is differential-tested against serial,
/// but defaulting to serial keeps the blast radius of a bad setting
/// zero.
pub fn sim_workers() -> usize {
    std::env::var("PLACESIM_SIM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Splits a total thread budget between an outer job pool and the
/// per-job inner (simulation) thread count: the outer pool gets
/// `total / inner` workers, floored at one, so outer × inner never
/// exceeds the budget (except for the unavoidable minimum of one outer
/// worker). Used by the supervisor to compose cell-level and intra-sim
/// parallelism without oversubscribing `PLACESIM_THREADS`.
pub fn split_worker_budget(total: usize, inner: usize) -> usize {
    (total / inner.max(1)).max(1)
}

/// Applies `f` to every item on a pool of worker threads and returns the
/// results in input order.
///
/// The worker count is `min(items, max_workers())` (see
/// [`max_workers`] for the `PLACESIM_THREADS` override). `f` must be
/// `Sync` (it runs concurrently); results land in lock-free
/// [`OnceLock`] slots, so per-item overhead is tiny compared to a
/// simulation run. If `f` panics, the panic is re-raised on the calling
/// thread with the index of the item that caused it.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    match try_parallel_map(items, |item| Ok::<R, std::convert::Infallible>(f(item))) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// Fallible [`parallel_map`]: applies `f` to every item in parallel, but
/// the first `Err` raises a shared stop flag so workers stop claiming
/// new items, and that error is returned. When several items fail
/// concurrently, the error with the smallest item index wins, keeping
/// the result deterministic.
///
/// # Errors
///
/// Returns the lowest-indexed error produced before the sweep stopped.
pub fn try_parallel_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    // `Sync` because workers share `&Vec<OnceLock<R>>`; results are plain
    // data (stats, placements), so this costs callers nothing.
    R: Send + Sync,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = max_workers().min(n);
    if workers <= 1 {
        // Same contract as the threaded path: errors short-circuit and
        // panics carry the failing item's index.
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                catch_unwind(AssertUnwindSafe(|| f(item)))
                    .unwrap_or_else(|payload| repanic_with_index(i, payload))
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    // Failures are rare (they end the sweep), so a mutex-guarded list
    // costs nothing on the happy path where it is never touched.
    let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(Ok(r)) => {
                        let filled = slots[i].set(r).is_ok();
                        debug_assert!(filled, "item {i} claimed twice");
                    }
                    Ok(Err(e)) => {
                        stop.store(true, Ordering::Relaxed);
                        errors.lock().expect("error list poisoned").push((i, e));
                        break;
                    }
                    Err(payload) => {
                        stop.store(true, Ordering::Relaxed);
                        panics
                            .lock()
                            .expect("panic list poisoned")
                            .push((i, payload));
                        break;
                    }
                }
            });
        }
    });

    let mut panics = panics.into_inner().expect("panic list poisoned");
    if let Some(min_at) = panics
        .iter()
        .enumerate()
        .min_by_key(|(_, (i, _))| *i)
        .map(|(at, _)| at)
    {
        let (i, payload) = panics.swap_remove(min_at);
        repanic_with_index(i, payload);
    }

    let errors = errors.into_inner().expect("error list poisoned");
    if let Some((_, e)) = errors.into_iter().min_by_key(|(i, _)| *i) {
        return Err(e);
    }

    Ok(slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled"))
        .collect())
}

/// Re-raises a caught worker panic, prefixing string payloads with the
/// index of the item whose closure panicked. Non-string payloads are
/// re-raised wrapped in [`IndexedPanic`], preserving the original
/// payload alongside the index so supervising catchers can classify it
/// (the old path stringified to a bare `eprintln!`, losing both).
fn repanic_with_index(i: usize, payload: Box<dyn std::any::Any + Send>) -> ! {
    if let Some(msg) = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
    {
        panic!("parallel_map: worker panicked on item {i}: {msg}");
    }
    panic_any(IndexedPanic { index: i, payload });
}

/// Outcome of one item under [`parallel_map_isolated`].
#[derive(Debug)]
pub enum IsolatedOutcome<R> {
    /// The closure returned normally.
    Done(R),
    /// The closure panicked; the payload is preserved untouched.
    Panicked(Box<dyn std::any::Any + Send>),
    /// The item was never claimed because the [`CancelToken`] was
    /// raised first.
    Cancelled,
}

impl<R> IsolatedOutcome<R> {
    /// The result, if the closure completed.
    pub fn into_done(self) -> Option<R> {
        match self {
            IsolatedOutcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// `true` if the closure panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, IsolatedOutcome::Panicked(_))
    }
}

/// Per-item-isolated [`parallel_map`]: applies `f` to every item on the
/// worker pool, but a panicking item neither stops the sweep nor
/// poisons its neighbours — the panic is caught, its payload preserved
/// in the item's slot, and the pool moves on. This is the job-pool
/// discipline supervised sweeps are built on: one bad grid cell becomes
/// one annotated hole, not a lost grid.
///
/// An optional [`CancelToken`] adds cooperative cancellation: once
/// raised (typically by the caller reacting to a fault in another
/// item's result), workers stop claiming and unclaimed items come back
/// [`IsolatedOutcome::Cancelled`]. In-flight items always finish.
pub fn parallel_map_isolated<T, R, F>(
    items: &[T],
    cancel: Option<&CancelToken>,
    f: F,
) -> Vec<IsolatedOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_isolated_bounded(items, cancel, max_workers(), f)
}

/// [`parallel_map_isolated`] with an explicit worker-count cap instead
/// of the ambient [`max_workers`] default. Callers whose items spawn
/// their own inner threads (e.g. simulation cells running the parallel
/// engine) pass a pre-divided budget here — see [`split_worker_budget`]
/// — so the product of outer and inner workers respects
/// `PLACESIM_THREADS`.
pub fn parallel_map_isolated_bounded<T, R, F>(
    items: &[T],
    cancel: Option<&CancelToken>,
    max_pool: usize,
    f: F,
) -> Vec<IsolatedOutcome<R>>
where
    T: Sync,
    // Only `Send`, not `Sync`: outcomes (which may hold non-`Sync`
    // panic payloads) live behind a mutex, never shared by reference.
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let workers = max_pool.max(1).min(n);
    if workers <= 1 {
        return items
            .iter()
            .map(|item| {
                if cancelled() {
                    return IsolatedOutcome::Cancelled;
                }
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => IsolatedOutcome::Done(r),
                    Err(payload) => IsolatedOutcome::Panicked(payload),
                }
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    // Unlike `try_parallel_map`'s lock-free `OnceLock` slots, outcomes
    // here can hold panic payloads (`Box<dyn Any + Send>`, not `Sync`),
    // so the slot vector must live behind a mutex. The lock is taken
    // once per completed item — noise next to a simulation run.
    let slots: Mutex<Vec<Option<IsolatedOutcome<R>>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if cancelled() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let outcome = match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => IsolatedOutcome::Done(r),
                    Err(payload) => IsolatedOutcome::Panicked(payload),
                };
                let mut slots = slots.lock().unwrap_or_else(|p| p.into_inner());
                debug_assert!(slots[i].is_none(), "item {i} claimed twice");
                slots[i] = Some(outcome);
            });
        }
    });

    slots
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .map(|s| s.unwrap_or(IsolatedOutcome::Cancelled))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_positive() {
        // Whatever PLACESIM_THREADS or the host says, the pool is usable.
        assert!(max_workers() >= 1);
    }

    #[test]
    fn sim_worker_count_is_positive() {
        // Unset or garbage PLACESIM_SIM_THREADS must never zero the pool.
        assert!(sim_workers() >= 1);
    }

    #[test]
    fn budget_split_never_oversubscribes() {
        assert_eq!(split_worker_budget(8, 1), 8);
        assert_eq!(split_worker_budget(8, 2), 4);
        assert_eq!(split_worker_budget(8, 3), 2);
        assert_eq!(split_worker_budget(8, 16), 1); // floor at one outer worker
        assert_eq!(split_worker_budget(1, 0), 1); // inner=0 treated as serial
        for total in 1..=16usize {
            for inner in 1..=16usize {
                let outer = split_worker_budget(total, inner);
                assert!(outer >= 1);
                // Only the mandatory single outer worker may exceed budget.
                assert!(outer == 1 || outer * inner <= total);
            }
        }
    }

    #[test]
    fn bounded_isolated_map_respects_cap_and_order() {
        let items: Vec<usize> = (0..32).collect();
        for cap in [0, 1, 3, 64] {
            let out = parallel_map_isolated_bounded(&items, None, cap, |&i| i * 2);
            let got: Vec<usize> = out.into_iter().map(|o| o.into_done().unwrap()).collect();
            assert_eq!(got, (0..32).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_state_is_shared_immutably() {
        let table: Vec<u64> = (0..1000).collect();
        let items: Vec<usize> = (0..50).collect();
        let out = parallel_map(&items, |&i| table[i * 2]);
        assert_eq!(out[10], 20);
    }

    #[test]
    fn try_map_happy_path() {
        let items: Vec<u64> = (0..40).collect();
        let out: Result<Vec<u64>, ()> = try_parallel_map(&items, |&x| Ok(x + 1));
        assert_eq!(out.unwrap()[39], 40);
    }

    #[test]
    fn first_error_wins_deterministically() {
        // Every item fails; the error carried back must be item 0's,
        // regardless of which worker finished (or stopped) first.
        let items: Vec<usize> = (0..64).collect();
        let out: Result<Vec<()>, usize> = try_parallel_map(&items, |&i| Err(i));
        assert_eq!(out.unwrap_err(), 0);
    }

    #[test]
    fn error_raises_stop_flag() {
        let executed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..10_000).collect();
        let out: Result<Vec<()>, &'static str> = try_parallel_map(&items, |&i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err("boom")
            } else {
                Ok(())
            }
        });
        assert_eq!(out.unwrap_err(), "boom");
        // Workers stop claiming once the flag is up; with 10k items and
        // item 0 failing on a worker's first claim, a full sweep means
        // cancellation never happened.
        assert!(
            executed.load(Ordering::Relaxed) < items.len(),
            "stop flag did not short-circuit the sweep"
        );
    }

    #[test]
    fn non_string_panic_payload_is_preserved() {
        // Panic with a typed (non-string) payload: the re-raised panic
        // must carry an IndexedPanic holding the original payload, so
        // retry accounting can still classify it.
        let items: Vec<usize> = (0..4).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, |&i| {
                if i == 2 {
                    panic_any(i as u64);
                }
                i
            })
        }))
        .expect_err("worker panic must propagate");
        let indexed = caught
            .downcast::<IndexedPanic>()
            .expect("payload is IndexedPanic");
        assert_eq!(indexed.index, 2);
        assert_eq!(indexed.summary(), "<non-string panic payload>");
        assert_eq!(indexed.payload.downcast_ref::<u64>(), Some(&2));
    }

    #[test]
    fn isolated_map_survives_panicking_items() {
        let items: Vec<usize> = (0..20).collect();
        let out = parallel_map_isolated(&items, None, |&i| {
            if i % 5 == 0 {
                panic!("boom {i}");
            }
            i * 2
        });
        assert_eq!(out.len(), 20);
        for (i, o) in out.iter().enumerate() {
            if i % 5 == 0 {
                assert!(o.is_panicked(), "item {i} should have panicked");
                let IsolatedOutcome::Panicked(p) = o else {
                    unreachable!()
                };
                assert_eq!(panic_payload_summary(p.as_ref()), format!("boom {i}"));
            } else {
                match o {
                    IsolatedOutcome::Done(v) => assert_eq!(*v, i * 2),
                    other => panic!("item {i}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn isolated_map_empty_input() {
        let out: Vec<IsolatedOutcome<u64>> = parallel_map_isolated(&[] as &[u64], None, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn cancel_token_stops_claiming() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let items: Vec<usize> = (0..10_000).collect();
        let executed = AtomicUsize::new(0);
        let out = parallel_map_isolated(&items, Some(&token), |&i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                token.cancel();
            }
            i
        });
        assert!(token.is_cancelled());
        // Item 0 always runs; with 10k items, cancellation must leave
        // some unclaimed.
        let done = out
            .iter()
            .filter(|o| matches!(o, IsolatedOutcome::Done(_)))
            .count();
        let cancelled = out
            .iter()
            .filter(|o| matches!(o, IsolatedOutcome::Cancelled))
            .count();
        assert_eq!(done + cancelled, items.len());
        assert!(done >= 1);
        assert!(cancelled > 0, "cancellation did not stop the sweep");
    }

    #[test]
    fn pre_cancelled_token_skips_everything_serially() {
        // PLACESIM_THREADS is not forced here; with a pre-raised token
        // both the serial and pooled paths must claim nothing.
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<usize> = (0..8).collect();
        let out = parallel_map_isolated(&items, Some(&token), |&i| i);
        assert!(out.iter().all(|o| matches!(o, IsolatedOutcome::Cancelled)));
    }

    #[test]
    fn panic_carries_item_index() {
        let items: Vec<usize> = (0..4).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, |&i| {
                if i == 3 {
                    panic!("exploded");
                }
                i
            })
        }))
        .expect_err("worker panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic message is a String");
        assert!(msg.contains("item 3"), "message was: {msg}");
        assert!(msg.contains("exploded"), "message was: {msg}");
    }
}
