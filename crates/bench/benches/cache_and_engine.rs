//! Criterion benchmarks: simulator throughput (references per second)
//! across cache configurations and processor counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use placesim::PreparedApp;
use placesim_machine::{simulate, ArchConfig};
use placesim_placement::PlacementAlgorithm;
use placesim_workloads::{spec, GenOptions};

fn bench_engine(c: &mut Criterion) {
    let opts = GenOptions {
        scale: 0.02,
        seed: 3,
    };
    let app = PreparedApp::prepare(&spec("water").unwrap(), &opts);
    let map = PlacementAlgorithm::LoadBal
        .place(&app.placement_inputs(), 4)
        .expect("placement");
    let refs = app.prog.total_refs();

    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(refs));
    group.bench_function("water-p4-64k", |b| {
        b.iter(|| simulate(&app.prog, &map, &app.config).expect("simulate"));
    });
    group.bench_function("water-p4-infinite", |b| {
        let infinite = ArchConfig::infinite_cache();
        b.iter(|| simulate(&app.prog, &map, &infinite).expect("simulate"));
    });
    group.finish();

    // Scaling with processor count (same total work, more caches).
    let mut group = c.benchmark_group("engine-procs");
    group.throughput(Throughput::Elements(refs));
    for p in [2usize, 8, 16] {
        let map = PlacementAlgorithm::LoadBal
            .place(&app.placement_inputs(), p)
            .expect("placement");
        group.bench_with_input(BenchmarkId::from_parameter(p), &map, |b, map| {
            b.iter(|| simulate(&app.prog, map, &app.config).expect("simulate"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine
}
criterion_main!(benches);
