//! Criterion benchmarks: cost of each placement algorithm's clustering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use placesim::PreparedApp;
use placesim_placement::PlacementAlgorithm;
use placesim_workloads::{spec, GenOptions};

fn bench_placement(c: &mut Criterion) {
    let opts = GenOptions {
        scale: 0.01,
        seed: 7,
    };
    // 32 threads with skewed sharing: a representative clustering load.
    let mut app = PreparedApp::prepare(&spec("grav").unwrap(), &opts);
    app.run_probe().expect("probe");

    let mut group = c.benchmark_group("placement");
    for algo in PlacementAlgorithm::ALL {
        group.bench_with_input(
            BenchmarkId::new("grav32-p4", algo.paper_name()),
            &algo,
            |b, &algo| {
                let inputs = app.placement_inputs();
                b.iter(|| algo.place(&inputs, 4).expect("placement"));
            },
        );
    }
    group.finish();

    // The paper's largest clustering problem: Gauss, 127 threads.
    let gauss = PreparedApp::prepare(
        &spec("gauss").unwrap(),
        &GenOptions {
            scale: 0.002,
            seed: 7,
        },
    );
    let mut group = c.benchmark_group("placement-127");
    for algo in [
        PlacementAlgorithm::ShareRefs,
        PlacementAlgorithm::MinShare,
        PlacementAlgorithm::LoadBal,
        PlacementAlgorithm::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::new("gauss127-p16", algo.paper_name()),
            &algo,
            |b, &algo| {
                let inputs = gauss.placement_inputs();
                b.iter(|| algo.place(&inputs, 16).expect("placement"));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_placement
}
criterion_main!(benches);
