//! Hostile-input suite for the `placesim-journal-v1` parser: recovery
//! must keep the longest valid prefix and report exactly what was
//! dropped — truncated final lines, interleaved garbage, duplicate
//! cells, bad checksums, invalid UTF-8, CRLF endings.

use placesim::journal::{recover, JournalCell, JournalError, JournalHeader};
use placesim::manifest::ManifestEntry;
use placesim_machine::{ArchConfig, MissBreakdown};

fn header() -> JournalHeader {
    JournalHeader {
        app: "water".into(),
        scale: 0.002,
        seed: 3,
        config: ArchConfig::paper_default(),
        algorithms: vec!["RANDOM".into(), "LOAD-BAL".into()],
        processors: vec![2, 4],
    }
}

fn cell(index: usize) -> JournalCell {
    let h = header();
    let (algo, procs) = h.cell(index).expect("index in grid");
    JournalCell {
        index,
        attempts: 1,
        entry: ManifestEntry {
            algorithm: algo.to_owned(),
            processors: procs,
            execution_time: 10_000 + index as u64,
            total_refs: 5_000,
            total_misses: 500,
            miss_rate: 0.1,
            coherence_traffic: 42,
            update_traffic: 0,
            misses: MissBreakdown {
                compulsory: 200,
                intra_thread_conflict: 100,
                inter_thread_conflict: 100,
                invalidation: 100,
            },
        },
    }
}

/// A journal holding the header plus the given cells, as bytes.
fn journal(cells: &[usize]) -> Vec<u8> {
    let mut text = header().to_line();
    for &i in cells {
        text.push_str(&cell(i).to_line());
    }
    text.into_bytes()
}

#[test]
fn truncated_final_line_is_dropped_and_prefix_kept() {
    let mut data = journal(&[0, 1]);
    let good_len = data.len() as u64;
    let torn = cell(2).to_line();
    data.extend_from_slice(&torn.as_bytes()[..torn.len() - 7]); // no '\n'
    let rec = recover(&data).unwrap();
    assert_eq!(rec.cells.len(), 2);
    assert_eq!(rec.valid_bytes, good_len);
    assert_eq!(rec.dropped.len(), 1);
    assert_eq!(rec.dropped[0].line, 4);
    assert!(rec.dropped[0].reason.contains("torn"), "{:?}", rec.dropped);
}

#[test]
fn interleaved_garbage_ends_the_prefix_and_survivors_are_reported() {
    let mut data = journal(&[0]);
    let good_len = data.len() as u64;
    data.extend_from_slice(b"!!! interleaved garbage !!!\n");
    data.extend_from_slice(cell(1).to_line().as_bytes()); // valid, but after garbage
    data.extend_from_slice(cell(2).to_line().as_bytes());
    let rec = recover(&data).unwrap();
    // Longest valid prefix: only cell 0. The two structurally valid
    // lines after the garbage are NOT resurrected — out-of-prefix data
    // cannot be trusted to be a crash artifact boundary.
    assert_eq!(rec.cells.len(), 1);
    assert_eq!(rec.valid_bytes, good_len);
    assert_eq!(rec.dropped.len(), 3);
    assert!(
        rec.dropped[0].reason.contains("checksum"),
        "{:?}",
        rec.dropped[0]
    );
    for d in &rec.dropped[1..] {
        assert!(
            d.reason.contains("follows invalid line 3"),
            "dropped line {} reason {:?}",
            d.line,
            d.reason
        );
    }
}

#[test]
fn duplicate_cell_entries_end_the_prefix() {
    let mut data = journal(&[0, 1]);
    let good_len = data.len() as u64;
    data.extend_from_slice(cell(1).to_line().as_bytes()); // duplicate of index 1
    data.extend_from_slice(cell(2).to_line().as_bytes());
    let rec = recover(&data).unwrap();
    assert_eq!(rec.cells.len(), 2);
    assert_eq!(rec.valid_bytes, good_len);
    assert_eq!(rec.dropped.len(), 2);
    assert!(
        rec.dropped[0].reason.contains("duplicate entry for cell 1"),
        "{:?}",
        rec.dropped[0]
    );
}

#[test]
fn crlf_line_endings_are_tolerated() {
    let text: String = String::from_utf8(journal(&[0, 1, 2, 3])).unwrap();
    let crlf = text.replace('\n', "\r\n");
    let rec = recover(crlf.as_bytes()).unwrap();
    assert_eq!(rec.cells.len(), 4);
    assert!(rec.dropped.is_empty());
    assert_eq!(rec.valid_bytes, crlf.len() as u64);
}

#[test]
fn corrupted_checksum_ends_the_prefix() {
    let mut data = journal(&[0]);
    let good_len = data.len() as u64;
    let mut bad = cell(1).to_line().into_bytes();
    // Flip one payload byte; the CRC no longer matches.
    let mid = bad.len() / 2;
    bad[mid] = bad[mid].wrapping_add(1);
    data.extend_from_slice(&bad);
    let rec = recover(&data).unwrap();
    assert_eq!(rec.cells.len(), 1);
    assert_eq!(rec.valid_bytes, good_len);
    assert_eq!(rec.dropped.len(), 1);
}

#[test]
fn invalid_utf8_ends_the_prefix() {
    let mut data = journal(&[0]);
    let good_len = data.len() as u64;
    data.extend_from_slice(b"\xff\xfe broken bytes \xff\n");
    data.extend_from_slice(cell(1).to_line().as_bytes());
    let rec = recover(&data).unwrap();
    assert_eq!(rec.cells.len(), 1);
    assert_eq!(rec.valid_bytes, good_len);
    assert_eq!(rec.dropped.len(), 2);
    assert!(
        rec.dropped[0].reason.contains("UTF-8"),
        "{:?}",
        rec.dropped[0]
    );
}

#[test]
fn empty_line_ends_the_prefix() {
    let mut data = journal(&[0]);
    data.extend_from_slice(b"\n");
    data.extend_from_slice(cell(1).to_line().as_bytes());
    let rec = recover(&data).unwrap();
    assert_eq!(rec.cells.len(), 1);
    assert!(
        rec.dropped[0].reason.contains("empty"),
        "{:?}",
        rec.dropped[0]
    );
}

#[test]
fn out_of_grid_and_mismatched_cells_end_the_prefix() {
    // Cell index past the 2x2 grid.
    let mut rogue = cell(0);
    rogue.index = 99;
    let mut data = journal(&[0]);
    data.extend_from_slice(rogue.to_line().as_bytes());
    let rec = recover(&data).unwrap();
    assert_eq!(rec.cells.len(), 1);
    assert!(
        rec.dropped[0].reason.contains("outside the grid"),
        "{:?}",
        rec.dropped[0]
    );

    // Cell whose labels disagree with its index's grid slot.
    let mut liar = cell(2);
    liar.entry.algorithm = "RANDOM".into(); // grid says LOAD-BAL at 2
    let mut data = journal(&[0]);
    data.extend_from_slice(liar.to_line().as_bytes());
    let rec = recover(&data).unwrap();
    assert_eq!(rec.cells.len(), 1);
    assert!(
        rec.dropped[0].reason.contains("grid says"),
        "{:?}",
        rec.dropped[0]
    );
}

#[test]
fn wrong_record_kind_in_cell_position_ends_the_prefix() {
    // A second header line where a cell should be.
    let mut data = journal(&[0]);
    data.extend_from_slice(header().to_line().as_bytes());
    let rec = recover(&data).unwrap();
    assert_eq!(rec.cells.len(), 1);
    assert!(
        rec.dropped[0].reason.contains("unexpected record kind"),
        "{:?}",
        rec.dropped[0]
    );
}

#[test]
fn unreadable_header_is_corrupt_not_recoverable() {
    // Empty file, plain garbage, torn header, cell-first: all Corrupt.
    for data in [
        Vec::new(),
        b"garbage\n".to_vec(),
        header().to_line().as_bytes()[..20].to_vec(),
        cell(0).to_line().into_bytes(),
    ] {
        assert!(
            matches!(recover(&data), Err(JournalError::Corrupt(_))),
            "{:?} should be corrupt",
            String::from_utf8_lossy(&data)
        );
    }
}

#[test]
fn pristine_journal_recovers_fully_with_exact_byte_count() {
    let data = journal(&[0, 1, 2, 3]);
    let rec = recover(&data).unwrap();
    assert_eq!(rec.header, header());
    assert_eq!(rec.cells.len(), 4);
    assert!(rec.dropped.is_empty());
    assert_eq!(rec.valid_bytes, data.len() as u64);
    for (i, c) in rec.cells.iter().enumerate() {
        assert_eq!(*c, cell(i));
    }
}

#[test]
fn out_of_order_commits_are_valid() {
    // Parallel sweeps commit cells in completion order, not grid order.
    let data = journal(&[3, 0, 2, 1]);
    let rec = recover(&data).unwrap();
    assert_eq!(rec.cells.len(), 4);
    assert!(rec.dropped.is_empty());
    assert_eq!(rec.cell(2), Some(&cell(2)));
}
