//! The coherence-traffic probe (paper §4.2).
//!
//! To measure the *actual* sharing traffic between threads — as opposed
//! to the statically counted shared references — the paper simulates
//! "a system with one thread per processor and as many processors as the
//! number of threads in the application" and collects the coherence
//! traffic (invalidations plus invalidation misses) between processor
//! pairs, which with this placement is exactly the traffic between
//! *thread* pairs. The resulting matrix both quantifies how little of
//! the static sharing turns into interconnect operations (Table 4) and
//! feeds the best-possible [`CoherenceTraffic`] placement.
//!
//! [`CoherenceTraffic`]: placesim_placement::PlacementAlgorithm::CoherenceTraffic

use crate::config::ArchConfig;
use crate::engine::{simulate_with_traffic, SimError};
use crate::stats::SimStats;
use placesim_analysis::SymMatrix;
use placesim_placement::PlacementMap;
use placesim_trace::ProgramTrace;

/// Result of a one-thread-per-processor coherence probe.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Pairwise thread-to-thread coherence traffic (invalidations +
    /// invalidation misses).
    pub traffic: SymMatrix<u64>,
    /// Full statistics of the probe run.
    pub stats: SimStats,
}

impl ProbeResult {
    /// Total measured coherence traffic (sum over all thread pairs of the
    /// matrix, which equals invalidations + invalidation misses).
    pub fn total_traffic(&self) -> u64 {
        self.traffic.iter_pairs().map(|(_, _, v)| v).sum()
    }

    /// Total compulsory misses of the probe run.
    pub fn compulsory_misses(&self) -> u64 {
        self.stats.total_misses().compulsory
    }

    /// Compulsory misses plus coherence traffic, as a fraction of total
    /// references — the paper's "extremely low, 0.01% to 3.3%" figure.
    pub fn traffic_fraction(&self) -> f64 {
        let refs = self.stats.total_refs();
        if refs == 0 {
            0.0
        } else {
            (self.compulsory_misses() + self.total_traffic()) as f64 / refs as f64
        }
    }
}

/// Runs the probe: `prog` with one thread per processor.
///
/// # Errors
///
/// Returns [`SimError::TooManyProcessors`] if the program has more
/// threads than the directory supports (128).
pub fn probe_coherence(prog: &ProgramTrace, config: &ArchConfig) -> Result<ProbeResult, SimError> {
    let t = prog.thread_count();
    let clusters: Vec<Vec<usize>> = (0..t).map(|i| vec![i]).collect();
    let map = PlacementMap::from_clusters(clusters)
        .expect("singleton clusters are always a valid placement");
    let (stats, traffic) = simulate_with_traffic(prog, &map, config)?;
    Ok(ProbeResult { traffic, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef, ThreadTrace};

    #[test]
    fn probe_attributes_traffic_to_thread_pairs() {
        // T0 and T2 ping-pong a line; T1 is a bystander.
        let mut t0 = ThreadTrace::new();
        for i in 0..4 {
            t0.push(MemRef::write(Address::new(0x1000)));
            for k in 0..60 {
                t0.push(MemRef::instr(Address::new(4 * (i * 60 + k))));
            }
        }
        let t1: ThreadTrace = (0..50)
            .map(|i| MemRef::read(Address::new(0x9000 + 32 * i)))
            .collect();
        let mut t2 = ThreadTrace::new();
        for i in 0..4 {
            t2.push(MemRef::write(Address::new(0x1000)));
            for k in 0..60 {
                t2.push(MemRef::instr(Address::new(0x4000 + 4 * (i * 60 + k))));
            }
        }
        let prog = ProgramTrace::new("pingpong", vec![t0, t1, t2]);
        let res = probe_coherence(&prog, &ArchConfig::paper_default()).unwrap();
        assert!(res.traffic.get(0, 2) > 0, "traffic {:?}", res.traffic);
        assert_eq!(res.traffic.get(0, 1), 0);
        assert_eq!(res.traffic.get(1, 2), 0);
        assert_eq!(res.total_traffic(), res.stats.coherence_traffic());
        assert!(res.traffic_fraction() > 0.0 && res.traffic_fraction() < 1.0);
        assert!(res.compulsory_misses() > 0);
    }

    #[test]
    fn sequential_sharing_produces_little_traffic() {
        // Both threads touch the same region, but each references it many
        // times in a row (sequential sharing): traffic per shared address
        // is bounded by the few ownership transfers, not the reference
        // count — the paper's central observation.
        let burst = |base: u64, prologue: usize| -> ThreadTrace {
            let mut t = ThreadTrace::new();
            // A prologue staggers the threads in time so each works
            // through the shared region in its own phase.
            for k in 0..prologue {
                t.push(MemRef::instr(Address::new(base + 4 * k as u64)));
            }
            for a in 0..8u64 {
                for _ in 0..100 {
                    t.push(MemRef::write(Address::new(0x1000 + 32 * a)));
                }
            }
            t
        };
        let prog = ProgramTrace::new("seq", vec![burst(0, 10), burst(0x10_0000, 4000)]);
        let res = probe_coherence(&prog, &ArchConfig::paper_default()).unwrap();
        let static_refs = 2 * 8 * 100u64; // every data ref hits a shared address
        assert!(
            res.total_traffic() * 10 < static_refs,
            "traffic {} should be well under static shared refs {}",
            res.total_traffic(),
            static_refs
        );
    }
}
