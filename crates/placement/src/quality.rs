//! Placement quality metrics: how much sharing a placement co-locates
//! and how balanced it is.
//!
//! These are diagnostics, not inputs to any algorithm — the paper's
//! result is precisely that the sharing-capture metric does not predict
//! execution time while the balance metric does.

use crate::map::PlacementMap;
use placesim_analysis::SharingAnalysis;
use serde::Serialize;

/// Quality summary of one placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PlacementQuality {
    /// Fraction (0–1) of all pairwise shared references whose thread
    /// pair is co-located.
    pub sharing_captured: f64,
    /// Fraction (0–1) of write-shared pairwise references co-located
    /// (the invalidation-relevant subset).
    pub write_sharing_captured: f64,
    /// Max processor load over ideal load (≥ 1.0; 1.0 is perfect).
    pub load_imbalance: f64,
    /// Largest cluster size (hardware contexts needed).
    pub max_contexts: usize,
}

impl PlacementQuality {
    /// Measures `map` against the program's sharing analysis and thread
    /// lengths.
    ///
    /// # Panics
    ///
    /// Panics if the map, analysis and lengths disagree on thread count.
    pub fn measure(map: &PlacementMap, sharing: &SharingAnalysis, lengths: &[u64]) -> Self {
        assert_eq!(map.thread_count(), sharing.thread_count());
        assert_eq!(map.thread_count(), lengths.len());

        let total: u64 = sharing.total_pairwise_shared_refs();
        let total_writes: u64 = sharing
            .pair_write_refs_matrix()
            .iter_pairs()
            .map(|(_, _, v)| v)
            .sum();

        let mut captured = 0u64;
        let mut captured_writes = 0u64;
        for (_, cluster) in map.iter() {
            for (k, &a) in cluster.iter().enumerate() {
                for &b in &cluster[k + 1..] {
                    captured += sharing.pair_shared_refs(a, b);
                    captured_writes += sharing.pair_write_shared_refs(a, b);
                }
            }
        }

        PlacementQuality {
            sharing_captured: ratio(captured, total),
            write_sharing_captured: ratio(captured_writes, total_writes),
            load_imbalance: map.load_imbalance(lengths),
            max_contexts: map.max_cluster_size(),
        }
    }
}

fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{thread_lengths, PlacementAlgorithm, PlacementInputs};
    use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};

    /// 0↔1 and 2↔3 share; lengths uniform.
    fn fixture() -> (ProgramTrace, SharingAnalysis, Vec<u64>) {
        let mk = |addr: u64| -> ThreadTrace {
            let mut t = ThreadTrace::new();
            t.push(MemRef::instr(Address::new(0)));
            for _ in 0..10 {
                t.push(MemRef::read(Address::new(addr)));
                t.push(MemRef::write(Address::new(addr)));
            }
            t
        };
        let prog = ProgramTrace::new("q", vec![mk(0x10), mk(0x10), mk(0x20), mk(0x20)]);
        let sharing = SharingAnalysis::measure(&prog);
        let lengths = thread_lengths(&prog);
        (prog, sharing, lengths)
    }

    #[test]
    fn share_refs_captures_everything() {
        let (_, sharing, lengths) = fixture();
        let inputs = PlacementInputs::new(&sharing, &lengths);
        let map = PlacementAlgorithm::ShareRefs.place(&inputs, 2).unwrap();
        let q = PlacementQuality::measure(&map, &sharing, &lengths);
        assert!((q.sharing_captured - 1.0).abs() < 1e-12);
        assert!((q.write_sharing_captured - 1.0).abs() < 1e-12);
        assert!((q.load_imbalance - 1.0).abs() < 1e-12);
        assert_eq!(q.max_contexts, 2);
    }

    #[test]
    fn min_share_captures_nothing() {
        let (_, sharing, lengths) = fixture();
        let inputs = PlacementInputs::new(&sharing, &lengths);
        let map = PlacementAlgorithm::MinShare.place(&inputs, 2).unwrap();
        let q = PlacementQuality::measure(&map, &sharing, &lengths);
        assert_eq!(q.sharing_captured, 0.0);
    }

    #[test]
    fn no_sharing_is_zero_not_nan() {
        let mk =
            |addr: u64| -> ThreadTrace { [MemRef::read(Address::new(addr))].into_iter().collect() };
        let prog = ProgramTrace::new("p", vec![mk(1), mk(2)]);
        let sharing = SharingAnalysis::measure(&prog);
        let lengths = thread_lengths(&prog);
        let map = crate::map::PlacementMap::from_clusters(vec![vec![0, 1]]).unwrap();
        let q = PlacementQuality::measure(&map, &sharing, &lengths);
        assert_eq!(q.sharing_captured, 0.0);
        assert_eq!(q.write_sharing_captured, 0.0);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn dimension_mismatch_panics() {
        let (_, sharing, _) = fixture();
        let map = crate::map::PlacementMap::from_clusters(vec![vec![0]]).unwrap();
        let _ = PlacementQuality::measure(&map, &sharing, &[1]);
    }
}
