//! Custom workload: build a program trace by hand — a producer/consumer
//! pipeline with deliberately extreme, *non-sequential* sharing — and
//! watch sharing-based placement finally earn its keep.
//!
//! The paper's negative result hinges on real programs sharing data
//! sequentially and uniformly. This example constructs the opposite: a
//! pathological workload where pairs of threads ping-pong cache lines at
//! high frequency. Here SHARE-REFS genuinely beats RANDOM — which shows
//! the simulator can detect a sharing effect when one exists, and that
//! its absence on the realistic suite is a property of the workloads,
//! not a blind spot of the pipeline.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use placesim::PreparedApp;
use placesim_repro::prelude::*;
use placesim_workloads::{AppSpec, Granularity, SharingPattern, TargetStat};

/// Threads `2k` and `2k+1` ping-pong a dedicated block of lines.
fn pingpong_pair(pair: usize, role: usize, rounds: usize) -> ThreadTrace {
    let base = 0x1_0000 + (pair as u64) * 0x1000;
    let mut t = ThreadTrace::new();
    for round in 0..rounds {
        // A little private compute between exchanges.
        for i in 0..8u64 {
            t.push(MemRef::instr(Address::new(4 * i)));
        }
        // Alternate writes to the pair's mailbox lines.
        for line in 0..4u64 {
            let addr = Address::new(base + 32 * line);
            if (round + role).is_multiple_of(2) {
                t.push(MemRef::write(addr));
            } else {
                t.push(MemRef::read(addr));
            }
        }
    }
    t
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pairs = 8;
    let rounds = 2_000;
    let threads: Vec<ThreadTrace> = (0..pairs * 2)
        .map(|tid| pingpong_pair(tid / 2, tid % 2, rounds))
        .collect();
    let prog = ProgramTrace::new("pingpong", threads);

    // Describe the workload so PreparedApp can pick a cache size.
    let spec = AppSpec {
        name: "pingpong",
        granularity: Granularity::Medium,
        threads: pairs * 2,
        thread_length: TargetStat::new((rounds * 8) as f64, 0.0),
        shared_percent: 100.0,
        refs_per_shared_addr: 4.0,
        data_ratio: 0.5,
        pattern: SharingPattern::UniformAllShare {
            write_fraction: 0.5,
        },
        cache_kb: 64,
        phases: 1,
    };
    let opts = GenOptions {
        scale: 1.0,
        seed: 1,
    };
    let app = PreparedApp::from_trace(&spec, prog, &opts);

    println!(
        "pathological ping-pong workload: {} thread pairs, {} rounds\n",
        pairs, rounds
    );
    let processors = 4;
    for algo in [
        PlacementAlgorithm::Random,
        PlacementAlgorithm::LoadBal,
        PlacementAlgorithm::ShareRefs,
    ] {
        let r = placesim::run_placement(&app, algo, processors)?;
        let m = r.stats.total_misses();
        println!(
            "{:<12} exec={:>9} invalidation misses={:>7} coherence traffic={:>7}",
            algo.paper_name(),
            r.execution_time(),
            m.invalidation,
            r.stats.coherence_traffic(),
        );
    }

    println!(
        "\nWith genuinely fine-grain sharing, SHARE-REFS co-locates each\n\
         ping-pong pair and eliminates their coherence traffic outright —\n\
         the effect the paper went looking for and real programs didn't\n\
         have. (LOAD-BAL can still win wall-clock here: a multithreaded\n\
         processor hides much of the coherence latency that co-location\n\
         avoids, which is the other half of the paper's argument.)"
    );
    Ok(())
}
