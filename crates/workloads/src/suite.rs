//! The fourteen applications of the paper's workload (Table 1 / Table 2).
//!
//! Numeric targets (thread length mean and deviation, % shared refs,
//! references per shared address) are taken directly from the paper's
//! Table 2; sharing patterns follow the per-application prose (§3.1,
//! §4.2). Thread counts are not legible in the source scan, so they are
//! chosen to match the granularity narrative — coarse programs have
//! fewer, longer threads; medium-grain more, shorter ones; Gauss has the
//! paper's stated maximum of 127 threads — and each choice is noted
//! below. Cache sizes follow §3.2: 32 KB for the coarse programs plus
//! Health and FFT, 64 KB for the other medium-grain programs.

use crate::spec::{AppSpec, Granularity, SharingPattern, TargetStat};

/// Names of the fourteen applications, coarse grain first.
pub const SUITE_NAMES: [&str; 14] = [
    "locusroute",
    "water",
    "mp3d",
    "cholesky",
    "barnes-hut",
    "pverify",
    "topopt",
    "fullconn",
    "grav",
    "health",
    "patch",
    "vandermonde",
    "fft",
    "gauss",
];

/// All fourteen application specifications, coarse grain first.
pub fn suite() -> Vec<AppSpec> {
    vec![
        locusroute(),
        water(),
        mp3d(),
        cholesky(),
        barnes_hut(),
        pverify(),
        topopt(),
        fullconn(),
        grav(),
        health(),
        patch(),
        vandermonde(),
        fft(),
        gauss(),
    ]
}

/// Looks up one application by (case-insensitive) name.
pub fn spec(name: &str) -> Option<AppSpec> {
    let lower = name.to_ascii_lowercase();
    suite().into_iter().find(|s| s.name == lower)
}

/// LocusRoute: commercial VLSI standard-cell router. Threads route wires
/// in geographic regions — neighbor overlap, moderate sharing deviation
/// (Table 2: pairwise dev 14%). 16 threads (coarse).
pub fn locusroute() -> AppSpec {
    AppSpec {
        name: "locusroute",
        granularity: Granularity::Coarse,
        threads: 16,
        thread_length: TargetStat::new(1_055_000.0, 14.6),
        shared_percent: 57.4,
        refs_per_shared_addr: 15.0,
        data_ratio: 0.30,
        pattern: SharingPattern::UniformAllShare {
            write_fraction: 0.25,
        },
        cache_kb: 32,
        phases: 1,
    }
}

/// Water: N-molecule dynamics; all threads sweep the same molecule array
/// — very uniform sharing (devs of 1.6–2.8%). 16 threads.
pub fn water() -> AppSpec {
    AppSpec {
        name: "water",
        granularity: Granularity::Coarse,
        threads: 16,
        thread_length: TargetStat::new(467_000.0, 2.4),
        shared_percent: 71.7,
        refs_per_shared_addr: 23.0,
        data_ratio: 0.30,
        pattern: SharingPattern::UniformAllShare {
            write_fraction: 0.2,
        },
        cache_kb: 32,
        phases: 4,
    }
}

/// MP3D: rarefied hypersonic flow; particles uniformly shared
/// (deviations near zero). 16 threads.
pub fn mp3d() -> AppSpec {
    AppSpec {
        name: "mp3d",
        granularity: Granularity::Coarse,
        threads: 16,
        thread_length: TargetStat::new(1_674_000.0, 0.9),
        shared_percent: 82.6,
        refs_per_shared_addr: 24.0,
        data_ratio: 0.32,
        pattern: SharingPattern::UniformAllShare {
            write_fraction: 0.35,
        },
        cache_kb: 32,
        phases: 4,
    }
}

/// Cholesky: sparse factorization; mostly private panels with a small
/// read-shared frontier (lowest % shared refs of the suite, 17.1%).
/// 16 threads.
pub fn cholesky() -> AppSpec {
    AppSpec {
        name: "cholesky",
        granularity: Granularity::Coarse,
        threads: 16,
        thread_length: TargetStat::new(2_994_000.0, 0.0),
        shared_percent: 17.1,
        refs_per_shared_addr: 24.0,
        data_ratio: 0.33,
        pattern: SharingPattern::PartitionedReadShare {
            write_fraction: 0.15,
        },
        cache_kb: 32,
        phases: 1,
    }
}

/// Barnes-Hut: N-body with spatial partitioning; read-shares particle
/// positions during computation, writes locally at phase end (§4.2).
/// 16 threads. Single phase: the paper notes the computation phase is
/// 1.6 M instructions per thread while its traced threads are 597 k —
/// the trace never crosses a barrier.
pub fn barnes_hut() -> AppSpec {
    AppSpec {
        name: "barnes-hut",
        granularity: Granularity::Coarse,
        threads: 16,
        thread_length: TargetStat::new(597_000.0, 7.0),
        shared_percent: 58.6,
        refs_per_shared_addr: 8.0,
        data_ratio: 0.30,
        pattern: SharingPattern::PartitionedReadShare {
            write_fraction: 0.10,
        },
        cache_kb: 32,
        phases: 1,
    }
}

/// Pverify: boolean-circuit equivalence; restructured shared data with
/// high locality (98 refs per shared address) and mild skew. 16 threads.
pub fn pverify() -> AppSpec {
    AppSpec {
        name: "pverify",
        granularity: Granularity::Coarse,
        threads: 16,
        thread_length: TargetStat::new(1_095_000.0, 22.8),
        shared_percent: 91.7,
        refs_per_shared_addr: 98.0,
        data_ratio: 0.31,
        pattern: SharingPattern::UniformAllShare {
            write_fraction: 0.2,
        },
        cache_kb: 32,
        phases: 1,
    }
}

/// Topopt: simulated-annealing topological optimization; very long
/// same-thread access runs (611 refs per shared address). 8 threads
/// (the coarsest program).
pub fn topopt() -> AppSpec {
    AppSpec {
        name: "topopt",
        granularity: Granularity::Coarse,
        threads: 8,
        thread_length: TargetStat::new(2_934_000.0, 0.0),
        shared_percent: 50.7,
        refs_per_shared_addr: 611.0,
        data_ratio: 0.31,
        pattern: SharingPattern::UniformAllShare {
            write_fraction: 0.4,
        },
        cache_kb: 32,
        phases: 1,
    }
}

/// Fullconn: fully connected processors communicating at random —
/// highly skewed pairwise sharing (dev 88.8%). 32 threads.
pub fn fullconn() -> AppSpec {
    AppSpec {
        name: "fullconn",
        granularity: Granularity::Medium,
        threads: 32,
        thread_length: TargetStat::new(974_000.0, 6.1),
        shared_percent: 95.6,
        refs_per_shared_addr: 493.0,
        data_ratio: 0.30,
        pattern: SharingPattern::RandomComm {
            write_fraction: 0.5,
            partners: 3,
            uniform_fraction: 0.20,
        },
        cache_kb: 64,
        phases: 1,
    }
}

/// Grav: Presto Barnes-Hut clustering; spatial neighbors, skewed lengths.
/// 32 threads.
pub fn grav() -> AppSpec {
    AppSpec {
        name: "grav",
        granularity: Granularity::Medium,
        threads: 32,
        thread_length: TargetStat::new(763_000.0, 38.9),
        shared_percent: 98.2,
        refs_per_shared_addr: 43.0,
        data_ratio: 0.30,
        pattern: SharingPattern::NeighborExchange {
            write_fraction: 0.15,
            reach: 2,
            uniform_fraction: 0.55,
        },
        cache_kb: 64,
        phases: 4,
    }
}

/// Health: doctors/patients/centers interacting at random — the most
/// skewed pairwise sharing (dev 133.7%) and very long runs. 64 threads
/// (a length deviation of 95% over few threads would make every
/// thread-balanced placement hopeless, contradicting the paper's Table 5
/// values for health; the doctor/patient simulation naturally has many
/// threads). 32 KB cache per §3.2.
pub fn health() -> AppSpec {
    AppSpec {
        name: "health",
        granularity: Granularity::Medium,
        threads: 64,
        thread_length: TargetStat::new(1_208_000.0, 95.2),
        shared_percent: 93.5,
        refs_per_shared_addr: 854.0,
        data_ratio: 0.30,
        pattern: SharingPattern::RandomComm {
            write_fraction: 0.4,
            partners: 2,
            uniform_fraction: 0.45,
        },
        cache_kb: 32,
        phases: 1,
    }
}

/// Patch: radiosity; patch interactions fall off with distance. 32
/// threads.
pub fn patch() -> AppSpec {
    AppSpec {
        name: "patch",
        granularity: Granularity::Medium,
        threads: 32,
        thread_length: TargetStat::new(488_000.0, 59.1),
        shared_percent: 97.4,
        refs_per_shared_addr: 73.0,
        data_ratio: 0.30,
        pattern: SharingPattern::NeighborExchange {
            write_fraction: 0.2,
            reach: 1,
            uniform_fraction: 0.92,
        },
        cache_kb: 64,
        phases: 1,
    }
}

/// Vandermonde: matrix-operation sequence; extremely skewed sharing
/// (pairwise dev 242.6%) and the longest runs of the suite. 24 threads.
pub fn vandermonde() -> AppSpec {
    AppSpec {
        name: "vandermonde",
        granularity: Granularity::Medium,
        threads: 24,
        thread_length: TargetStat::new(1_819_000.0, 80.3),
        shared_percent: 98.7,
        refs_per_shared_addr: 1647.0,
        data_ratio: 0.30,
        pattern: SharingPattern::RandomComm {
            write_fraction: 0.45,
            partners: 1,
            uniform_fraction: 0.25,
        },
        cache_kb: 64,
        phases: 1,
    }
}

/// FFT: migratory data ("73% of all shared elements are migratory") and
/// the largest thread-length deviation of any application (187.6%),
/// which makes it the paper's showcase for load balancing (Figure 3).
/// 64 threads — a deviation this large over few threads would force one
/// single dominant thread, which contradicts the paper's observed
/// LOAD-BAL wins; with 64 medium-grain threads the skew spreads over
/// several long threads. 32 KB cache per §3.2.
pub fn fft() -> AppSpec {
    AppSpec {
        name: "fft",
        granularity: Granularity::Medium,
        threads: 64,
        thread_length: TargetStat::new(191_000.0, 187.6),
        shared_percent: 72.4,
        refs_per_shared_addr: 42.0,
        data_ratio: 0.30,
        pattern: SharingPattern::Migratory {
            write_fraction: 0.7,
            uniform_fraction: 0.15,
        },
        cache_kb: 32,
        phases: 4,
    }
}

/// Gauss: gaussian elimination; every thread reads the shared pivot rows
/// (uniform all-sharing) and the paper's largest thread count, 127.
pub fn gauss() -> AppSpec {
    AppSpec {
        name: "gauss",
        granularity: Granularity::Medium,
        threads: 127,
        thread_length: TargetStat::new(210_000.0, 84.6),
        shared_percent: 95.0,
        refs_per_shared_addr: 26.0,
        data_ratio: 0.30,
        pattern: SharingPattern::UniformAllShare {
            write_fraction: 0.1,
        },
        cache_kb: 64,
        phases: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_unique_apps() {
        let s = suite();
        assert_eq!(s.len(), 14);
        let mut names: Vec<&str> = s.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
        assert_eq!(s.len(), SUITE_NAMES.len());
        for a in &s {
            assert!(SUITE_NAMES.contains(&a.name));
        }
    }

    #[test]
    fn grain_split_is_seven_seven() {
        let s = suite();
        let coarse = s
            .iter()
            .filter(|a| a.granularity == Granularity::Coarse)
            .count();
        assert_eq!(coarse, 7);
        assert_eq!(s.len() - coarse, 7);
    }

    #[test]
    fn coarse_threads_are_fewer_and_longer() {
        let s = suite();
        let avg = |g: Granularity, f: &dyn Fn(&AppSpec) -> f64| -> f64 {
            let xs: Vec<f64> = s.iter().filter(|a| a.granularity == g).map(f).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            avg(Granularity::Coarse, &|a| a.thread_length.mean)
                > avg(Granularity::Medium, &|a| a.thread_length.mean) * 0.9
        );
        assert!(
            avg(Granularity::Coarse, &|a| a.threads as f64)
                < avg(Granularity::Medium, &|a| a.threads as f64)
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(spec("FFT").unwrap().name, "fft");
        assert_eq!(spec("gauss").unwrap().threads, 127);
        assert!(spec("doom").is_none());
    }

    #[test]
    fn cache_sizes_follow_paper() {
        // Coarse + health + fft: 32 KB. Other medium: 64 KB.
        for a in suite() {
            let expect_32 =
                a.granularity == Granularity::Coarse || a.name == "health" || a.name == "fft";
            assert_eq!(a.cache_kb, if expect_32 { 32 } else { 64 }, "{}", a.name);
        }
    }

    #[test]
    fn table2_targets_spot_checks() {
        assert!((spec("locusroute").unwrap().shared_percent - 57.4).abs() < 1e-9);
        assert!((spec("fft").unwrap().thread_length.dev_percent - 187.6).abs() < 1e-9);
        assert!((spec("vandermonde").unwrap().refs_per_shared_addr - 1647.0).abs() < 1e-9);
        assert!((spec("topopt").unwrap().thread_length.mean - 2_934_000.0).abs() < 1e-9);
    }
}
