//! Property-based tests for the synthetic workload generator.

use placesim_analysis::SharingAnalysis;
use placesim_workloads::{
    gen_internals, generate, generate_with_access, reference, AppSpec, GenOptions, Granularity,
    SharingPattern, TargetStat,
};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = SharingPattern> {
    prop_oneof![
        (0.05f64..0.9).prop_map(|wf| SharingPattern::UniformAllShare { write_fraction: wf }),
        (0.05f64..0.5).prop_map(|wf| SharingPattern::PartitionedReadShare { write_fraction: wf }),
        ((0.1f64..0.9), (0.0f64..0.9)).prop_map(|(wf, uf)| SharingPattern::Migratory {
            write_fraction: wf,
            uniform_fraction: uf,
        }),
        ((0.05f64..0.5), (1usize..3), (0.0f64..0.9)).prop_map(|(wf, reach, uf)| {
            SharingPattern::NeighborExchange {
                write_fraction: wf,
                reach,
                uniform_fraction: uf,
            }
        }),
        ((0.05f64..0.7), (1usize..4), (0.0f64..0.9)).prop_map(|(wf, partners, uf)| {
            SharingPattern::RandomComm {
                write_fraction: wf,
                partners,
                uniform_fraction: uf,
            }
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = AppSpec> {
    (
        2usize..12,         // threads
        5_000f64..40_000.0, // mean length
        0f64..120.0,        // length dev %
        10f64..95.0,        // shared %
        2f64..200.0,        // refs per shared addr
        0.2f64..0.45,       // data ratio
        arb_pattern(),
    )
        .prop_map(
            |(threads, mean, dev, shared, rpa, ratio, pattern)| AppSpec {
                name: "prop-app",
                granularity: Granularity::Medium,
                threads,
                thread_length: TargetStat::new(mean, dev),
                shared_percent: shared,
                refs_per_shared_addr: rpa,
                data_ratio: ratio,
                pattern,
                cache_kb: 64,
                phases: 1,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any spec generates a structurally valid program: right thread
    /// count, addresses confined to the defined regions, deterministic.
    #[test]
    fn generator_is_valid_for_any_spec(spec in arb_spec(), seed in 0u64..1000) {
        let opts = GenOptions { scale: 0.02, seed };
        let prog = generate(&spec, &opts);
        prop_assert_eq!(prog.thread_count(), spec.threads);
        prop_assert!(prog.total_refs() > 0);

        // Region discipline: instructions in the code window, data in
        // shared or private space.
        for (_, thread) in prog.iter() {
            for r in thread.iter() {
                let a = r.addr.raw();
                if r.kind.is_data() {
                    prop_assert!(
                        a >= gen_internals::SHARED_BASE,
                        "data ref below shared base: {a:#x}"
                    );
                } else {
                    prop_assert!(a < gen_internals::SHARED_BASE, "instr above code: {a:#x}");
                }
            }
        }

        // Determinism.
        prop_assert_eq!(generate(&spec, &opts), prog);
    }

    /// The generated shared-reference fraction tracks the spec target.
    #[test]
    fn shared_fraction_tracks_spec(spec in arb_spec(), seed in 0u64..100) {
        let opts = GenOptions { scale: 0.02, seed };
        let prog = generate(&spec, &opts);
        let mut shared = 0u64;
        let mut data = 0u64;
        for (_, thread) in prog.iter() {
            for r in thread.iter() {
                if r.kind.is_data() {
                    data += 1;
                    if r.addr.raw() < gen_internals::PRIVATE_BASE {
                        shared += 1;
                    }
                }
            }
        }
        // Emission-side fraction (region membership): tight tolerance.
        let frac = 100.0 * shared as f64 / data.max(1) as f64;
        prop_assert!(
            (frac - spec.shared_percent).abs() < 6.0,
            "emitted shared {frac:.1}% vs target {:.1}%",
            spec.shared_percent
        );
    }

    /// The analyzer agrees the generated programs actually share. This
    /// is guaranteed for the all-share pattern (every thread sweeps one
    /// pool); sparse patterns may legitimately degenerate to zero
    /// sharing at tiny slot counts.
    #[test]
    fn sharing_exists_between_some_pair(mut spec in arb_spec(), seed in 0u64..100) {
        spec.pattern = SharingPattern::UniformAllShare { write_fraction: 0.3 };
        // Pin locality so even the smallest sampled spec visits more
        // slots than the pool holds (guaranteeing overlap).
        spec.refs_per_shared_addr = 2.0;
        spec.shared_percent = spec.shared_percent.max(40.0);
        let opts = GenOptions { scale: 0.02, seed };
        let prog = generate(&spec, &opts);
        let sharing = SharingAnalysis::measure(&prog);
        prop_assert!(
            sharing.total_pairwise_shared_refs() > 0,
            "no sharing generated for {:?}",
            spec.pattern
        );
    }

    /// The fused front end — generate-with-profile plus the access-list
    /// analyzer — must be bit-identical to the retained reference
    /// paths: the serial emitter followed by the full-profile analyzer.
    /// This is the end-to-end guarantee `bench_pipeline` leans on.
    #[test]
    fn fused_front_end_matches_reference(
        mut spec in arb_spec(),
        seed in 0u64..1000,
        phases in 1usize..6,
    ) {
        spec.phases = phases;
        let opts = GenOptions { scale: 0.02, seed };
        let (prog, access) = generate_with_access(&spec, &opts);
        prop_assert_eq!(&prog, &reference::generate(&spec, &opts));
        let fused = SharingAnalysis::measure_access(&access);
        prop_assert_eq!(&fused, &SharingAnalysis::measure_reference(&prog));
        prop_assert_eq!(&fused, &SharingAnalysis::measure(&prog));
    }

    /// Scale changes length but not structure: the shared fraction is
    /// scale-invariant.
    #[test]
    fn shared_fraction_is_scale_invariant(spec in arb_spec()) {
        let small = generate(&spec, &GenOptions { scale: 0.01, seed: 3 });
        let large = generate(&spec, &GenOptions { scale: 0.03, seed: 3 });
        let frac = |prog: &placesim_trace::ProgramTrace| {
            let mut shared = 0u64;
            let mut data = 0u64;
            for (_, t) in prog.iter() {
                for r in t.iter() {
                    if r.kind.is_data() {
                        data += 1;
                        if r.addr.raw() < gen_internals::PRIVATE_BASE {
                            shared += 1;
                        }
                    }
                }
            }
            shared as f64 / data.max(1) as f64
        };
        prop_assert!((frac(&small) - frac(&large)).abs() < 0.05);
        prop_assert!(large.total_instrs() > small.total_instrs());
    }
}
