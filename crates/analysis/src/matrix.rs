//! A symmetric matrix with zero diagonal, stored triangularly.

use serde::{Deserialize, Serialize};

/// A symmetric `n × n` matrix over `T` with an implicit zero diagonal.
///
/// Pairwise sharing metrics between threads (and clusters) are symmetric
/// — `shared-references(a, b) == shared-references(b, a)` — and the
/// diagonal is meaningless, so only the strict upper triangle is stored.
///
/// # Example
///
/// ```
/// use placesim_analysis::SymMatrix;
///
/// let mut m = SymMatrix::new(3, 0u64);
/// m.set(0, 2, 7);
/// assert_eq!(m.get(2, 0), 7);
/// assert_eq!(m.get(1, 1), 0); // diagonal is always the zero element
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymMatrix<T> {
    n: usize,
    zero: T,
    data: Vec<T>,
}

impl<T: Clone> SymMatrix<T> {
    /// Creates an `n × n` matrix filled with `zero`.
    pub fn new(n: usize, zero: T) -> Self {
        let len = n * n.saturating_sub(1) / 2;
        SymMatrix {
            n,
            zero: zero.clone(),
            data: vec![zero; len],
        }
    }

    /// The matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j, "diagonal is implicit");
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        debug_assert!(
            hi < self.n,
            "index ({i},{j}) out of bounds for dim {}",
            self.n
        );
        // Elements are laid out row by row over the strict upper triangle:
        // row lo starts at lo*n - lo*(lo+1)/2 - lo  (cumulative row lengths).
        lo * (2 * self.n - lo - 1) / 2 + (hi - lo - 1)
    }

    /// Returns the element at `(i, j)`; the diagonal reads as the zero value.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(
            i < self.n && j < self.n,
            "({i},{j}) out of bounds for dim {}",
            self.n
        );
        if i == j {
            self.zero.clone()
        } else {
            self.data[self.index(i, j)].clone()
        }
    }

    /// Sets the element at `(i, j)` (and symmetrically `(j, i)`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or if `i == j`.
    pub fn set(&mut self, i: usize, j: usize, value: T) {
        assert!(
            i < self.n && j < self.n,
            "({i},{j}) out of bounds for dim {}",
            self.n
        );
        assert!(i != j, "cannot set the implicit zero diagonal");
        let idx = self.index(i, j);
        self.data[idx] = value;
    }

    /// Mutable access to the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or if `i == j`.
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut T {
        assert!(
            i < self.n && j < self.n,
            "({i},{j}) out of bounds for dim {}",
            self.n
        );
        assert!(i != j, "cannot mutate the implicit zero diagonal");
        let idx = self.index(i, j);
        &mut self.data[idx]
    }

    /// Iterates over all strict-upper-triangle entries as `(i, j, value)`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.n).flat_map(move |i| {
            ((i + 1)..self.n).map(move |j| (i, j, self.data[self.index(i, j)].clone()))
        })
    }
}

impl SymMatrix<u64> {
    /// Adds `delta` to the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or if `i == j`.
    pub fn add(&mut self, i: usize, j: usize, delta: u64) {
        *self.get_mut(i, j) += delta;
    }

    /// Element-wise adds `other` into `self` (the reduction step of the
    /// sharded sharing analysis: partial matrices from disjoint address
    /// shards sum exactly because all entries are `u64` counters).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_assign(&mut self, other: &SymMatrix<u64>) {
        assert_eq!(
            self.n, other.n,
            "cannot add a {}-dim matrix into a {}-dim one",
            other.n, self.n
        );
        for (dst, src) in self.data.iter_mut().zip(&other.data) {
            *dst += src;
        }
    }

    /// Sum of the metric between every pair drawn from `members`.
    ///
    /// This is the paper's "total shared references within each cluster,
    /// obtained by summing the shared references between all pairs of
    /// threads in each cluster" (Figure 1(d)).
    pub fn group_sum(&self, members: &[usize]) -> u64 {
        let mut total = 0;
        for (k, &i) in members.iter().enumerate() {
            for &j in &members[k + 1..] {
                total += self.get(i, j);
            }
        }
        total
    }

    /// Sum of the metric between every `(a, b)` with `a ∈ left`, `b ∈ right`.
    ///
    /// Used for the inter-cluster sharing metric of the clustering engine.
    pub fn cross_sum(&self, left: &[usize], right: &[usize]) -> u64 {
        let mut total = 0;
        for &i in left {
            for &j in right {
                if i != j {
                    total += self.get(i, j);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_layout_covers_all_pairs() {
        let n = 7;
        let mut m = SymMatrix::new(n, 0u64);
        let mut counter = 1;
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, counter);
                counter += 1;
            }
        }
        // Every pair reads back its own value, symmetrically.
        let mut counter = 1;
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(m.get(i, j), counter);
                assert_eq!(m.get(j, i), counter);
                counter += 1;
            }
        }
    }

    #[test]
    fn diagonal_reads_zero() {
        let m = SymMatrix::new(4, 0u64);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0);
        }
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_set_panics() {
        let mut m = SymMatrix::new(4, 0u64);
        m.set(2, 2, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = SymMatrix::new(4, 0u64);
        let _ = m.get(0, 4);
    }

    #[test]
    fn add_accumulates() {
        let mut m = SymMatrix::new(3, 0u64);
        m.add(0, 1, 5);
        m.add(1, 0, 3);
        assert_eq!(m.get(0, 1), 8);
    }

    #[test]
    fn add_assign_sums_elementwise() {
        let mut a = SymMatrix::new(3, 0u64);
        a.set(0, 1, 2);
        a.set(1, 2, 3);
        let mut b = SymMatrix::new(3, 0u64);
        b.set(0, 1, 10);
        b.set(0, 2, 7);
        a.add_assign(&b);
        assert_eq!(a.get(0, 1), 12);
        assert_eq!(a.get(0, 2), 7);
        assert_eq!(a.get(1, 2), 3);
    }

    #[test]
    #[should_panic(expected = "cannot add")]
    fn add_assign_checks_dims() {
        let mut a = SymMatrix::new(3, 0u64);
        a.add_assign(&SymMatrix::new(4, 0u64));
    }

    #[test]
    fn group_and_cross_sums() {
        let mut m = SymMatrix::new(4, 0u64);
        m.set(0, 1, 1);
        m.set(0, 2, 2);
        m.set(0, 3, 4);
        m.set(1, 2, 8);
        m.set(1, 3, 16);
        m.set(2, 3, 32);
        assert_eq!(m.group_sum(&[0, 1, 2]), 1 + 2 + 8);
        assert_eq!(m.group_sum(&[3]), 0);
        assert_eq!(m.cross_sum(&[0, 1], &[2, 3]), 2 + 4 + 8 + 16);
        assert_eq!(m.cross_sum(&[], &[0]), 0);
    }

    #[test]
    fn iter_pairs_yields_upper_triangle() {
        let mut m = SymMatrix::new(3, 0u64);
        m.set(0, 1, 10);
        m.set(1, 2, 20);
        let pairs: Vec<_> = m.iter_pairs().collect();
        assert_eq!(pairs, vec![(0, 1, 10), (0, 2, 0), (1, 2, 20)]);
    }

    #[test]
    fn degenerate_dims() {
        let m0 = SymMatrix::new(0, 0u64);
        assert_eq!(m0.dim(), 0);
        let m1 = SymMatrix::new(1, 0u64);
        assert_eq!(m1.get(0, 0), 0);
        assert_eq!(m1.iter_pairs().count(), 0);
    }
}
