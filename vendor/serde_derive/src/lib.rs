//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no access to crates.io, and nothing in the
//! workspace actually serializes through serde's data model — the derives
//! only decorate types. These macros therefore accept the same syntax as
//! the real crate (including `#[serde(...)]` helper attributes) and emit
//! no code. If a future change needs real (de)serialization, replace this
//! crate with the genuine `serde_derive` and the workspace compiles
//! unchanged.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
