//! The synthetic 14-application parallel workload suite.
//!
//! The paper's experiments consume MPtrace traces of fourteen coarse- and
//! medium-grain parallel programs captured on a Sequent Symmetry. Those
//! traces are long gone; this crate substitutes a *parameterized
//! synthetic generator* with one model per application, tuned to the
//! paper's published program characteristics (Tables 1 and 2):
//!
//! * thread count and thread-length mean/deviation,
//! * percentage of shared data references,
//! * references per shared address (temporal locality),
//! * pairwise-sharing uniformity (via the qualitative sharing pattern),
//! * the *sequential* nature of inter-thread sharing the paper credits
//!   for its negative result (threads sweep shared data in long
//!   same-thread runs, staggered in time).
//!
//! The paper's own causal explanation rests exactly on these measurable
//! characteristics, so a generator that reproduces them exercises the
//! same simulator code paths and reproduces the result *shapes* (see
//! DESIGN.md for the substitution argument).
//!
//! # Example
//!
//! ```
//! use placesim_workloads::{suite, generate, GenOptions};
//!
//! let spec = placesim_workloads::spec("fft").expect("fft is in the suite");
//! // Generate at 1% of paper scale for a quick look.
//! let prog = generate(&spec, &GenOptions { scale: 0.01, seed: 7 });
//! assert_eq!(prog.thread_count(), spec.threads);
//! assert_eq!(suite().len(), 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod spec;
mod suite;
pub mod validate;

pub use gen::{generate, generate_streamed, generate_with_access, GenOptions};
pub use spec::{AppSpec, Granularity, SharingPattern, TargetStat};
pub use suite::{spec, suite, SUITE_NAMES};

/// The pre-overhaul serial generator, kept for differential testing and
/// the pipeline benchmark's "old front-end" timings.
pub mod reference {
    pub use crate::gen::reference::generate;
}

/// Address-space landmarks of the generator, exposed for validation and
/// analysis tooling (e.g. deciding whether an address is in the shared
/// region).
pub mod gen_internals {
    pub use crate::gen::regions::{
        CODE_BASE, CODE_WORDS, MAX_SHARED_SLOTS, PRIVATE_BASE, PRIVATE_STRIDE, SHARED_BASE,
        SHARED_STRIDE,
    };
}
