//! Write-run and migratory-data analysis.
//!
//! §4.2 of the paper explains the tiny runtime coherence traffic by the
//! *sequential* sharing of the applications: "a processor accesses a
//! shared location multiple times before there is contention from another
//! processor", and cites an FFT analysis where "73% of all shared
//! elements are migratory, i.e., accessed in long write runs". A *write
//! run* (Eggers' terminology) is a maximal sequence of accesses to an
//! address by a single thread, beginning with that thread's first access
//! after another thread touched the address.
//!
//! Static per-thread traces carry no cross-thread temporal information,
//! so this module analyzes an *interleaving* of the threads. The default
//! interleaving is round-robin one-reference-at-a-time, which approximates
//! the fine-grain interleaving of a multiprocessor execution.

use placesim_trace::{ProgramTrace, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-program write-run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WriteRunStats {
    /// Number of shared addresses examined.
    pub shared_addresses: u64,
    /// Shared addresses classified as migratory (their accesses occur in
    /// runs of length ≥ [`MIGRATORY_MIN_RUN`] at least
    /// [`MIGRATORY_MIN_FRACTION`] of the time).
    pub migratory_addresses: u64,
    /// Mean run length over all runs at shared addresses.
    pub mean_run_length: f64,
    /// Total number of runs observed at shared addresses.
    pub runs: u64,
}

impl WriteRunStats {
    /// Fraction (0–1) of shared addresses that are migratory.
    pub fn migratory_fraction(&self) -> f64 {
        if self.shared_addresses == 0 {
            0.0
        } else {
            self.migratory_addresses as f64 / self.shared_addresses as f64
        }
    }
}

/// A run counts toward migratory classification if at least this long.
pub const MIGRATORY_MIN_RUN: u64 = 2;
/// An address is migratory if this fraction of its accesses fall in
/// qualifying runs.
pub const MIGRATORY_MIN_FRACTION: f64 = 0.5;

/// Analyzes write runs under a round-robin interleaving of the threads.
///
/// Each scheduling step takes one data reference from each non-exhausted
/// thread in thread-id order. Only *shared* addresses (touched by ≥ 2
/// threads across the whole program) are analyzed.
pub fn analyze_round_robin(prog: &ProgramTrace) -> WriteRunStats {
    let mut cursors: Vec<_> = prog
        .threads()
        .iter()
        .map(|t| t.iter().filter(|r| r.kind.is_data()))
        .collect();
    let stream = RoundRobin {
        cursors: &mut cursors,
        next: 0,
        live: prog.thread_count(),
    };
    analyze_stream(stream)
}

/// Analyzes write runs over an arbitrary interleaved `(thread, address)`
/// stream of data references.
pub fn analyze_stream<I>(stream: I) -> WriteRunStats
where
    I: IntoIterator<Item = (ThreadId, u64)>,
{
    #[derive(Default)]
    struct AddrState {
        last_thread: Option<ThreadId>,
        current_run: u64,
        total_refs: u64,
        refs_in_long_runs: u64,
        runs: u64,
        run_length_sum: u64,
        threads_seen: Vec<ThreadId>,
    }

    impl AddrState {
        fn close_run(&mut self) {
            if self.current_run > 0 {
                self.runs += 1;
                self.run_length_sum += self.current_run;
                if self.current_run >= MIGRATORY_MIN_RUN {
                    self.refs_in_long_runs += self.current_run;
                }
            }
            self.current_run = 0;
        }
    }

    let mut states: HashMap<u64, AddrState> = HashMap::new();
    for (tid, addr) in stream {
        let st = states.entry(addr).or_default();
        st.total_refs += 1;
        if !st.threads_seen.contains(&tid) {
            st.threads_seen.push(tid);
        }
        if st.last_thread == Some(tid) {
            st.current_run += 1;
        } else {
            st.close_run();
            st.last_thread = Some(tid);
            st.current_run = 1;
        }
    }

    let mut out = WriteRunStats::default();
    let mut total_run_len = 0u64;
    for st in states.values_mut() {
        st.close_run();
        if st.threads_seen.len() < 2 {
            continue; // private address: not part of sharing analysis
        }
        out.shared_addresses += 1;
        out.runs += st.runs;
        total_run_len += st.run_length_sum;
        if st.total_refs > 0
            && st.refs_in_long_runs as f64 / st.total_refs as f64 >= MIGRATORY_MIN_FRACTION
        {
            out.migratory_addresses += 1;
        }
    }
    out.mean_run_length = if out.runs == 0 {
        0.0
    } else {
        total_run_len as f64 / out.runs as f64
    };
    out
}

/// Round-robin interleaver over per-thread data-reference iterators.
struct RoundRobin<'a, I> {
    cursors: &'a mut [I],
    next: usize,
    live: usize,
}

impl<I> Iterator for RoundRobin<'_, I>
where
    I: Iterator<Item = placesim_trace::MemRef>,
{
    type Item = (ThreadId, u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursors.is_empty() {
            return None;
        }
        let n = self.cursors.len();
        for _ in 0..n {
            let idx = self.next;
            self.next = (self.next + 1) % n;
            if let Some(r) = self.cursors[idx].next() {
                return Some((ThreadId::from_index(idx), r.addr.raw()));
            }
        }
        self.live = 0;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef, ThreadTrace};

    #[test]
    fn single_owner_address_is_ignored() {
        let stream = vec![(ThreadId::new(0), 1u64), (ThreadId::new(0), 1)];
        let stats = analyze_stream(stream);
        assert_eq!(stats.shared_addresses, 0);
        assert_eq!(stats.migratory_fraction(), 0.0);
    }

    #[test]
    fn migratory_address_detected() {
        // T0 accesses addr 5 three times, then T1 three times: two runs of
        // length 3 — all refs in long runs → migratory.
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let stream = vec![(t0, 5u64), (t0, 5), (t0, 5), (t1, 5), (t1, 5), (t1, 5)];
        let stats = analyze_stream(stream);
        assert_eq!(stats.shared_addresses, 1);
        assert_eq!(stats.migratory_addresses, 1);
        assert_eq!(stats.runs, 2);
        assert!((stats.mean_run_length - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_address_is_not_migratory() {
        // Strict alternation: every run has length 1.
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let stream = vec![(t0, 9u64), (t1, 9), (t0, 9), (t1, 9)];
        let stats = analyze_stream(stream);
        assert_eq!(stats.shared_addresses, 1);
        assert_eq!(stats.migratory_addresses, 0);
        assert_eq!(stats.runs, 4);
        assert!((stats.mean_run_length - 1.0).abs() < 1e-12);
    }

    #[test]
    fn round_robin_interleaves_fairly() {
        // T0: A A, T1: A A. Round-robin gives A(T0) A(T1) A(T0) A(T1):
        // four runs of length 1 → not migratory.
        let t0: ThreadTrace = [
            MemRef::read(Address::new(0xA)),
            MemRef::read(Address::new(0xA)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [
            MemRef::read(Address::new(0xA)),
            MemRef::read(Address::new(0xA)),
        ]
        .into_iter()
        .collect();
        let prog = ProgramTrace::new("pp", vec![t0, t1]);
        let stats = analyze_round_robin(&prog);
        assert_eq!(stats.shared_addresses, 1);
        assert_eq!(stats.runs, 4);
        assert_eq!(stats.migratory_addresses, 0);
    }

    #[test]
    fn round_robin_handles_uneven_lengths() {
        let t0: ThreadTrace = [
            MemRef::read(Address::new(0xA)),
            MemRef::read(Address::new(0xA)),
            MemRef::read(Address::new(0xA)),
            MemRef::read(Address::new(0xA)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [MemRef::read(Address::new(0xA))].into_iter().collect();
        let prog = ProgramTrace::new("uneven", vec![t0, t1]);
        let stats = analyze_round_robin(&prog);
        // Interleaving: T0 T1 T0 T0 T0 → runs: 1 (T0), 1 (T1), 3 (T0).
        assert_eq!(stats.runs, 3);
        assert!((stats.mean_run_length - 5.0 / 3.0).abs() < 1e-12);
        // 3 of 5 refs in long runs → migratory.
        assert_eq!(stats.migratory_addresses, 1);
    }

    #[test]
    fn empty_program() {
        let stats = analyze_round_robin(&ProgramTrace::new("e", vec![]));
        assert_eq!(stats.shared_addresses, 0);
        assert_eq!(stats.mean_run_length, 0.0);
    }
}
