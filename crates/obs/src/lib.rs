//! Observability primitives for the placesim workspace.
//!
//! This crate deliberately has **no dependencies** and allocates only
//! when recording strings or serializing. It provides:
//!
//! * [`Counter`] — a named monotonic counter.
//! * [`Histogram`] — a fixed-footprint log2-bucketed histogram of
//!   `u64` samples (count / sum / min / max / 65 power-of-two buckets).
//! * [`SpanTimer`] / [`Span`] — wall-clock phase timers.
//! * [`json`] — a small hand-rolled JSON writer plus validation
//!   helpers. The workspace's vendored `serde` is a no-op stand-in, so
//!   every JSON artifact in the repo is built and checked through this
//!   module.
//! * [`sink`] — JSONL append sinks and an atomic write-then-rename
//!   file helper used for manifests and metrics outputs.
//! * [`proto`] — the `placesim-service-v1` wire protocol: bounded
//!   framing, a hardened request parser, and the placement service's
//!   metrics block.
//!
//! The crate itself is always compiled; *zero-overhead* instrumentation
//! is achieved by the consumers (e.g. `placesim-machine`) gating their
//! hook call sites behind their own `obs` cargo feature so the hooks
//! compile to empty inlined bodies in default builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod json;
pub mod proto;
pub mod sink;
pub mod timeline;

pub use attribution::{AttrCollector, AttrKind, AttributionConfig};
pub use proto::{JobOp, JobSpec, ProtoError, Request, ServiceMetrics, SERVICE_SCHEMA};
pub use timeline::{EventKind, EventTrace, SharingRun, TimelineEvent};

use std::time::Instant;

/// A named monotonic counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Number of buckets in a [`Histogram`]: one for the value `0` plus one
/// per possible bit length of a non-zero `u64` (1..=64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples with O(1) recording and a
/// fixed memory footprint.
///
/// Bucket `0` counts samples equal to zero; bucket `i` (for `i >= 1`)
/// counts samples whose bit length is `i`, i.e. values in
/// `[2^(i-1), 2^i)`. Exact count, sum, min and max are tracked
/// alongside, so means are exact even though the distribution is
/// approximate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one sample. The running sum saturates at `u64::MAX`
    /// rather than wrapping.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts; see the type docs for the bucket → value
    /// range mapping.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Bucket-interpolated percentile estimate, `p` in `[0, 100]`.
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// rank `p/100 × count`, then interpolates linearly across that
    /// bucket's value range (`[2^(i-1), 2^i)` for bucket `i ≥ 1`, exactly
    /// `0` for bucket 0). The estimate is clamped to the exact recorded
    /// `[min, max]`, so single-valued distributions and the extremes
    /// (`p = 0`, `p = 100`) come back exact.
    ///
    /// Returns `None` for an empty histogram or `p` outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let target = p / 100.0 * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cum;
            cum += c;
            if (cum as f64) < target {
                continue;
            }
            // Value range covered by bucket i.
            let (lo, hi) = if i == 0 {
                (0.0, 0.0)
            } else {
                let lo = (1u64 << (i - 1)) as f64;
                // Bucket 64 tops out at u64::MAX.
                let hi = if i >= 64 {
                    u64::MAX as f64
                } else {
                    ((1u64 << i) - 1) as f64
                };
                (lo, hi)
            };
            let frac = if c == 0 {
                0.0
            } else {
                ((target - before as f64) / c as f64).clamp(0.0, 1.0)
            };
            let est = lo + frac * (hi - lo);
            return Some(est.clamp(self.min as f64, self.max as f64));
        }
        Some(self.max as f64)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Writes the histogram as a JSON object value onto `w`. Buckets are
    /// emitted sparsely as `[[bucket_index, count], ...]`.
    pub fn write_json(&self, w: &mut json::JsonWriter) {
        w.begin_object();
        w.field_u64("count", self.count);
        w.field_u64("sum", self.sum);
        w.field_u64("min", self.min().unwrap_or(0));
        w.field_u64("max", self.max().unwrap_or(0));
        w.field_f64("mean", self.mean().unwrap_or(0.0));
        w.field_f64("p50", self.percentile(50.0).unwrap_or(0.0));
        w.field_f64("p95", self.percentile(95.0).unwrap_or(0.0));
        w.field_f64("p99", self.percentile(99.0).unwrap_or(0.0));
        w.key("buckets");
        w.begin_array();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                w.begin_array();
                w.value_u64(i as u64);
                w.value_u64(c);
                w.end_array();
            }
        }
        w.end_array();
        w.end_object();
    }
}

/// Per-class fault counters for supervised runs: how many worker
/// panics, simulation errors, watchdog timeouts and I/O errors a sweep
/// absorbed, and how many retries it spent doing so. Serializable so
/// sweep receipts can carry their fault history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Worker closures that panicked (caught and isolated).
    pub panics: u64,
    /// Jobs that returned a typed error (not retried: deterministic).
    pub errors: u64,
    /// Attempts abandoned by the wall-clock watchdog.
    pub timeouts: u64,
    /// I/O failures absorbed while committing durable state.
    pub io_errors: u64,
    /// Retry attempts dispatched after an absorbed fault.
    pub retries: u64,
    /// Attempt threads abandoned (detached, never joined) after their
    /// watchdog fired. Every abandoned thread is also a timeout, but it
    /// is accounted separately because an abandoned thread may still be
    /// burning a core long after the supervisor moved on — operators
    /// watching a sweep or service need to see that leak, not infer it.
    pub abandoned: u64,
}

impl FaultCounters {
    /// All counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total faults absorbed (excluding the retries spent on them).
    pub fn total(&self) -> u64 {
        self.panics + self.errors + self.timeouts + self.io_errors
    }

    /// Folds another set of counters into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.panics += other.panics;
        self.errors += other.errors;
        self.timeouts += other.timeouts;
        self.io_errors += other.io_errors;
        self.retries += other.retries;
        self.abandoned += other.abandoned;
    }

    /// Writes the counters as a JSON object value onto `w`.
    pub fn write_json(&self, w: &mut json::JsonWriter) {
        w.begin_object();
        w.field_u64("panics", self.panics);
        w.field_u64("errors", self.errors);
        w.field_u64("timeouts", self.timeouts);
        w.field_u64("io_errors", self.io_errors);
        w.field_u64("retries", self.retries);
        w.field_u64("abandoned", self.abandoned);
        w.end_object();
    }
}

/// A completed timed span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Label given at [`SpanTimer::start`].
    pub name: String,
    /// Wall-clock duration in seconds.
    pub secs: f64,
}

/// A running wall-clock timer; call [`SpanTimer::stop`] to obtain the
/// finished [`Span`].
#[derive(Debug)]
pub struct SpanTimer {
    name: String,
    start: Instant,
}

impl SpanTimer {
    /// Starts timing a named span.
    pub fn start(name: impl Into<String>) -> Self {
        SpanTimer {
            name: name.into(),
            start: Instant::now(),
        }
    }

    /// Elapsed seconds without stopping.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stops the timer and returns the completed span.
    pub fn stop(self) -> Span {
        Span {
            secs: self.start.elapsed().as_secs_f64(),
            name: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        let b = h.buckets();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 2); // 2, 3
        assert_eq!(b[3], 2); // 4, 7
        assert_eq!(b[4], 1); // 8
        assert_eq!(b[64], 1); // u64::MAX
        assert_eq!(b.iter().sum::<u64>(), 8);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), Some(15.0));
        assert_eq!(h.sum(), 30);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(100);
        let empty = Histogram::new();
        a.merge(&empty);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(100));
        assert_eq!(a.sum(), 101);
    }

    #[test]
    fn percentile_on_exact_distributions() {
        // 1..=100 uniformly: p50 must land in the right bucket and
        // within the log2 bucket's resolution of the exact median.
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((32.0..=64.0).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!((64.0..=100.0).contains(&p99), "p99 = {p99}");
        // Extremes are exact thanks to the min/max clamp.
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(100.0), Some(100.0));
        // Monotone in p.
        let mut last = 0.0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!(v >= last, "percentile not monotone at p={p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn percentile_single_value_is_exact() {
        let mut h = Histogram::new();
        for _ in 0..7 {
            h.record(42);
        }
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(42.0), "p={p}");
        }
    }

    #[test]
    fn percentile_all_zeros() {
        let mut h = Histogram::new();
        for _ in 0..4 {
            h.record(0);
        }
        assert_eq!(h.percentile(50.0), Some(0.0));
        assert_eq!(h.percentile(99.0), Some(0.0));
    }

    #[test]
    fn percentile_rejects_bad_inputs() {
        let empty = Histogram::new();
        assert_eq!(empty.percentile(50.0), None);
        let mut h = Histogram::new();
        h.record(1);
        assert_eq!(h.percentile(-1.0), None);
        assert_eq!(h.percentile(101.0), None);
        assert_eq!(h.percentile(f64::NAN), None);
    }

    #[test]
    fn percentile_two_cluster_split() {
        // 90 small samples (value 2) and 10 large ones (value 1024):
        // p50 sits with the small cluster, p99 with the large one.
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(2);
        }
        for _ in 0..10 {
            h.record(1024);
        }
        assert!(h.percentile(50.0).unwrap() <= 3.0);
        assert!(h.percentile(99.0).unwrap() >= 512.0);
    }

    #[test]
    fn histogram_json_is_valid() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(9);
        let mut w = json::JsonWriter::new();
        h.write_json(&mut w);
        let s = w.finish();
        assert!(json::balanced(&s), "unbalanced: {s}");
        assert!(s.contains("\"count\": 2"));
        assert!(s.contains("\"buckets\""));
    }

    #[test]
    fn fault_counters_merge_and_total() {
        let mut a = FaultCounters::new();
        a.panics = 2;
        a.retries = 3;
        let b = FaultCounters {
            errors: 1,
            timeouts: 4,
            io_errors: 5,
            abandoned: 4,
            ..FaultCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 2 + 1 + 4 + 5);
        assert_eq!(a.retries, 3);
        assert_eq!(a.abandoned, 4, "abandoned threads are merged, not lost");

        let mut w = json::JsonWriter::new();
        a.write_json(&mut w);
        let s = w.finish();
        assert!(json::balanced(&s));
        assert!(s.contains("\"timeouts\": 4"));
        assert!(s.contains("\"abandoned\": 4"));
    }

    #[test]
    fn span_timer_measures_time() {
        let t = SpanTimer::start("phase");
        assert!(t.elapsed_secs() >= 0.0);
        let span = t.stop();
        assert_eq!(span.name, "phase");
        assert!(span.secs >= 0.0);
    }
}
