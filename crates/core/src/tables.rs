//! The rows behind the paper's Tables 1–5.

use crate::error::Error;
use crate::experiment::{run_placement_with_config, PreparedApp};
use placesim_analysis::CharacteristicsRow;
use placesim_machine::ArchConfig;
use placesim_placement::PlacementAlgorithm;
use placesim_trace::par::parallel_map;
use placesim_workloads::{AppSpec, GenOptions, Granularity};
use serde::Serialize;

/// One row of Table 1: the application suite.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Coarse or medium grain.
    pub granularity: Granularity,
    /// Thread count.
    pub threads: usize,
    /// Total instructions across all threads.
    pub total_instructions: u64,
    /// Mean thread length in instructions.
    pub mean_thread_length: f64,
}

/// Builds Table 1 from prepared applications.
pub fn table1(apps: &[PreparedApp]) -> Vec<Table1Row> {
    apps.iter()
        .map(|app| Table1Row {
            app: app.spec.name.to_owned(),
            granularity: app.spec.granularity,
            threads: app.threads(),
            total_instructions: app.prog.total_instrs(),
            mean_thread_length: app.prog.total_instrs() as f64 / app.threads().max(1) as f64,
        })
        .collect()
}

/// Builds Table 2 (measured characteristics) from prepared applications.
pub fn table2(apps: &[PreparedApp]) -> Vec<CharacteristicsRow> {
    apps.iter()
        .map(|app| CharacteristicsRow::from_sharing(&app.prog, &app.sharing, app.gen.seed))
        .collect()
}

/// One row of Table 3: an architectural parameter and its value range.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Parameter name.
    pub parameter: &'static str,
    /// Value (or range) used in the experiments.
    pub value: String,
}

/// Builds Table 3 (architectural inputs to the simulator).
pub fn table3() -> Vec<Table3Row> {
    let c = ArchConfig::paper_default();
    vec![
        Table3Row {
            parameter: "Number of processors",
            value: "2 - 16 (up to 127 for the coherence probe)".into(),
        },
        Table3Row {
            parameter: "Hardware contexts per processor",
            value: "threads/processors (1 - 64)".into(),
        },
        Table3Row {
            parameter: "Context switch policy",
            value: "round-robin, switch on cache miss".into(),
        },
        Table3Row {
            parameter: "Context switch time",
            value: format!("{} cycles (pipeline drain)", c.context_switch()),
        },
        Table3Row {
            parameter: "Cache organization",
            value: "direct-mapped, unified".into(),
        },
        Table3Row {
            parameter: "Cache size",
            value: "32 KB / 64 KB (8 MB for the infinite-cache study)".into(),
        },
        Table3Row {
            parameter: "Cache line size",
            value: format!("{} bytes", c.line_size()),
        },
        Table3Row {
            parameter: "Cache hit time",
            value: "1 cycle".into(),
        },
        Table3Row {
            parameter: "Memory latency",
            value: format!(
                "{} cycles (contention-free multipath network)",
                c.memory_latency()
            ),
        },
        Table3Row {
            parameter: "Coherence protocol",
            value: "distributed full-map directory, write-invalidate (MSI)".into(),
        },
    ]
}

/// One row of Table 4: statically counted sharing vs. dynamically
/// measured coherence traffic (one thread per processor).
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Application name.
    pub app: String,
    /// Total statically counted pairwise shared references.
    pub static_pairwise_refs: u64,
    /// Static pairwise shared references as % of total references.
    pub static_percent: f64,
    /// Measured compulsory misses + coherence traffic.
    pub dynamic_traffic: u64,
    /// Measured traffic as % of total references.
    pub dynamic_percent: f64,
    /// Orders of magnitude between static and dynamic counts.
    pub reduction_factor: f64,
}

/// Builds one Table 4 row (runs the coherence probe; the probe's traffic
/// matrix is cached on `app` for later COHERENCE placements).
///
/// # Errors
///
/// Propagates probe failures (e.g. > 128 threads).
pub fn table4_row(app: &mut PreparedApp) -> Result<Table4Row, Error> {
    let probe = app.run_probe()?;
    let total_refs = app.prog.total_refs();
    let static_refs = app.sharing.total_pairwise_shared_refs();
    let dynamic = probe.compulsory_misses() + probe.total_traffic();
    Ok(Table4Row {
        app: app.spec.name.to_owned(),
        static_pairwise_refs: static_refs,
        static_percent: 100.0 * static_refs as f64 / total_refs.max(1) as f64,
        dynamic_traffic: dynamic,
        dynamic_percent: 100.0 * dynamic as f64 / total_refs.max(1) as f64,
        reduction_factor: static_refs as f64 / dynamic.max(1) as f64,
    })
}

/// The applications the paper selects for Table 5 (three per grain with
/// the least-uniform measured sharing).
pub const TABLE5_APPS: [&str; 6] = ["water", "locusroute", "pverify", "grav", "fft", "health"];

/// One row of Table 5: infinite-cache execution times normalized to
/// LOAD-BAL.
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    /// Application name.
    pub app: String,
    /// Processor counts (columns).
    pub processor_counts: Vec<usize>,
    /// Which sharing-based algorithm was best (per processor count).
    pub best_static_algorithm: Vec<PlacementAlgorithm>,
    /// Best static sharing algorithm's time / LOAD-BAL's time.
    pub best_static_normalized: Vec<f64>,
    /// Coherence-traffic algorithm's time / LOAD-BAL's time.
    pub coherence_normalized: Vec<f64>,
}

/// Builds one Table 5 row with an 8 MB cache. Requires the probe to have
/// been run (for the coherence-traffic placement).
///
/// # Errors
///
/// Returns [`Error::ProbeMissing`] if the probe has not been run, and
/// propagates placement/simulation failures.
pub fn table5_row(app: &PreparedApp, processor_counts: &[usize]) -> Result<Table5Row, Error> {
    if app.traffic.is_none() {
        return Err(Error::ProbeMissing);
    }
    let infinite = ArchConfig::infinite_cache();
    // All twelve sharing-based algorithms compete for "best static".
    let sharing_algos: Vec<PlacementAlgorithm> = PlacementAlgorithm::STATIC
        .into_iter()
        .filter(|a| a.is_sharing_based())
        .collect();

    let mut best_alg = Vec::new();
    let mut best_norm = Vec::new();
    let mut coh_norm = Vec::new();
    for &p in processor_counts {
        let lb = run_placement_with_config(app, PlacementAlgorithm::LoadBal, p, &infinite)?
            .execution_time();
        let candidates = parallel_map(&sharing_algos, |&a| {
            run_placement_with_config(app, a, p, &infinite).map(|r| (a, r.execution_time()))
        });
        let mut best: Option<(PlacementAlgorithm, u64)> = None;
        for c in candidates {
            let (a, t) = c?;
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((a, t));
            }
        }
        let (ba, bt) = best.expect("at least one sharing algorithm");
        let coh =
            run_placement_with_config(app, PlacementAlgorithm::CoherenceTraffic, p, &infinite)?
                .execution_time();
        best_alg.push(ba);
        best_norm.push(bt as f64 / lb.max(1) as f64);
        coh_norm.push(coh as f64 / lb.max(1) as f64);
    }

    Ok(Table5Row {
        app: app.spec.name.to_owned(),
        processor_counts: processor_counts.to_vec(),
        best_static_algorithm: best_alg,
        best_static_normalized: best_norm,
        coherence_normalized: coh_norm,
    })
}

/// Prepares a list of applications in parallel.
pub fn prepare_suite(specs: &[AppSpec], opts: &GenOptions) -> Vec<PreparedApp> {
    parallel_map(specs, |spec| PreparedApp::prepare(spec, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_workloads::spec;

    fn tiny(name: &str) -> PreparedApp {
        PreparedApp::prepare(
            &spec(name).unwrap(),
            &GenOptions {
                scale: 0.002,
                seed: 8,
            },
        )
    }

    #[test]
    fn table1_counts() {
        let apps = vec![tiny("water"), tiny("fft")];
        let rows = table1(&apps);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].app, "water");
        assert_eq!(rows[0].threads, 16);
        assert!(rows[0].total_instructions > 0);
        assert!(
            (rows[0].mean_thread_length
                - rows[0].total_instructions as f64 / rows[0].threads as f64)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn table2_has_all_columns() {
        let apps = vec![tiny("water")];
        let rows = table2(&apps);
        assert_eq!(rows[0].app, "water");
        assert!(rows[0].shared_refs_percent.mean > 0.0);
        assert!(rows[0].pairwise_sharing.mean > 0.0);
    }

    #[test]
    fn table3_covers_paper_parameters() {
        let rows = table3();
        assert!(rows.len() >= 9);
        let all: String = rows
            .iter()
            .map(|r| format!("{} {}", r.parameter, r.value))
            .collect();
        for needle in [
            "50 cycles",
            "6 cycles",
            "direct-mapped",
            "round-robin",
            "directory",
        ] {
            assert!(all.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn table4_shows_static_dynamic_gap() {
        let mut app = tiny("water");
        let row = table4_row(&mut app).unwrap();
        assert!(row.static_pairwise_refs > 0);
        assert!(row.dynamic_traffic > 0);
        assert!(
            row.reduction_factor > 1.0,
            "static {} dynamic {}",
            row.static_pairwise_refs,
            row.dynamic_traffic
        );
        assert!(app.traffic.is_some(), "probe result cached");
    }

    #[test]
    fn table5_normalizes_to_load_bal() {
        let mut app = tiny("fft");
        app.run_probe().unwrap();
        let row = table5_row(&app, &[2, 4]).unwrap();
        assert_eq!(row.best_static_normalized.len(), 2);
        assert!(row.best_static_normalized.iter().all(|&x| x > 0.0));
        assert!(row.coherence_normalized.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn table5_requires_probe() {
        let app = tiny("fft");
        assert!(matches!(table5_row(&app, &[2]), Err(Error::ProbeMissing)));
    }
}
