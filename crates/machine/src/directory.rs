//! Full-map directory shared by all three coherence protocols.
//!
//! The directory tracks, per cache line, which processors hold a copy and
//! whether one holds it exclusively. Caches send replacement hints on
//! eviction, so sharer sets are exact — invalidations and updates only
//! ever target caches that actually hold the line.
//!
//! The base [`Directory::read_fill`]/[`Directory::write_fill`] pair is
//! the paper's write-invalidate machine and serves MESI unchanged (the
//! directory's `Modified` state means "sole holder", which covers both
//! MESI's E and M — the silent E→M upgrade is invisible to the
//! directory). MESI additionally uses [`Directory::grant_exclusive`] for
//! exclusive-clean read fills, and Dragon replaces the invalidating
//! write path with [`Directory::update_fill`].

use placesim_placement::ProcessorId;
use placesim_trace::hash::FastMap;
use serde::{Deserialize, Serialize};

/// Maximum number of processors the directory supports (the sharer set
/// is a `u128` bitmask). The paper's largest configuration is 127
/// processors (Gauss, one thread per processor).
pub const MAX_PROCESSORS: usize = 128;

/// A set of processors holding a line, as a bitmask.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharerSet(u128);

impl SharerSet {
    /// The empty set.
    pub fn empty() -> Self {
        SharerSet(0)
    }

    /// Set containing exactly `p`.
    pub fn single(p: ProcessorId) -> Self {
        SharerSet(1u128 << p.index())
    }

    /// Inserts `p`.
    pub fn insert(&mut self, p: ProcessorId) {
        self.0 |= 1u128 << p.index();
    }

    /// Removes `p`.
    pub fn remove(&mut self, p: ProcessorId) {
        self.0 &= !(1u128 << p.index());
    }

    /// Membership test.
    pub fn contains(&self, p: ProcessorId) -> bool {
        self.0 & (1u128 << p.index()) != 0
    }

    /// Number of sharers.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// `true` if no processor holds the line.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over members in ascending processor order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessorId> + '_ {
        let bits = self.0;
        (0..MAX_PROCESSORS)
            .filter(move |i| bits & (1u128 << i) != 0)
            .map(ProcessorId::from_index)
    }
}

/// Directory state of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirState {
    /// One or more caches hold the line clean.
    Shared(SharerSet),
    /// Exactly one cache holds the line dirty.
    Modified(ProcessorId),
}

/// What a cache must do after a directory transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Remote caches that must invalidate the line.
    pub invalidate: Vec<ProcessorId>,
    /// Remote cache that must downgrade the line Modified → Shared.
    pub downgrade: Option<ProcessorId>,
}

impl Transaction {
    /// The empty transaction (no remote action required).
    pub(crate) fn none() -> Self {
        Transaction {
            invalidate: Vec::new(),
            downgrade: None,
        }
    }
}

/// The full-map directory.
#[derive(Debug, Default)]
pub struct Directory {
    lines: FastMap<u64, DirState>,
    /// Undo log for speculative window validation (parallel engine).
    /// While active, every mutating call records the touched line's
    /// prior state, so a whole window of transactions can be rolled
    /// back and replayed. `None` (the serial engine) costs one
    /// predictable branch per transaction.
    journal: Option<Vec<(u64, Option<DirState>)>>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts journaling mutations. Must not already be journaling.
    pub(crate) fn journal_begin(&mut self) {
        debug_assert!(self.journal.is_none(), "journal already active");
        self.journal = Some(Vec::new());
    }

    /// Undoes every mutation since [`Self::journal_begin`] (or the last
    /// rollback), restoring preimages in reverse order. Journaling stays
    /// active for the replay that follows.
    pub(crate) fn journal_rollback(&mut self) {
        if let Some(journal) = &mut self.journal {
            for (line, prev) in journal.drain(..).rev() {
                match prev {
                    Some(state) => {
                        self.lines.insert(line, state);
                    }
                    None => {
                        self.lines.remove(&line);
                    }
                }
            }
        }
    }

    /// Accepts every mutation since [`Self::journal_begin`] and stops
    /// journaling.
    pub(crate) fn journal_commit(&mut self) {
        self.journal = None;
    }

    /// Records `line`'s current state before a mutation, if journaling.
    fn journal_record(&mut self, line: u64) {
        if let Some(journal) = &mut self.journal {
            journal.push((line, self.lines.get(&line).copied()));
        }
    }

    /// Number of lines with at least one cached copy.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }

    /// Processor `p` reads line `line` (on a read miss fill).
    ///
    /// Returns the remote actions: a Modified owner, if any, must
    /// downgrade to Shared.
    pub fn read_fill(&mut self, p: ProcessorId, line: u64) -> Transaction {
        self.journal_record(line);
        let journaling = self.journal.is_some();
        let mut tx = Transaction::none();
        let state = self
            .lines
            .entry(line)
            .or_insert(DirState::Shared(SharerSet::empty()));
        match state {
            DirState::Shared(sharers) => {
                sharers.insert(p);
            }
            DirState::Modified(owner) => {
                let owner = *owner;
                // Under an active journal (parallel-engine validation) a
                // mis-speculated iteration may replay inconsistent
                // transactions before being rolled back, so the sanity
                // assert only holds for unjournaled (serial) use.
                debug_assert!(
                    journaling || owner != p,
                    "owner re-reading must hit in its own cache"
                );
                tx.downgrade = Some(owner);
                let mut sharers = SharerSet::single(owner);
                sharers.insert(p);
                *state = DirState::Shared(sharers);
            }
        }
        tx
    }

    /// Processor `p` writes line `line` (write-miss fill *or* upgrade of
    /// a Shared copy).
    ///
    /// Returns the remote caches to invalidate; the directory then
    /// records `p` as the exclusive Modified owner.
    pub fn write_fill(&mut self, p: ProcessorId, line: u64) -> Transaction {
        self.journal_record(line);
        let mut tx = Transaction::none();
        let state = self.lines.entry(line).or_insert(DirState::Modified(p));
        match state {
            DirState::Shared(sharers) => {
                for sharer in sharers.iter() {
                    if sharer != p {
                        tx.invalidate.push(sharer);
                    }
                }
                *state = DirState::Modified(p);
            }
            DirState::Modified(owner) => {
                if *owner != p {
                    tx.invalidate.push(*owner);
                    *state = DirState::Modified(p);
                }
            }
        }
        tx
    }

    /// Records `p` as the sole (exclusive) holder of an untracked line.
    ///
    /// MESI/Dragon read-miss path: when a read fill finds no other
    /// holder, the line fills Exclusive and the directory tracks the
    /// filler as owner, reusing the `Modified` representation — for the
    /// directory both mean "exactly one cache holds the line and must be
    /// consulted on remote access". A later remote read downgrades it
    /// via the ordinary [`Directory::read_fill`] path.
    pub fn grant_exclusive(&mut self, p: ProcessorId, line: u64) {
        self.journal_record(line);
        let journaling = self.journal.is_some();
        let prev = self.lines.insert(line, DirState::Modified(p));
        // See read_fill: journaled replays may be speculative.
        debug_assert!(
            journaling || prev.is_none(),
            "exclusive grant for a line with existing holders"
        );
    }

    /// Processor `p` writes line `line` under a write-update protocol
    /// (Dragon): remote copies are refreshed in place, never removed.
    ///
    /// Returns the remote sharers that must apply the update. The
    /// directory keeps every copy resident; if `p` ends up the sole
    /// holder the line is recorded as Modified, otherwise the sharer set
    /// (including `p`, who holds it SharedDirty) stays Shared.
    pub fn update_fill(&mut self, p: ProcessorId, line: u64) -> Vec<ProcessorId> {
        self.journal_record(line);
        let journaling = self.journal.is_some();
        let mut others = Vec::new();
        let state = self
            .lines
            .entry(line)
            .or_insert(DirState::Shared(SharerSet::empty()));
        match state {
            DirState::Shared(sharers) => {
                others.extend(sharers.iter().filter(|&s| s != p));
                if others.is_empty() {
                    *state = DirState::Modified(p);
                } else {
                    sharers.insert(p);
                }
            }
            DirState::Modified(owner) => {
                // A write hit on an exclusively-held line is silent in the
                // cache (E/M → M), so serial Dragon never sends the owner
                // back here; only speculative journaled replays can.
                debug_assert!(
                    journaling || *owner != p,
                    "owner re-updating must upgrade silently in its own cache"
                );
                if *owner != p {
                    others.push(*owner);
                    let mut sharers = SharerSet::single(*owner);
                    sharers.insert(p);
                    *state = DirState::Shared(sharers);
                }
            }
        }
        others
    }

    /// Replacement hint: processor `p` evicted its copy of `line`.
    pub fn evict(&mut self, p: ProcessorId, line: u64) {
        self.journal_record(line);
        let journaling = self.journal.is_some();
        if let Some(state) = self.lines.get_mut(&line) {
            match state {
                DirState::Shared(sharers) => {
                    sharers.remove(p);
                    if sharers.is_empty() {
                        self.lines.remove(&line);
                    }
                }
                DirState::Modified(owner) => {
                    // See read_fill: journaled replays may be speculative.
                    debug_assert!(
                        journaling || *owner == p,
                        "only the owner can evict a Modified line"
                    );
                    self.lines.remove(&line);
                }
            }
        }
    }

    /// The sharers of a line (empty if untracked). For assertions/tests.
    pub fn sharers(&self, line: u64) -> SharerSet {
        match self.lines.get(&line) {
            None => SharerSet::empty(),
            Some(DirState::Shared(s)) => *s,
            Some(DirState::Modified(o)) => SharerSet::single(*o),
        }
    }

    /// Whether `p` holds `line` according to the directory.
    pub fn holds(&self, p: ProcessorId, line: u64) -> bool {
        self.sharers(line).contains(p)
    }

    /// The exclusive Modified owner of a line, if it has one.
    pub fn owner(&self, line: u64) -> Option<ProcessorId> {
        match self.lines.get(&line) {
            Some(DirState::Modified(o)) => Some(*o),
            _ => None,
        }
    }

    /// Iterates over every tracked line as
    /// `(line, sharers, modified_owner)`, in map (unspecified) order.
    pub fn iter_lines(&self) -> impl Iterator<Item = (u64, SharerSet, Option<ProcessorId>)> + '_ {
        self.lines.iter().map(|(&line, state)| match state {
            DirState::Shared(s) => (line, *s, None),
            DirState::Modified(o) => (line, SharerSet::single(*o), Some(*o)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::from_index(i)
    }

    #[test]
    fn sharer_set_ops() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(p(3));
        s.insert(p(127));
        assert!(s.contains(p(3)));
        assert!(!s.contains(p(4)));
        assert_eq!(s.len(), 2);
        let members: Vec<usize> = s.iter().map(|x| x.index()).collect();
        assert_eq!(members, vec![3, 127]);
        s.remove(p(3));
        assert!(!s.contains(p(3)));
        assert_eq!(SharerSet::single(p(0)).len(), 1);
    }

    #[test]
    fn read_read_shares() {
        let mut d = Directory::new();
        assert_eq!(d.read_fill(p(0), 10), Transaction::none());
        assert_eq!(d.read_fill(p(1), 10), Transaction::none());
        assert_eq!(d.sharers(10).len(), 2);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read_fill(p(0), 10);
        d.read_fill(p(1), 10);
        d.read_fill(p(2), 10);
        let tx = d.write_fill(p(1), 10);
        let mut inv: Vec<usize> = tx.invalidate.iter().map(|x| x.index()).collect();
        inv.sort_unstable();
        assert_eq!(inv, vec![0, 2]);
        assert!(tx.downgrade.is_none());
        assert!(d.holds(p(1), 10));
        assert!(!d.holds(p(0), 10));
    }

    #[test]
    fn read_downgrades_owner() {
        let mut d = Directory::new();
        d.write_fill(p(0), 20);
        let tx = d.read_fill(p(1), 20);
        assert_eq!(tx.downgrade, Some(p(0)));
        assert!(tx.invalidate.is_empty());
        assert_eq!(d.sharers(20).len(), 2);
    }

    #[test]
    fn write_steals_modified() {
        let mut d = Directory::new();
        d.write_fill(p(0), 30);
        let tx = d.write_fill(p(1), 30);
        assert_eq!(tx.invalidate, vec![p(0)]);
        assert!(d.holds(p(1), 30));
        assert!(!d.holds(p(0), 30));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new();
        d.write_fill(p(0), 30);
        let tx = d.write_fill(p(0), 30);
        assert_eq!(tx, Transaction::none());
    }

    #[test]
    fn eviction_hints_clean_up() {
        let mut d = Directory::new();
        d.read_fill(p(0), 40);
        d.read_fill(p(1), 40);
        d.evict(p(0), 40);
        assert!(!d.holds(p(0), 40));
        assert!(d.holds(p(1), 40));
        d.evict(p(1), 40);
        assert_eq!(d.tracked_lines(), 0);

        d.write_fill(p(2), 50);
        d.evict(p(2), 50);
        assert_eq!(d.tracked_lines(), 0);
        // Evicting an untracked line is a no-op.
        d.evict(p(2), 50);
    }

    #[test]
    fn journal_rollback_restores_preimages() {
        let mut d = Directory::new();
        d.read_fill(p(0), 10);
        d.write_fill(p(1), 20);

        d.journal_begin();
        d.write_fill(p(2), 10); // steal 10 from sharers
        d.read_fill(p(3), 20); // downgrade 20's owner
        d.write_fill(p(0), 30); // fresh line
        d.evict(p(1), 20);
        assert!(d.holds(p(2), 10));
        d.journal_rollback();

        // Pre-window state restored exactly.
        assert!(d.holds(p(0), 10));
        assert!(!d.holds(p(2), 10));
        assert_eq!(d.owner(20), Some(p(1)));
        assert_eq!(d.sharers(30), SharerSet::empty());
        assert_eq!(d.tracked_lines(), 2);

        // Journal stays active: replay then commit keeps the replay.
        let tx = d.write_fill(p(2), 10);
        assert_eq!(tx.invalidate, vec![p(0)]);
        d.journal_commit();
        assert!(d.holds(p(2), 10));
    }

    #[test]
    fn upgrade_from_shared_excludes_writer() {
        let mut d = Directory::new();
        d.read_fill(p(0), 60);
        d.read_fill(p(1), 60);
        // p0 upgrades its own Shared copy.
        let tx = d.write_fill(p(0), 60);
        assert_eq!(tx.invalidate, vec![p(1)]);
    }

    #[test]
    fn exclusive_grant_then_remote_read_downgrades() {
        let mut d = Directory::new();
        d.grant_exclusive(p(0), 70);
        assert_eq!(d.owner(70), Some(p(0)));
        // MESI: remote read of an E/M line goes through read_fill and
        // downgrades the sole holder.
        let tx = d.read_fill(p(1), 70);
        assert_eq!(tx.downgrade, Some(p(0)));
        assert_eq!(d.sharers(70).len(), 2);
    }

    #[test]
    fn update_fill_refreshes_sharers_in_place() {
        let mut d = Directory::new();
        d.read_fill(p(0), 80);
        d.read_fill(p(1), 80);
        d.read_fill(p(2), 80);
        // p1 writes: p0 and p2 get updates and *stay* sharers.
        let mut others = d.update_fill(p(1), 80);
        others.sort_unstable_by_key(|x| x.index());
        assert_eq!(others, vec![p(0), p(2)]);
        assert_eq!(d.sharers(80).len(), 3);
        assert_eq!(d.owner(80), None);
    }

    #[test]
    fn update_fill_sole_holder_becomes_owner() {
        let mut d = Directory::new();
        // Write miss on an untracked line: no updates, exclusive owner.
        assert!(d.update_fill(p(0), 90).is_empty());
        assert_eq!(d.owner(90), Some(p(0)));
        // A remote write update steals nothing: both stay resident.
        let others = d.update_fill(p(1), 90);
        assert_eq!(others, vec![p(0)]);
        assert_eq!(d.sharers(90).len(), 2);
        assert_eq!(d.owner(90), None);
    }

    #[test]
    fn update_fill_sole_sharer_collapses_to_owner() {
        let mut d = Directory::new();
        d.read_fill(p(0), 95);
        d.read_fill(p(1), 95);
        d.evict(p(1), 95);
        // p0 is the only sharer left; its update promotes to ownership.
        assert!(d.update_fill(p(0), 95).is_empty());
        assert_eq!(d.owner(95), Some(p(0)));
    }

    #[test]
    fn journal_rolls_back_new_fill_paths() {
        let mut d = Directory::new();
        d.read_fill(p(0), 10);
        d.journal_begin();
        d.grant_exclusive(p(1), 11);
        d.update_fill(p(2), 10);
        d.journal_rollback();
        assert_eq!(d.sharers(11), SharerSet::empty());
        assert!(d.holds(p(0), 10));
        assert!(!d.holds(p(2), 10));
        d.journal_commit();
    }
}
