//! Regenerates the paper's Figure 2: LocusRoute execution time across
//! placement algorithms, normalized to RANDOM.

fn main() {
    placesim_bench::print_exec_time_figure("locusroute", "Figure 2");
}
