//! Hostile-input tests for the `placesim-attribution-v1` parser: no
//! malformed report may crash it or pre-allocate more than a small
//! multiple of its own size.
//!
//! Mirrors the trace crate's hostile suite: a tracking global allocator
//! measures peak heap growth, and every parse — byte soup, mutated
//! valid reports, and semantically lying documents — must return a
//! clean `Err` (or a correct parse) under a hard allocation cap. The
//! allocator needs `unsafe`; the library forbids it, this test binary
//! opts in locally.

use placesim_obs::attribution::{self, AttrCollector, AttrKind, AttributionConfig};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Wraps the system allocator, tracking current and peak live bytes.
struct TrackingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

// SAFETY: delegates allocation verbatim to `System`; the bookkeeping is
// plain atomic arithmetic on the side.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = self.current.fetch_add(layout.size(), Ordering::SeqCst) + layout.size();
            self.peak.fetch_max(live, Ordering::SeqCst);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.current.fetch_sub(layout.size(), Ordering::SeqCst);
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc {
    current: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

/// Serializes measured sections: the test harness runs `#[test]` fns on
/// parallel threads, and concurrent allocations would pollute the peak.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f`, returning its result and the peak heap growth (bytes above
/// the live size at entry) during the call.
fn measured_peak<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let base = ALLOC.current.load(Ordering::SeqCst);
    ALLOC.peak.store(base, Ordering::SeqCst);
    let result = f();
    let peak = ALLOC.peak.load(Ordering::SeqCst);
    (peak.saturating_sub(base), result)
}

/// Allocation bound for parsing `input_len` bytes of report: the JSON
/// tree and the parsed view legitimately outgrow the text by a small
/// factor, plus a fixed constant for parser temporaries.
fn alloc_bound(input_len: usize) -> usize {
    input_len * 32 + 64 * 1024
}

/// A genuine report with a few hot lines, both attributed and
/// unattributed events, and a pair matrix.
fn sample_report() -> String {
    let mut c = AttrCollector::new(AttributionConfig::new(1 << 10, 64));
    for i in 0..40u64 {
        c.record(AttrKind::Invalidation, 0x1000 + 64 * (i % 5), 0, 1);
        c.record(AttrKind::CoherenceMiss, 0x1000 + 64 * (i % 5), 1, 0);
        if i % 4 == 0 {
            c.record(AttrKind::Update, 0x8000, 2, 3);
        }
        if i % 7 == 0 {
            c.record(AttrKind::Invalidation, 0x9000, u32::MAX, 1);
        }
    }
    c.report_json("mesi", 4, 16)
}

/// The sample parses cleanly under the cap — the cap is not vacuous.
#[test]
fn valid_report_parses_under_the_cap() {
    let body = sample_report();
    let (peak, result) = measured_peak(|| attribution::parse(&body));
    let doc = result.expect("sample must parse");
    assert!(doc.enabled);
    assert!(doc.events() > 0);
    assert!(peak <= alloc_bound(body.len()), "peaked at {peak}");
}

/// Documents that are well-formed JSON but lie about themselves: each
/// must be rejected with the named reason, never accepted or panicked
/// on.
#[test]
fn semantic_lies_are_rejected() {
    let good = sample_report();
    let cases: Vec<(String, &str)> = vec![
        (
            good.replace("placesim-attribution-v1", "placesim-attribution-v9"),
            "schema",
        ),
        (
            good.replace("\"mode\": \"exact\"", "\"mode\": \"vibes\""),
            "mode",
        ),
        (
            // Exact mode must carry a zero error bound.
            good.replace("\"error_bound\": 0", "\"error_bound\": 7"),
            "error_bound",
        ),
        (
            // Break totals.events against the per-kind sum.
            good.replace("\"events\": 96", "\"events\": 97"),
            "per-kind sum",
        ),
        (
            // Orphan the pair matrix from the totals.
            good.replace("\"unattributed\": 6", "\"unattributed\": 5"),
            "reconcile",
        ),
    ];
    for (body, why) in cases {
        assert_ne!(body, good, "mutation for `{why}` did not apply");
        let (peak, result) = measured_peak(|| attribution::parse(&body));
        assert!(result.is_err(), "lie `{why}` was accepted");
        assert!(
            peak <= alloc_bound(body.len()),
            "lie `{why}` peaked at {peak}"
        );
    }
}

/// Pair rows must be ordered, unique, in-range and overflow-free.
#[test]
fn hostile_pair_rows_are_rejected() {
    let head = "{\"schema\": \"placesim-attribution-v1\", \"enabled\": true, \
                \"protocol\": \"wi\", \"threads\": 2, \"mode\": \"exact\", \
                \"exact_limit\": 4, \"sketch_k\": 4, \"tracked_addresses\": 0, \
                \"error_bound\": 0, \"totals\": {\"invalidations\": 4, \
                \"updates\": 0, \"coherence_misses\": 0, \"events\": 4, \
                \"unattributed\": 0}, \"top\": [], \"pairs\": ";
    for (pairs, why) in [
        ("[[1, 0, 4]]", "unordered pair"),
        ("[[0, 1, 2], [0, 1, 2]]", "duplicate pair"),
        ("[[0, 4294967296, 4]]", "thread id beyond u32"),
        (
            "[[0, 1, 2], [0, 2, 18446744073709551615]]",
            "count overflow",
        ),
        ("[[0, 1]]", "short row"),
        ("[[0, 1, 2, 3]]", "long row"),
        ("[{\"a\": 0}]", "object row"),
        ("[[0, 1, 3]]", "sum mismatch"),
    ] {
        let body = format!("{head}{pairs}}}");
        let (peak, result) = measured_peak(|| attribution::parse(&body));
        assert!(result.is_err(), "`{why}` was accepted");
        assert!(peak <= alloc_bound(body.len()), "`{why}` peaked at {peak}");
    }
}

/// The top array must be sorted and internally consistent.
#[test]
fn hostile_top_rows_are_rejected() {
    let mk = |top: &str, events: u64| {
        format!(
            "{{\"schema\": \"placesim-attribution-v1\", \"enabled\": true, \
             \"protocol\": \"wi\", \"threads\": 2, \"mode\": \"exact\", \
             \"exact_limit\": 4, \"sketch_k\": 4, \"tracked_addresses\": 2, \
             \"error_bound\": 0, \"totals\": {{\"invalidations\": {events}, \
             \"updates\": 0, \"coherence_misses\": 0, \"events\": {events}, \
             \"unattributed\": 0}}, \"top\": {top}, \
             \"pairs\": [[0, 1, {events}]]}}"
        )
    };
    let row = |line: u64, ev: u64| {
        format!(
            "{{\"line\": {line}, \"events\": {ev}, \"count\": {ev}, \
             \"invalidations\": {ev}, \"updates\": 0, \"coherence_misses\": 0, \
             \"runs\": {{\"count\": 1, \"mean\": 1.0, \"max\": 1}}}}"
        )
    };
    // Ascending events order violates the sorted-descending contract.
    let unsorted = mk(&format!("[{}, {}]", row(1, 2), row(2, 5)), 7);
    // A row whose per-kind split disagrees with its events.
    let bad_row = row(1, 3).replace("\"invalidations\": 3", "\"invalidations\": 2");
    let split = mk(&format!("[{bad_row}]"), 3);
    for (body, why) in [(unsorted, "unsorted top"), (split, "bad row split")] {
        let (peak, result) = measured_peak(|| attribution::parse(&body));
        assert!(result.is_err(), "`{why}` was accepted");
        assert!(peak <= alloc_bound(body.len()), "`{why}` peaked at {peak}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte soup: parsing must return Ok or Err — never
    /// panic — with bounded peak allocation.
    #[test]
    fn arbitrary_bytes_never_overallocate(raw in proptest::collection::vec(0u8..=255, 0..512)) {
        let body = String::from_utf8_lossy(&raw).into_owned();
        let (peak, result) = measured_peak(|| attribution::parse(&body));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(body.len()),
            "{} input bytes peaked at {} allocated bytes",
            body.len(),
            peak
        );
    }

    /// Valid reports with mutated and/or truncated text: graceful error
    /// or valid parse, never a panic or an outsized allocation.
    #[test]
    fn mutated_reports_never_overallocate(
        pos in 0usize..8192,
        value in 0u8..=255,
        cut in 0usize..=8192,
    ) {
        let mut body = sample_report().into_bytes();
        let idx = pos % body.len();
        body[idx] = value;
        if cut < 8192 {
            body.truncate(cut % (body.len() + 1));
        }
        let text = String::from_utf8_lossy(&body).into_owned();
        let (peak, result) = measured_peak(|| attribution::parse(&text));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(text.len()),
            "{} input bytes peaked at {} allocated bytes",
            text.len(),
            peak
        );
    }

    /// Deeply nested JSON aimed at the parser's recursion: the hardened
    /// parser must refuse or parse it iteratively — never blow the
    /// stack — and stay under the cap.
    #[test]
    fn deep_nesting_never_crashes(depth in 1usize..2000) {
        let mut body = String::with_capacity(2 * depth + 32);
        body.push_str("{\"schema\": ");
        for _ in 0..depth {
            body.push('[');
        }
        for _ in 0..depth {
            body.push(']');
        }
        body.push('}');
        let (peak, result) = measured_peak(|| attribution::parse(&body));
        prop_assert!(result.is_err());
        prop_assert!(
            peak <= alloc_bound(body.len()),
            "depth {} peaked at {} allocated bytes",
            depth,
            peak
        );
    }
}
