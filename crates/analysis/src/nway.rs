//! Group ("N-way") sharing metrics over clusters of threads.
//!
//! Table 2 of the paper reports inter-thread sharing "for two extremes:
//! two threads per processor and the maximum number of threads possible".
//! The pairwise extreme is just the [`crate::SharingAnalysis`] matrix;
//! the N-way extreme is the shared references *within a cluster* of
//! `⌈t/2⌉` threads (two processors). Per the paper's Figure 1(d), the
//! in-cluster sharing of a cluster is the sum of the pairwise metric over
//! all thread pairs in the cluster.

use crate::matrix::SymMatrix;
use crate::sharing::SharingAnalysis;
use placesim_trace::stats::MeanDev;

/// Shared references within one cluster: the pairwise metric summed over
/// all pairs of cluster members (paper Figure 1(d)).
pub fn group_shared_refs(matrix: &SymMatrix<u64>, members: &[usize]) -> u64 {
    matrix.group_sum(members)
}

/// Mean/deviation of the pairwise shared-reference metric over all thread
/// pairs (Table 2's "Pairwise Sharing" column).
pub fn pairwise_stats(sharing: &SharingAnalysis) -> MeanDev {
    MeanDev::from_values(
        sharing
            .pair_refs_matrix()
            .iter_pairs()
            .map(|(_, _, v)| v as f64),
    )
}

/// Mean/deviation of in-cluster sharing over sampled thread-balanced
/// clusters of `cluster_size` threads (Table 2's "N-way Sharing" column).
///
/// Partitions are sampled with a deterministic xorshift generator seeded
/// by `seed`, so results are reproducible. Each sample shuffles the thread
/// ids and takes consecutive groups of `cluster_size` (the tail group, if
/// smaller, is included — matching the ⌊t/p⌋/⌈t/p⌉ split of a
/// thread-balanced placement).
///
/// # Panics
///
/// Panics if `cluster_size` is zero.
pub fn nway_stats(
    sharing: &SharingAnalysis,
    cluster_size: usize,
    samples: usize,
    seed: u64,
) -> MeanDev {
    assert!(cluster_size > 0, "cluster size must be positive");
    let n = sharing.thread_count();
    if n == 0 {
        return MeanDev::default();
    }
    let mut rng = XorShift::new(seed);
    let mut ids: Vec<usize> = (0..n).collect();
    let mut values = Vec::new();
    for _ in 0..samples {
        shuffle(&mut ids, &mut rng);
        for chunk in ids.chunks(cluster_size) {
            values.push(group_shared_refs(sharing.pair_refs_matrix(), chunk) as f64);
        }
    }
    MeanDev::from_values(values)
}

/// Minimal xorshift64* generator for reproducible sampling without an RNG
/// dependency in this crate.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Unbiased-enough bounded sample for shuffling small arrays.
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Fisher–Yates shuffle.
fn shuffle(ids: &mut [usize], rng: &mut XorShift) {
    for i in (1..ids.len()).rev() {
        let j = rng.below(i + 1);
        ids.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};

    fn uniform_prog(threads: usize) -> ProgramTrace {
        // Every thread reads the same shared address once: perfectly
        // uniform sharing — every pair's metric is 2.
        let traces: Vec<ThreadTrace> = (0..threads)
            .map(|_| {
                [MemRef::read(Address::new(0x100))]
                    .into_iter()
                    .collect::<ThreadTrace>()
            })
            .collect();
        ProgramTrace::new("uniform", traces)
    }

    #[test]
    fn group_sum_matches_manual() {
        let sharing = SharingAnalysis::measure(&uniform_prog(4));
        // Cluster of 3 threads: 3 pairs × 2 refs each = 6.
        assert_eq!(group_shared_refs(sharing.pair_refs_matrix(), &[0, 1, 2]), 6);
        assert_eq!(group_shared_refs(sharing.pair_refs_matrix(), &[0]), 0);
    }

    #[test]
    fn pairwise_stats_uniform_has_zero_dev() {
        let sharing = SharingAnalysis::measure(&uniform_prog(6));
        let stats = pairwise_stats(&sharing);
        assert!((stats.mean - 2.0).abs() < 1e-12);
        assert!(stats.std_dev < 1e-12);
    }

    #[test]
    fn nway_uniform_has_zero_dev() {
        let sharing = SharingAnalysis::measure(&uniform_prog(8));
        // Clusters of 4: C(4,2)=6 pairs × 2 = 12, regardless of which
        // threads land together → deviation 0.
        let stats = nway_stats(&sharing, 4, 16, 42);
        assert!((stats.mean - 12.0).abs() < 1e-12);
        assert!(stats.std_dev < 1e-12);
    }

    #[test]
    fn nway_is_deterministic_per_seed() {
        let t0: ThreadTrace = [MemRef::read(Address::new(1))].into_iter().collect();
        let t1: ThreadTrace = [MemRef::read(Address::new(1)), MemRef::read(Address::new(2))]
            .into_iter()
            .collect();
        let t2: ThreadTrace = [MemRef::read(Address::new(2))].into_iter().collect();
        let t3: ThreadTrace = [MemRef::read(Address::new(3))].into_iter().collect();
        let prog = ProgramTrace::new("skew", vec![t0, t1, t2, t3]);
        let sharing = SharingAnalysis::measure(&prog);
        let a = nway_stats(&sharing, 2, 8, 7);
        let b = nway_stats(&sharing, 2, 8, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn nway_empty_program() {
        let sharing = SharingAnalysis::measure(&ProgramTrace::new("empty", vec![]));
        let stats = nway_stats(&sharing, 2, 4, 1);
        assert_eq!(stats.mean, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cluster_size_panics() {
        let sharing = SharingAnalysis::measure(&uniform_prog(2));
        let _ = nway_stats(&sharing, 0, 1, 1);
    }
}
