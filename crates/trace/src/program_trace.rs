//! All per-thread traces of one application, plus metadata.

use crate::record::ThreadId;
use crate::thread_trace::ThreadTrace;
use serde::{Deserialize, Serialize};

/// The complete trace of one explicitly parallel application: one
/// [`ThreadTrace`] per thread plus a human-readable name.
///
/// Thread ids are dense: thread `i`'s trace is at index `i`.
///
/// # Example
///
/// ```
/// use placesim_trace::{Address, MemRef, ProgramTrace, ThreadId, ThreadTrace};
///
/// let t0: ThreadTrace = [MemRef::read(Address::new(0x10))].into_iter().collect();
/// let t1: ThreadTrace = [MemRef::write(Address::new(0x10))].into_iter().collect();
/// let prog = ProgramTrace::new("demo", vec![t0, t1]);
/// assert_eq!(prog.thread_count(), 2);
/// assert_eq!(prog.thread(ThreadId::new(1)).write_len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramTrace {
    name: String,
    threads: Vec<ThreadTrace>,
}

impl ProgramTrace {
    /// Creates a program trace from per-thread traces.
    pub fn new(name: impl Into<String>, threads: Vec<ThreadTrace>) -> Self {
        ProgramTrace {
            name: name.into(),
            threads,
        }
    }

    /// The application name (e.g. `"locusroute"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of threads, `t` in the paper's notation.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// All valid thread ids, `0..t`.
    pub fn thread_ids(&self) -> impl ExactSizeIterator<Item = ThreadId> + '_ {
        (0..self.threads.len()).map(ThreadId::from_index)
    }

    /// The trace of one thread.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn thread(&self, id: ThreadId) -> &ThreadTrace {
        &self.threads[id.index()]
    }

    /// The trace of one thread, if `id` is in range.
    pub fn get_thread(&self, id: ThreadId) -> Option<&ThreadTrace> {
        self.threads.get(id.index())
    }

    /// Iterates over `(id, trace)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (ThreadId, &ThreadTrace)> + '_ {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| (ThreadId::from_index(i), t))
    }

    /// Borrows all thread traces in id order.
    pub fn threads(&self) -> &[ThreadTrace] {
        &self.threads
    }

    /// Total references across all threads (instruction + data).
    pub fn total_refs(&self) -> u64 {
        self.threads.iter().map(|t| t.len() as u64).sum()
    }

    /// Total instruction references across all threads.
    pub fn total_instrs(&self) -> u64 {
        self.threads.iter().map(ThreadTrace::instr_len).sum()
    }

    /// Total data references across all threads.
    pub fn total_data_refs(&self) -> u64 {
        self.threads.iter().map(ThreadTrace::data_len).sum()
    }

    /// Consumes the program trace and returns its thread traces.
    pub fn into_threads(self) -> Vec<ThreadTrace> {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Address, MemRef};

    fn prog() -> ProgramTrace {
        let t0: ThreadTrace = [
            MemRef::instr(Address::new(0)),
            MemRef::read(Address::new(0x100)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [
            MemRef::instr(Address::new(4)),
            MemRef::instr(Address::new(8)),
            MemRef::write(Address::new(0x100)),
        ]
        .into_iter()
        .collect();
        ProgramTrace::new("demo", vec![t0, t1])
    }

    #[test]
    fn aggregate_counts() {
        let p = prog();
        assert_eq!(p.thread_count(), 2);
        assert_eq!(p.total_refs(), 5);
        assert_eq!(p.total_instrs(), 3);
        assert_eq!(p.total_data_refs(), 2);
        assert_eq!(p.name(), "demo");
    }

    #[test]
    fn thread_lookup() {
        let p = prog();
        assert_eq!(p.thread(ThreadId::new(0)).len(), 2);
        assert!(p.get_thread(ThreadId::new(2)).is_none());
        let ids: Vec<ThreadId> = p.thread_ids().collect();
        assert_eq!(ids, vec![ThreadId::new(0), ThreadId::new(1)]);
    }

    #[test]
    fn iter_pairs() {
        let p = prog();
        let lens: Vec<(usize, usize)> = p.iter().map(|(id, t)| (id.index(), t.len())).collect();
        assert_eq!(lens, vec![(0, 2), (1, 3)]);
    }
}
