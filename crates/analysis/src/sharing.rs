//! Pairwise and per-thread sharing metrics (the paper's §2 inputs).

use crate::matrix::SymMatrix;
use crate::profile::AddressProfile;
use placesim_trace::hash::FastMap;
use placesim_trace::{AddrCounts, ProgramTrace, ThreadId};
use serde::{Deserialize, Serialize};

/// Per-thread sharing aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSharing {
    /// Data references to shared addresses (addresses touched by ≥ 2 threads).
    pub shared_refs: u64,
    /// Data references to private addresses.
    pub private_refs: u64,
    /// Distinct shared addresses this thread touched.
    pub shared_addrs: u64,
    /// Distinct private addresses this thread touched.
    pub private_addrs: u64,
    /// Stores to shared addresses (potential invalidation sources).
    pub writes_to_shared: u64,
}

impl ThreadSharing {
    /// All data references of the thread.
    pub fn data_refs(&self) -> u64 {
        self.shared_refs + self.private_refs
    }

    /// The paper's "% shared refs": shared refs over data refs, 0–100.
    pub fn shared_percent(&self) -> f64 {
        let total = self.data_refs();
        if total == 0 {
            0.0
        } else {
            100.0 * self.shared_refs as f64 / total as f64
        }
    }

    /// The paper's "references per shared address" for this thread.
    pub fn refs_per_shared_addr(&self) -> f64 {
        if self.shared_addrs == 0 {
            0.0
        } else {
            self.shared_refs as f64 / self.shared_addrs as f64
        }
    }
}

/// Statically measured inter-thread sharing of one program.
///
/// Derived from an [`AddressProfile`] in one pass over its addresses:
///
/// * `pair_shared_refs(a, b)` — the paper's `shared-references(tₐ, t_b)`:
///   references by both threads to their common data addresses
///   (SHARE-REFS, MIN-PRIV metrics),
/// * `pair_write_shared_refs(a, b)` — the same, restricted to
///   *write-shared* addresses (MAX-WRITES, MIN-INVS metrics),
/// * `pair_shared_addrs(a, b)` — the number of common addresses
///   (SHARE-ADDR's refs-per-shared-address denominator),
/// * per-thread aggregates ([`ThreadSharing`]) for MIN-PRIV's private
///   footprint and Table 2's "% shared refs".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingAnalysis {
    pair_refs: SymMatrix<u64>,
    pair_write_refs: SymMatrix<u64>,
    pair_addrs: SymMatrix<u64>,
    per_thread: Vec<ThreadSharing>,
    shared_addresses: u64,
    total_addresses: u64,
}

/// Streaming accumulator behind [`SharingAnalysis`].
///
/// [`record`](Self::record) folds one address's per-thread counts into
/// the matrices; both the serial [`SharingAnalysis::from_profile`] and
/// the sharded [`SharingAnalysis::measure`] drive this same code, so the
/// two paths cannot diverge in accumulation logic. Partial accumulators
/// over disjoint address shards [`merge`](Self::merge) exactly: every
/// field is a commutative `u64` sum.
#[derive(Debug, Clone)]
pub(crate) struct SharingAccum {
    pair_refs: SymMatrix<u64>,
    pair_write_refs: SymMatrix<u64>,
    pair_addrs: SymMatrix<u64>,
    per_thread: Vec<ThreadSharing>,
    shared_addresses: u64,
    total_addresses: u64,
}

impl SharingAccum {
    pub(crate) fn new(threads: usize) -> Self {
        SharingAccum {
            pair_refs: SymMatrix::new(threads, 0u64),
            pair_write_refs: SymMatrix::new(threads, 0u64),
            pair_addrs: SymMatrix::new(threads, 0u64),
            per_thread: vec![ThreadSharing::default(); threads],
            shared_addresses: 0,
            total_addresses: 0,
        }
    }

    /// Folds one address's per-thread counts (sorted by thread id) into
    /// the running totals.
    pub(crate) fn record(&mut self, counts: &[crate::PerThreadCount]) {
        if counts.is_empty() {
            return;
        }
        self.total_addresses += 1;
        if counts.len() >= 2 {
            self.shared_addresses += 1;
            let write_shared = counts.iter().any(|c| c.writes > 0);
            for (k, a) in counts.iter().enumerate() {
                let ts = &mut self.per_thread[a.thread.index()];
                ts.shared_refs += a.total();
                ts.shared_addrs += 1;
                ts.writes_to_shared += a.writes as u64;
                for b in &counts[k + 1..] {
                    let refs = a.total() + b.total();
                    self.pair_refs.add(a.thread.index(), b.thread.index(), refs);
                    self.pair_addrs.add(a.thread.index(), b.thread.index(), 1);
                    if write_shared {
                        self.pair_write_refs
                            .add(a.thread.index(), b.thread.index(), refs);
                    }
                }
            }
        } else {
            let only = &counts[0];
            let ts = &mut self.per_thread[only.thread.index()];
            ts.private_refs += only.total();
            ts.private_addrs += 1;
        }
    }

    /// Sums another shard's partial totals into this one.
    pub(crate) fn merge(&mut self, other: &SharingAccum) {
        self.pair_refs.add_assign(&other.pair_refs);
        self.pair_write_refs.add_assign(&other.pair_write_refs);
        self.pair_addrs.add_assign(&other.pair_addrs);
        for (dst, src) in self.per_thread.iter_mut().zip(&other.per_thread) {
            dst.shared_refs += src.shared_refs;
            dst.private_refs += src.private_refs;
            dst.shared_addrs += src.shared_addrs;
            dst.private_addrs += src.private_addrs;
            dst.writes_to_shared += src.writes_to_shared;
        }
        self.shared_addresses += other.shared_addresses;
        self.total_addresses += other.total_addresses;
    }

    pub(crate) fn finish(self) -> SharingAnalysis {
        SharingAnalysis {
            pair_refs: self.pair_refs,
            pair_write_refs: self.pair_write_refs,
            pair_addrs: self.pair_addrs,
            per_thread: self.per_thread,
            shared_addresses: self.shared_addresses,
            total_addresses: self.total_addresses,
        }
    }
}

/// Sharer-set-grouped accumulator: the fast paths' `record`.
///
/// The paper's workloads concentrate sharing: enormous numbers of
/// addresses have the *same* sharer set (in Gauss, every thread sweeps
/// the whole shared matrix, so thousands of addresses are shared by all
/// 127 threads). [`SharingAccum::record`] pays an O(k²) pairwise matrix
/// update per address; but every one of those updates is *linear* in the
/// per-thread totals (`refs = a.total() + b.total()`, `+1` per common
/// address, write-shared gated on a per-address flag), so addresses with
/// an identical `(sharer list, write-shared)` signature can be summed
/// per sharer first and the pairwise pass run once per *group*. All
/// sums are commutative `u64` additions, so the grouping is exact —
/// `fused_measure_matches_reference` and the differential proptests pin
/// the bit-identity against the ungrouped reference.
pub(crate) struct GroupedAccum {
    base: SharingAccum,
    /// Signature hash → indices into `groups` (collision chains; the
    /// chain is verified element-wise, so hash collisions only cost a
    /// compare, never correctness).
    buckets: FastMap<u64, Vec<u32>>,
    groups: Vec<Group>,
}

/// One sharer-set group: the threads, per-thread running sums, and the
/// number of addresses folded in.
struct Group {
    threads: Vec<u16>,
    write_shared: bool,
    addrs: u64,
    refs: Vec<u64>,
    writes: Vec<u64>,
}

impl GroupedAccum {
    pub(crate) fn new(threads: usize) -> Self {
        GroupedAccum {
            base: SharingAccum::new(threads),
            buckets: FastMap::default(),
            groups: Vec::new(),
        }
    }

    /// Folds one address's per-thread counts (sorted by thread id) into
    /// its sharer-set group; private addresses go straight to the base
    /// accumulator.
    pub(crate) fn record(&mut self, counts: &[crate::PerThreadCount]) {
        if counts.len() < 2 {
            self.base.record(counts);
            return;
        }
        let write_shared = counts.iter().any(|c| c.writes > 0);
        // FNV-1a over the (sorted) thread ids and the write flag.
        let mut sig = 0xcbf2_9ce4_8422_2325u64 ^ write_shared as u64;
        for c in counts {
            sig = (sig ^ c.thread.raw() as u64).wrapping_mul(0x100_0000_01b3);
        }
        let groups = &mut self.groups;
        let chain = self.buckets.entry(sig).or_default();
        let gi = chain
            .iter()
            .copied()
            .find(|&g| {
                let g = &groups[g as usize];
                g.write_shared == write_shared
                    && g.threads.len() == counts.len()
                    && g.threads
                        .iter()
                        .zip(counts)
                        .all(|(&t, c)| t == c.thread.raw())
            })
            .unwrap_or_else(|| {
                let gi = u32::try_from(groups.len()).expect("group count exceeds u32");
                groups.push(Group {
                    threads: counts.iter().map(|c| c.thread.raw()).collect(),
                    write_shared,
                    addrs: 0,
                    refs: vec![0; counts.len()],
                    writes: vec![0; counts.len()],
                });
                chain.push(gi);
                gi
            });
        let g = &mut groups[gi as usize];
        g.addrs += 1;
        for (k, c) in counts.iter().enumerate() {
            g.refs[k] += c.total();
            g.writes[k] += c.writes as u64;
        }
    }

    /// Flushes every group through the pairwise update — once per group
    /// instead of once per address — and returns the plain accumulator.
    pub(crate) fn into_accum(mut self) -> SharingAccum {
        let base = &mut self.base;
        for g in &self.groups {
            base.total_addresses += g.addrs;
            base.shared_addresses += g.addrs;
            for (k, &ti) in g.threads.iter().enumerate() {
                let i = ti as usize;
                let ts = &mut base.per_thread[i];
                ts.shared_refs += g.refs[k];
                ts.shared_addrs += g.addrs;
                ts.writes_to_shared += g.writes[k];
                for (l, &tj) in g.threads.iter().enumerate().skip(k + 1) {
                    let j = tj as usize;
                    let refs = g.refs[k] + g.refs[l];
                    base.pair_refs.add(i, j, refs);
                    base.pair_addrs.add(i, j, g.addrs);
                    if g.write_shared {
                        base.pair_write_refs.add(i, j, refs);
                    }
                }
            }
        }
        self.base
    }
}

impl SharingAnalysis {
    /// Profiles `prog` and computes all sharing metrics.
    ///
    /// This is the fused fast path: the sharded sort-merge scan
    /// ([`crate::shard`]) feeds each address's per-thread counts straight
    /// into per-shard [`GroupedAccum`]s — no intermediate
    /// [`AddressProfile`] map is materialized, and the O(k²) pairwise
    /// update runs once per sharer-set group instead of once per
    /// address. Results are bit-identical to
    /// [`Self::measure_reference`]: every accumulated quantity is an
    /// exact `u64` sum, so neither sharding, nor grouping, nor visit
    /// order can change them.
    pub fn measure(prog: &ProgramTrace) -> Self {
        let threads = prog.thread_count();
        Self::from_grouped_shards(
            threads,
            crate::shard::sharded_scan(
                prog,
                || GroupedAccum::new(threads),
                |acc, _addr, counts| acc.record(counts),
            ),
        )
    }

    /// Computes all sharing metrics from a streaming (v3) trace file
    /// without materializing it: the out-of-core analogue of
    /// [`Self::measure`].
    ///
    /// Stage-1 memory is bounded by `budget` (sorted run segments spill
    /// to disk past the cap, see [`crate::SpillBudget`]); every
    /// accumulated quantity is a commutative sum over per-address
    /// per-thread totals, so the result is bit-identical to
    /// [`Self::measure`] on the decoded trace for *any* budget — the
    /// differential proptests force spill-heavy tiny budgets to pin
    /// this down.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors from the trace file and the
    /// spill files.
    pub fn measure_streamed(
        reader: &placesim_trace::stream::FileReader,
        budget: &crate::SpillBudget,
    ) -> Result<Self, placesim_trace::TraceError> {
        let threads = reader.thread_count();
        Ok(Self::from_grouped_shards(
            threads,
            crate::stream::sharded_scan_streamed(
                reader,
                budget,
                || GroupedAccum::new(threads),
                |acc, _addr, counts| acc.record(counts),
            )?,
        ))
    }

    /// Computes all sharing metrics straight from per-thread access
    /// lists — the fused front end's profile-during-generation path.
    ///
    /// `access[t]` holds thread `t`'s entries, unaggregated (the same
    /// address may recur, e.g. once per run); only per-thread sums
    /// matter, so any split of the same references yields bit-identical
    /// results to [`Self::measure`] on the corresponding trace. The
    /// trace itself is never touched — callers that already hold access
    /// lists (e.g. `generate_with_access` in `placesim-workloads`) skip
    /// the full trace scan entirely.
    pub fn measure_access(access: &[Vec<AddrCounts>]) -> Self {
        let threads = access.len();
        Self::from_grouped_shards(
            threads,
            crate::shard::sharded_scan_access(
                access,
                || GroupedAccum::new(threads),
                |acc, _addr, counts| acc.record(counts),
            ),
        )
    }

    /// Reduces per-shard grouped accumulators to the final analysis.
    fn from_grouped_shards(threads: usize, shards: Vec<GroupedAccum>) -> Self {
        let mut iter = shards.into_iter().map(GroupedAccum::into_accum);
        let mut total = iter.next().unwrap_or_else(|| SharingAccum::new(threads));
        for shard in iter {
            total.merge(&shard);
        }
        total.finish()
    }

    /// The original serial path: build the full [`AddressProfile`], then
    /// derive the metrics from it. Kept as the differential-testing
    /// reference and the old-front-end arm of `bench_pipeline`.
    pub fn measure_reference(prog: &ProgramTrace) -> Self {
        Self::from_profile(&AddressProfile::build(prog))
    }

    /// Computes all sharing metrics from a pre-built profile.
    pub fn from_profile(profile: &AddressProfile) -> Self {
        let mut acc = SharingAccum::new(profile.thread_count());
        for (_addr, pa) in profile.iter() {
            acc.record(pa.counts());
        }
        acc.finish()
    }

    /// Number of threads analyzed.
    pub fn thread_count(&self) -> usize {
        self.per_thread.len()
    }

    /// The paper's `shared-references(tₐ, t_b)`.
    pub fn pair_shared_refs(&self, a: ThreadId, b: ThreadId) -> u64 {
        self.pair_refs.get(a.index(), b.index())
    }

    /// Pairwise shared references restricted to write-shared addresses.
    pub fn pair_write_shared_refs(&self, a: ThreadId, b: ThreadId) -> u64 {
        self.pair_write_refs.get(a.index(), b.index())
    }

    /// Number of data addresses the two threads have in common.
    pub fn pair_shared_addrs(&self, a: ThreadId, b: ThreadId) -> u64 {
        self.pair_addrs.get(a.index(), b.index())
    }

    /// The full pairwise shared-references matrix.
    pub fn pair_refs_matrix(&self) -> &SymMatrix<u64> {
        &self.pair_refs
    }

    /// The full pairwise write-shared-references matrix.
    pub fn pair_write_refs_matrix(&self) -> &SymMatrix<u64> {
        &self.pair_write_refs
    }

    /// The full pairwise common-address-count matrix.
    pub fn pair_addrs_matrix(&self) -> &SymMatrix<u64> {
        &self.pair_addrs
    }

    /// Per-thread aggregates in thread-id order.
    pub fn per_thread(&self) -> &[ThreadSharing] {
        &self.per_thread
    }

    /// Per-thread aggregates for one thread.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn thread(&self, id: ThreadId) -> &ThreadSharing {
        &self.per_thread[id.index()]
    }

    /// Number of distinct shared data addresses in the program.
    pub fn shared_address_count(&self) -> u64 {
        self.shared_addresses
    }

    /// Number of distinct data addresses in the program.
    pub fn total_address_count(&self) -> u64 {
        self.total_addresses
    }

    /// Total statically counted pairwise shared references, summed over
    /// all thread pairs (Table 4's "static" column numerator).
    pub fn total_pairwise_shared_refs(&self) -> u64 {
        self.pair_refs.iter_pairs().map(|(_, _, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef, ThreadTrace};

    /// T0 reads X(0x100) twice and writes private P(0x900).
    /// T1 writes X once and reads Y(0x200).
    /// T2 reads Y twice.
    fn prog() -> ProgramTrace {
        let t0: ThreadTrace = [
            MemRef::read(Address::new(0x100)),
            MemRef::read(Address::new(0x100)),
            MemRef::write(Address::new(0x900)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [
            MemRef::write(Address::new(0x100)),
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        let t2: ThreadTrace = [
            MemRef::read(Address::new(0x200)),
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        ProgramTrace::new("p", vec![t0, t1, t2])
    }

    #[test]
    fn pairwise_shared_refs() {
        let s = SharingAnalysis::measure(&prog());
        let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));
        // X common to T0/T1: 2 + 1 = 3 refs.
        assert_eq!(s.pair_shared_refs(t0, t1), 3);
        // Y common to T1/T2: 1 + 2 = 3 refs.
        assert_eq!(s.pair_shared_refs(t1, t2), 3);
        // T0/T2 share nothing.
        assert_eq!(s.pair_shared_refs(t0, t2), 0);
    }

    #[test]
    fn write_shared_restriction() {
        let s = SharingAnalysis::measure(&prog());
        let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));
        // X is write-shared (T1 writes it); Y is read-only shared.
        assert_eq!(s.pair_write_shared_refs(t0, t1), 3);
        assert_eq!(s.pair_write_shared_refs(t1, t2), 0);
        assert_eq!(s.pair_write_shared_refs(t0, t2), 0);
    }

    #[test]
    fn shared_address_counts() {
        let s = SharingAnalysis::measure(&prog());
        let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));
        assert_eq!(s.pair_shared_addrs(t0, t1), 1);
        assert_eq!(s.pair_shared_addrs(t1, t2), 1);
        assert_eq!(s.pair_shared_addrs(t0, t2), 0);
        assert_eq!(s.shared_address_count(), 2);
        assert_eq!(s.total_address_count(), 3);
    }

    #[test]
    fn per_thread_aggregates() {
        let s = SharingAnalysis::measure(&prog());
        let t0 = s.thread(ThreadId::new(0));
        assert_eq!(t0.shared_refs, 2);
        assert_eq!(t0.private_refs, 1);
        assert_eq!(t0.shared_addrs, 1);
        assert_eq!(t0.private_addrs, 1);
        assert_eq!(t0.writes_to_shared, 0);
        assert!((t0.shared_percent() - 200.0 / 3.0).abs() < 1e-9);
        assert!((t0.refs_per_shared_addr() - 2.0).abs() < 1e-12);

        let t1 = s.thread(ThreadId::new(1));
        assert_eq!(t1.shared_refs, 2);
        assert_eq!(t1.writes_to_shared, 1);
        assert_eq!(t1.private_refs, 0);
    }

    #[test]
    fn totals() {
        let s = SharingAnalysis::measure(&prog());
        assert_eq!(s.total_pairwise_shared_refs(), 6);
        assert_eq!(s.thread_count(), 3);
    }

    #[test]
    fn fused_measure_matches_reference() {
        let p = prog();
        assert_eq!(
            SharingAnalysis::measure(&p),
            SharingAnalysis::measure_reference(&p)
        );
    }

    #[test]
    fn measure_access_matches_trace_measure() {
        // prog() expressed as unaggregated access lists; T0's reads of X
        // are deliberately split across two entries.
        let access = vec![
            vec![
                AddrCounts {
                    addr: 0x100,
                    reads: 1,
                    writes: 0,
                },
                AddrCounts {
                    addr: 0x100,
                    reads: 1,
                    writes: 0,
                },
                AddrCounts {
                    addr: 0x900,
                    reads: 0,
                    writes: 1,
                },
            ],
            vec![
                AddrCounts {
                    addr: 0x100,
                    reads: 0,
                    writes: 1,
                },
                AddrCounts {
                    addr: 0x200,
                    reads: 1,
                    writes: 0,
                },
            ],
            vec![AddrCounts {
                addr: 0x200,
                reads: 2,
                writes: 0,
            }],
        ];
        assert_eq!(
            SharingAnalysis::measure_access(&access),
            SharingAnalysis::measure(&prog())
        );
    }

    #[test]
    fn grouping_splits_on_write_shared_flag() {
        // Two addresses with the same sharer set {T0, T1} but different
        // write-shared flags must land in different groups: only the
        // written one contributes to pair_write_refs.
        let t0: ThreadTrace = [
            MemRef::read(Address::new(0x100)),
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [
            MemRef::write(Address::new(0x100)),
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        let p = ProgramTrace::new("p", vec![t0, t1]);
        let s = SharingAnalysis::measure(&p);
        let (a, b) = (ThreadId::new(0), ThreadId::new(1));
        assert_eq!(s.pair_shared_refs(a, b), 4);
        assert_eq!(s.pair_write_shared_refs(a, b), 2);
        assert_eq!(s.pair_shared_addrs(a, b), 2);
        assert_eq!(s, SharingAnalysis::measure_reference(&p));
    }

    #[test]
    fn empty_thread_sharing_percentages() {
        let ts = ThreadSharing::default();
        assert_eq!(ts.shared_percent(), 0.0);
        assert_eq!(ts.refs_per_shared_addr(), 0.0);
    }
}
