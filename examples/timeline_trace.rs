//! Timeline tracing: run one placement with the cycle-level event
//! timeline enabled, export a Chrome trace-event file (load it at
//! <https://ui.perfetto.dev>), and print the five longest sequential-
//! sharing runs — the paper's §5 observation that write-shared lines
//! are used by one thread at a time for an extended stretch, which is
//! exactly the structure sharing-based placement harvests.
//!
//! ```sh
//! cargo run --release --features obs --example timeline_trace -- water
//! ```
//!
//! Without `--features obs` the hooks compile to nothing and the
//! timeline comes back empty; the example says so instead of failing.

use placesim_repro::prelude::*;

use placesim_repro::analysis::SharingAnalysis;
use placesim_repro::machine::simulate_traced;
use placesim_repro::placement::thread_lengths;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "water".into());
    let spec = spec(&name).ok_or_else(|| format!("unknown application {name}"))?;
    let prog = generate(
        &spec,
        &GenOptions {
            scale: 0.002,
            seed: 13,
        },
    );

    let sharing = SharingAnalysis::measure(&prog);
    let lengths = thread_lengths(&prog);
    let inputs = PlacementInputs::new(&sharing, &lengths);
    let algo = PlacementAlgorithm::ShareRefs;
    let map = algo.place(&inputs, 4)?;

    let (stats, _, trace) = simulate_traced(&prog, &map, &ArchConfig::paper_default(), 1 << 20)?;
    println!(
        "{name}: {} on 4 processors, {} cycles, {} timeline events ({} dropped)",
        algo.paper_name(),
        stats.execution_time(),
        trace.len(),
        trace.dropped()
    );

    if trace.total_recorded() == 0 {
        println!("timeline empty: rebuild with `--features obs` to enable the hooks");
        return Ok(());
    }

    let out = std::env::temp_dir().join(format!("placesim-{name}-timeline.json"));
    std::fs::write(&out, trace.to_chrome_json())?;
    println!(
        "chrome trace written to {} (open in Perfetto)",
        out.display()
    );

    // Rank maximal single-tenant tenures on write-shared lines by length.
    let mut runs = trace.sharing_runs();
    runs.sort_by_key(|r| std::cmp::Reverse(r.cycles()));
    println!("\nlongest sequential-sharing runs ({} total):", runs.len());
    println!(
        "{:>14} {:>7} {:>5} {:>12} {:>12} {:>13}",
        "line", "thread", "proc", "start", "end", "transactions"
    );
    for r in runs.iter().take(5) {
        println!(
            "{:>#14x} {:>7} {:>5} {:>12} {:>12} {:>13}",
            r.line, r.thread, r.processor, r.start_cycle, r.end_cycle, r.transactions
        );
    }
    if let Some(longest) = runs.first() {
        println!(
            "\nT{} held line {:#x} for {} cycles across {} directory\n\
             transactions before another thread touched it: sharing is\n\
             sequential, so co-locating the sharers is cheap.",
            longest.thread,
            longest.line,
            longest.cycles(),
            longest.transactions
        );
    }
    Ok(())
}
