//! The packed, append-only reference trace of a single thread.

use crate::record::{Address, MemRef, RefKind};
use serde::{Deserialize, Serialize};

/// The complete memory-reference trace of one thread.
///
/// References are stored packed (one `u64` each, see [`MemRef::pack`]) so
/// that paper-scale traces (hundreds of thousands to millions of references
/// per thread) stay compact. Counts of each reference kind are maintained
/// incrementally so the common statistics are O(1).
///
/// # Example
///
/// ```
/// use placesim_trace::{Address, MemRef, ThreadTrace};
///
/// let mut trace = ThreadTrace::new();
/// trace.push(MemRef::instr(Address::new(0x400)));
/// trace.push(MemRef::write(Address::new(0x8000)));
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.instr_len(), 1);
/// assert_eq!(trace.write_len(), 1);
/// let kinds: Vec<_> = trace.iter().map(|r| r.kind).collect();
/// assert_eq!(kinds.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadTrace {
    packed: Vec<u64>,
    instr: u64,
    reads: u64,
    writes: u64,
    barriers: u64,
}

impl ThreadTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with capacity for `n` references.
    pub fn with_capacity(n: usize) -> Self {
        ThreadTrace {
            packed: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Appends a reference to the trace.
    #[inline]
    pub fn push(&mut self, r: MemRef) {
        match r.kind {
            RefKind::Instr => self.instr += 1,
            RefKind::Read => self.reads += 1,
            RefKind::Write => self.writes += 1,
            RefKind::Barrier => self.barriers += 1,
        }
        self.packed.push(r.pack());
    }

    /// Appends an instruction fetch. Equivalent to
    /// `push(MemRef::instr(addr))` but monomorphic: no kind dispatch on
    /// the trace-emission hot path.
    #[inline]
    pub fn push_instr(&mut self, addr: Address) {
        self.instr += 1;
        // The instruction tag is 0, so the packed word is the address.
        debug_assert_eq!(RefKind::Instr.to_tag(), 0);
        self.packed.push(addr.raw());
    }

    /// Appends a data reference: a store when `write`, else a load.
    /// Equivalent to pushing `MemRef::write(addr)` / `MemRef::read(addr)`.
    #[inline]
    pub fn push_data(&mut self, addr: Address, write: bool) {
        let kind = if write {
            self.writes += 1;
            RefKind::Write
        } else {
            self.reads += 1;
            RefKind::Read
        };
        self.packed
            .push((kind.to_tag() << Address::MAX_BITS) | addr.raw());
    }

    /// Appends `count` instruction fetches whose addresses cycle through
    /// `period`, starting at phase `start % period.len()` — exactly what
    /// pushing `MemRef::instr(period[(start + k) % len])` for each
    /// `k < count` would produce, but in bulk.
    ///
    /// # Panics
    ///
    /// Panics if `period` is empty or its length is not a power of two
    /// (the cyclic index must be a mask for this to stay on the fast
    /// path).
    pub fn extend_instr_cycle(&mut self, period: &[Address], start: u64, count: u64) {
        assert!(
            !period.is_empty() && period.len().is_power_of_two(),
            "instruction period must be a non-empty power-of-two cycle"
        );
        let mask = (period.len() - 1) as u64;
        self.instr += count;
        // Range + map is a TrustedLen iterator: one reservation, no
        // per-element capacity checks.
        self.packed
            .extend((start..start + count).map(|i| period[(i & mask) as usize].raw()));
    }

    /// Builds a trace from pre-packed words and caller-maintained kind
    /// counts — the bulk-assembly path for emitters that construct the
    /// packed stream with slice copies instead of per-reference pushes.
    ///
    /// Release builds verify only that the counts sum to the word count;
    /// debug builds recount every word. The workload generator's
    /// differential tests pin full equality against the push-based path.
    ///
    /// # Panics
    ///
    /// Panics if the counts do not sum to `packed.len()`, or (debug
    /// builds) if any word is invalid or a per-kind count is wrong.
    pub fn from_packed_counts(
        packed: Vec<u64>,
        instr: u64,
        reads: u64,
        writes: u64,
        barriers: u64,
    ) -> Self {
        assert_eq!(
            packed.len() as u64,
            instr + reads + writes + barriers,
            "kind counts must sum to the packed word count"
        );
        #[cfg(debug_assertions)]
        {
            let check = Self::from_packed(packed.clone()).expect("valid packed references");
            assert_eq!(
                (check.instr, check.reads, check.writes, check.barriers),
                (instr, reads, writes, barriers),
                "per-kind counts disagree with the packed words"
            );
        }
        ThreadTrace {
            packed,
            instr,
            reads,
            writes,
            barriers,
        }
    }

    /// Total number of references (instruction + data).
    #[inline]
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Returns `true` if the trace has no references.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Number of instruction fetches.
    ///
    /// The paper measures *thread length* in instructions; this is that
    /// length.
    #[inline]
    pub fn instr_len(&self) -> u64 {
        self.instr
    }

    /// Number of data loads.
    #[inline]
    pub fn read_len(&self) -> u64 {
        self.reads
    }

    /// Number of data stores.
    #[inline]
    pub fn write_len(&self) -> u64 {
        self.writes
    }

    /// Number of data references (loads + stores).
    #[inline]
    pub fn data_len(&self) -> u64 {
        self.reads + self.writes
    }

    /// Number of barrier records.
    #[inline]
    pub fn barrier_len(&self) -> u64 {
        self.barriers
    }

    /// Iterates over the references in program order.
    pub fn iter(&self) -> ThreadTraceIter<'_> {
        ThreadTraceIter {
            inner: self.packed.iter(),
        }
    }

    /// Returns the reference at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<MemRef> {
        self.packed
            .get(index)
            .map(|&p| MemRef::unpack(p).expect("trace contains only packed MemRefs"))
    }

    /// Borrows the raw packed representation (for zero-copy serialization).
    pub(crate) fn packed(&self) -> &[u64] {
        &self.packed
    }

    /// Rebuilds a trace from raw packed words.
    ///
    /// Used by the deserializer; validates every word.
    pub(crate) fn from_packed(packed: Vec<u64>) -> Result<Self, crate::TraceError> {
        let mut t = ThreadTrace {
            packed: Vec::new(),
            instr: 0,
            reads: 0,
            writes: 0,
            barriers: 0,
        };
        for &word in &packed {
            let r = MemRef::unpack(word).ok_or_else(|| crate::TraceError::Format {
                reason: format!("invalid packed reference {word:#x}"),
            })?;
            match r.kind {
                RefKind::Instr => t.instr += 1,
                RefKind::Read => t.reads += 1,
                RefKind::Write => t.writes += 1,
                RefKind::Barrier => t.barriers += 1,
            }
        }
        t.packed = packed;
        Ok(t)
    }
}

impl FromIterator<MemRef> for ThreadTrace {
    fn from_iter<I: IntoIterator<Item = MemRef>>(iter: I) -> Self {
        let mut t = ThreadTrace::new();
        for r in iter {
            t.push(r);
        }
        t
    }
}

impl Extend<MemRef> for ThreadTrace {
    fn extend<I: IntoIterator<Item = MemRef>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

impl<'a> IntoIterator for &'a ThreadTrace {
    type Item = MemRef;
    type IntoIter = ThreadTraceIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the references of a [`ThreadTrace`], in program order.
#[derive(Debug, Clone)]
pub struct ThreadTraceIter<'a> {
    inner: std::slice::Iter<'a, u64>,
}

impl Iterator for ThreadTraceIter<'_> {
    type Item = MemRef;

    #[inline]
    fn next(&mut self) -> Option<MemRef> {
        self.inner
            .next()
            .map(|&p| MemRef::unpack(p).expect("trace contains only packed MemRefs"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for ThreadTraceIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Address;

    fn sample() -> ThreadTrace {
        let mut t = ThreadTrace::new();
        t.push(MemRef::instr(Address::new(0x100)));
        t.push(MemRef::read(Address::new(0x8000)));
        t.push(MemRef::instr(Address::new(0x104)));
        t.push(MemRef::write(Address::new(0x8000)));
        t.push(MemRef::read(Address::new(0x8040)));
        t
    }

    #[test]
    fn counts_by_kind() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.instr_len(), 2);
        assert_eq!(t.read_len(), 2);
        assert_eq!(t.write_len(), 1);
        assert_eq!(t.data_len(), 3);
        assert!(!t.is_empty());
        assert!(ThreadTrace::new().is_empty());
    }

    #[test]
    fn iteration_preserves_order() {
        let t = sample();
        let refs: Vec<MemRef> = t.iter().collect();
        assert_eq!(refs[0], MemRef::instr(Address::new(0x100)));
        assert_eq!(refs[3], MemRef::write(Address::new(0x8000)));
        assert_eq!(t.iter().len(), 5);
    }

    #[test]
    fn get_in_and_out_of_bounds() {
        let t = sample();
        assert_eq!(t.get(1), Some(MemRef::read(Address::new(0x8000))));
        assert_eq!(t.get(5), None);
    }

    #[test]
    fn from_iterator_and_extend() {
        let refs = [
            MemRef::instr(Address::new(1)),
            MemRef::read(Address::new(2)),
        ];
        let mut t: ThreadTrace = refs.iter().copied().collect();
        assert_eq!(t.len(), 2);
        t.extend([MemRef::write(Address::new(3))]);
        assert_eq!(t.write_len(), 1);
    }

    #[test]
    fn from_packed_accepts_all_kinds() {
        let good = sample().packed().to_vec();
        let rebuilt = ThreadTrace::from_packed(good).unwrap();
        assert_eq!(rebuilt, sample());

        // Tag 3 is a barrier record.
        let barriers = ThreadTrace::from_packed(vec![3u64 << 62]).unwrap();
        assert_eq!(barriers.barrier_len(), 1);
    }

    #[test]
    fn fast_paths_match_push() {
        let mut fast = ThreadTrace::new();
        fast.push_instr(Address::new(0x100));
        fast.push_data(Address::new(0x8000), false);
        fast.push_data(Address::new(0x8000), true);
        let mut slow = ThreadTrace::new();
        slow.push(MemRef::instr(Address::new(0x100)));
        slow.push(MemRef::read(Address::new(0x8000)));
        slow.push(MemRef::write(Address::new(0x8000)));
        assert_eq!(fast, slow);
    }

    #[test]
    fn instr_cycle_matches_pushes() {
        let period: Vec<Address> = (0..4u64).map(|i| Address::new(i * 4)).collect();
        let mut bulk = ThreadTrace::new();
        bulk.extend_instr_cycle(&period, 3, 10);
        let mut slow = ThreadTrace::new();
        for k in 0..10u64 {
            slow.push(MemRef::instr(period[((3 + k) % 4) as usize]));
        }
        assert_eq!(bulk, slow);
        assert_eq!(bulk.instr_len(), 10);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn instr_cycle_rejects_non_power_of_two() {
        let period: Vec<Address> = (0..3u64).map(Address::new).collect();
        ThreadTrace::new().extend_instr_cycle(&period, 0, 1);
    }

    #[test]
    fn from_packed_counts_matches_pushes() {
        let reference = sample();
        let rebuilt = ThreadTrace::from_packed_counts(reference.packed().to_vec(), 2, 2, 1, 0);
        assert_eq!(rebuilt, reference);
    }

    #[test]
    #[should_panic(expected = "sum to the packed word count")]
    fn from_packed_counts_rejects_bad_totals() {
        ThreadTrace::from_packed_counts(sample().packed().to_vec(), 2, 2, 0, 0);
    }

    #[test]
    fn barrier_counting() {
        let mut t = ThreadTrace::new();
        t.push(MemRef::instr(Address::new(0)));
        t.push(MemRef::barrier(0));
        t.push(MemRef::barrier(1));
        assert_eq!(t.barrier_len(), 2);
        assert_eq!(t.instr_len(), 1);
        assert_eq!(t.data_len(), 0);
        assert_eq!(t.len(), 3);
    }
}
