//! Chaos-injection integration suite: a supervised sweep under seeded
//! worker panics, stalls and journal I/O faults must either retry every
//! fault to success or report it as an annotated hole — and the journal
//! on disk must never be left torn.
#![cfg(feature = "chaos")]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use placesim::chaos::ChaosPlan;
use placesim::journal::read_journal;
use placesim::{run_supervised_sweep, PreparedApp, SupervisorConfig};
use placesim_obs::FaultCounters;
use placesim_placement::PlacementAlgorithm;
use placesim_workloads::{spec, GenOptions};

const ALGOS: [PlacementAlgorithm; 2] = [PlacementAlgorithm::Random, PlacementAlgorithm::LoadBal];
const PROCS: [usize; 2] = [2, 4];
const CELLS: u64 = 4;

fn tiny() -> Arc<PreparedApp> {
    Arc::new(PreparedApp::prepare(
        &spec("water").unwrap(),
        &GenOptions {
            scale: 0.002,
            seed: 3,
        },
    ))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("placesim-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The manifest JSON of a fault-free supervised sweep: chaos runs must
/// converge to exactly this, byte for byte.
fn healthy_manifest(app: &Arc<PreparedApp>, dir: &std::path::Path) -> String {
    let path = dir.join("healthy.journal");
    let sweep =
        run_supervised_sweep(app, &ALGOS, &PROCS, &path, false, &SupervisorConfig::new()).unwrap();
    assert!(sweep.is_complete());
    sweep.manifest().to_json()
}

/// Asserts the on-disk journal is pristine: full grid, nothing dropped.
fn assert_journal_clean(path: &std::path::Path) {
    let rec = read_journal(path).unwrap();
    assert_eq!(rec.cells.len(), CELLS as usize, "journal missing cells");
    assert!(
        rec.dropped.is_empty(),
        "journal left torn on disk: {:?}",
        rec.dropped
    );
}

#[test]
fn worker_panics_are_retried_to_identical_results() {
    let dir = tmp_dir("panics");
    let app = tiny();
    let want = healthy_manifest(&app, &dir);

    let path = dir.join("sweep.journal");
    let sup = SupervisorConfig::new()
        .with_max_attempts(3)
        .with_chaos(ChaosPlan::new(7).with_panics(1000));
    let sweep = run_supervised_sweep(&app, &ALGOS, &PROCS, &path, false, &sup).unwrap();

    assert!(sweep.is_complete());
    assert!(sweep.holes.is_empty());
    assert_eq!(sweep.faults.panics, CELLS, "every cell panics once");
    assert_eq!(sweep.faults.retries, CELLS);
    for cell in &sweep.cells {
        assert_eq!(cell.attempts, 2, "cell {} retried exactly once", cell.index);
    }
    assert_eq!(sweep.manifest().to_json(), want);
    assert_journal_clean(&path);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stalled_workers_trip_the_watchdog_and_are_retried() {
    let dir = tmp_dir("stalls");
    let app = tiny();
    let want = healthy_manifest(&app, &dir);

    let path = dir.join("sweep.journal");
    // Every first attempt stalls far past the watchdog; the abandoned
    // worker threads are left to die with the process.
    let sup = SupervisorConfig::new()
        .with_max_attempts(3)
        .with_watchdog(Duration::from_millis(250))
        .with_chaos(ChaosPlan::new(11).with_stalls(1000, 30_000));
    let sweep = run_supervised_sweep(&app, &ALGOS, &PROCS, &path, false, &sup).unwrap();

    assert!(sweep.is_complete());
    assert_eq!(sweep.faults.timeouts, CELLS, "every cell times out once");
    assert_eq!(
        sweep.faults.abandoned, CELLS,
        "every timed-out attempt thread is counted as abandoned"
    );
    for cell in &sweep.cells {
        assert_eq!(cell.attempts, 2);
    }
    assert_eq!(sweep.manifest().to_json(), want);
    assert_journal_clean(&path);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_io_faults_are_absorbed_without_tearing_the_file() {
    let dir = tmp_dir("journal-io");
    let app = tiny();
    let want = healthy_manifest(&app, &dir);

    let path = dir.join("sweep.journal");
    let sup = SupervisorConfig::new().with_chaos(ChaosPlan::new(13).with_journal_faults(1000));
    let sweep = run_supervised_sweep(&app, &ALGOS, &PROCS, &path, false, &sup).unwrap();

    assert!(sweep.is_complete());
    assert!(sweep.holes.is_empty());
    assert_eq!(
        sweep.faults.io_errors, CELLS,
        "every commit faults once (short write or error)"
    );
    // Short writes leave torn bytes mid-commit; the writer must truncate
    // them before retrying, so the settled file recovers cleanly.
    assert_eq!(sweep.manifest().to_json(), want);
    assert_journal_clean(&path);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistent_failure_becomes_a_hole_and_resume_heals_it() {
    let dir = tmp_dir("persistent");
    let app = tiny();
    let want = healthy_manifest(&app, &dir);

    let path = dir.join("sweep.journal");
    let sup = SupervisorConfig::new()
        .with_max_attempts(2)
        .with_chaos(ChaosPlan::new(17).with_persistent_failure(1));
    let sweep = run_supervised_sweep(&app, &ALGOS, &PROCS, &path, false, &sup).unwrap();

    assert!(!sweep.is_complete());
    assert_eq!(sweep.cells.len(), 3, "healthy cells survive the bad one");
    assert_eq!(sweep.holes.len(), 1);
    let hole = &sweep.holes[0];
    assert_eq!(hole.index, 1);
    assert_eq!(hole.attempts, 2, "exhausted the retry budget");
    assert!(hole.reason.contains("panic"), "reason: {}", hole.reason);
    assert_eq!(sweep.faults.panics, 2);

    // The journal holds the three committed cells; resuming without the
    // fault (the operator fixed the crash) fills the hole and converges
    // to the uninterrupted manifest.
    let healed =
        run_supervised_sweep(&app, &ALGOS, &PROCS, &path, true, &SupervisorConfig::new()).unwrap();
    assert_eq!(healed.resumed, 3);
    assert!(healed.is_complete());
    assert_eq!(healed.manifest().to_json(), want);
    assert_journal_clean(&path);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_fault_classes_all_converge() {
    let dir = tmp_dir("mixed");
    let app = tiny();
    let want = healthy_manifest(&app, &dir);

    let path = dir.join("sweep.journal");
    let sup = SupervisorConfig::new().with_max_attempts(3).with_chaos(
        ChaosPlan::new(23)
            .with_panics(1000)
            .with_journal_faults(1000),
    );
    let sweep = run_supervised_sweep(&app, &ALGOS, &PROCS, &path, false, &sup).unwrap();

    assert!(sweep.is_complete());
    assert_eq!(sweep.faults.panics, CELLS);
    assert_eq!(sweep.faults.io_errors, CELLS);
    assert!(sweep.faults.total() > FaultCounters::new().total());
    assert_eq!(sweep.manifest().to_json(), want);
    assert_journal_clean(&path);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backoff_schedule_is_deterministic_and_bounded() {
    use placesim::BackoffPolicy;
    let policy = BackoffPolicy::new(Duration::from_millis(100), Duration::from_secs(2), 42);
    // Attempt 0 (nothing failed yet) never sleeps.
    assert_eq!(policy.delay(0, 0), Duration::ZERO);
    for job in 0..8u64 {
        let mut prev_base = 0u128;
        for failed in 1..=6u32 {
            let d = policy.delay(job, failed);
            let exp = (100u128 << (failed - 1)).min(2000);
            // Exponential base plus jitter in [0, exp/2].
            assert!(
                (exp..=exp + exp / 2).contains(&d.as_millis()),
                "job {job} attempt {failed}: {d:?} outside [{exp}, {}]",
                exp + exp / 2
            );
            assert!(exp >= prev_base, "base must never shrink");
            prev_base = exp;
            // Deterministic: the same (seed, job, attempt) always
            // yields the same delay.
            assert_eq!(d, policy.delay(job, failed));
        }
    }
    // Different seeds jitter differently somewhere in the schedule.
    let other = BackoffPolicy::new(Duration::from_millis(100), Duration::from_secs(2), 43);
    assert!(
        (0..8u64).any(|j| (1..=6u32).any(|a| policy.delay(j, a) != other.delay(j, a))),
        "seed must affect the jitter"
    );
}

#[test]
fn backoff_spaces_chaos_retries_without_changing_results() {
    let dir = tmp_dir("backoff");
    let app = tiny();
    let want = healthy_manifest(&app, &dir);

    let path = dir.join("sweep.journal");
    let policy =
        placesim::BackoffPolicy::new(Duration::from_millis(150), Duration::from_secs(1), 7);
    // Every cell panics once, so every cell sleeps exactly
    // delay(cell, 1) before its successful second attempt.
    let sup = SupervisorConfig::new()
        .with_max_attempts(3)
        .with_backoff(policy.clone())
        .with_chaos(ChaosPlan::new(7).with_panics(1000));
    let started = std::time::Instant::now();
    let sweep = run_supervised_sweep(&app, &ALGOS, &PROCS, &path, false, &sup).unwrap();
    let elapsed = started.elapsed();

    assert!(sweep.is_complete());
    assert_eq!(sweep.faults.retries, CELLS);
    for cell in &sweep.cells {
        assert_eq!(cell.attempts, 2);
    }
    // The attempt schedule is the policy's: every retried cell waited
    // at least its deterministic first-retry delay, so the sweep as a
    // whole cannot beat the smallest of them.
    let min_delay = (0..CELLS).map(|c| policy.delay(c, 1)).min().unwrap();
    assert!(min_delay >= Duration::from_millis(150));
    assert!(
        elapsed >= min_delay,
        "sweep finished in {elapsed:?}, faster than the minimum backoff {min_delay:?}"
    );
    // Backoff delays retries; it must not change what they compute.
    assert_eq!(sweep.manifest().to_json(), want);
    assert_journal_clean(&path);
    std::fs::remove_dir_all(&dir).ok();
}
