//! Regenerates every table and figure of the paper in sequence.

fn main() {
    placesim_bench::print_table1();
    placesim_bench::print_table2();
    placesim_bench::print_table3();
    placesim_bench::print_table4();
    placesim_bench::print_table5();
    placesim_bench::print_exec_time_figure("locusroute", "Figure 2");
    placesim_bench::print_exec_time_figure("fft", "Figure 3");
    placesim_bench::print_exec_time_figure("barnes-hut", "Figure 4");
    placesim_bench::print_miss_components_figure("locusroute");
}
