//! Per-processor set-associative cache with miss-provenance tracking.
//!
//! The paper simulates direct-mapped caches; the cache here generalizes
//! to LRU set-associativity because the paper itself points at it
//! ("Set associative caching would address this [thrashing] problem",
//! §4.1) — associativity > 1 is exercised by the ablation harness.
//!
//! Beyond the tag arrays, the cache remembers *why* every
//! previously-resident line is gone — evicted by which thread, or
//! invalidated by which processor — so the engine can classify each miss
//! into the paper's four components ([`crate::MissKind`]).
//!
//! # Layout
//!
//! Ways live in one flat slab: set `s` occupies
//! `slots[s * assoc .. s * assoc + lens[s]]`, most recently used first.
//! One slab keeps every lookup inside a single allocation (the hot path
//! of the simulation engine), where the earlier `Vec<Vec<Slot>>` layout
//! paid a pointer chase into a separately-allocated set on every
//! reference.
//!
//! # Provenance without a `seen` set
//!
//! Compulsory classification needs "was this line ever resident here?".
//! Tracking that with a dedicated set is redundant: every departure path
//! (eviction, invalidation) records a [`GoneReason`], and every fill
//! removes it, so a non-resident line was previously resident *iff* it
//! has a `gone` entry. A miss therefore classifies with a single map
//! lookup — `None` means compulsory.

use crate::protocol::{Protocol, WriteHit};
use crate::stats::MissKind;
use placesim_placement::ProcessorId;
use placesim_trace::hash::FastMap;
use placesim_trace::ThreadId;

/// Local coherence state of a resident line (Invalid is "not
/// resident"). Which states are reachable depends on the protocol
/// lattice ([`crate::CoherenceProtocol::lattice`]): the paper's
/// write-invalidate machine uses only Shared/Modified; MESI adds
/// Exclusive; Dragon adds SharedDirty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Clean copy, possibly shared with other caches.
    Shared,
    /// Exclusive dirty copy.
    Modified,
    /// Exclusive *clean* copy (MESI's E, Dragon's E): no other cache
    /// holds the line, so a write upgrades to Modified silently.
    Exclusive,
    /// Dragon's Sm: shared with other caches but this copy is the dirty
    /// owner responsible for propagating updates.
    SharedDirty,
}

/// Why a previously-resident line is no longer in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoneReason {
    /// Displaced by a conflicting fill issued by `by`.
    EvictedBy(ThreadId),
    /// Invalidated by a write from processor `by`, on behalf of the
    /// writing thread.
    InvalidatedBy(ProcessorId, ThreadId),
}

/// One cache way.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Resident line address (the full line id).
    line: u64,
    state: LineState,
    /// Last local thread to reference the line (set at fill, refreshed
    /// on every hit). Coherence attribution reads this as the victim
    /// thread when a remote write invalidates or updates the slot.
    owner: ThreadId,
}

/// Outcome of a cache access, before any fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line is resident with sufficient permission.
    Hit,
    /// The line is resident Shared but the access is a write: the
    /// directory must invalidate remote sharers (a coherence *upgrade*).
    UpgradeHit,
    /// Dragon: the line is resident shared and written, so the directory
    /// must propagate a write-update to the remote sharers (the line
    /// stays resident everywhere).
    UpdateHit,
    /// The line is not resident. Classification comes from
    /// [`ProcessorCache::miss_provenance`], which needs the missing
    /// thread's identity.
    Miss {
        /// The LRU line (and its state) this fill will displace, if the
        /// set is full. The engine must send the directory a replacement
        /// hint for it.
        victim: Option<(u64, LineState)>,
    },
}

/// Outcome of a fused [`ProcessorCache::access`]: one set walk, and — on
/// a miss — the provenance classification in the same call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Resident with sufficient permission; LRU order updated.
    Hit,
    /// Resident Shared but written: the directory must invalidate remote
    /// sharers. LRU order updated.
    UpgradeHit,
    /// Dragon: resident shared and written; the directory must send
    /// updates to remote sharers. LRU order updated.
    UpdateHit,
    /// Not resident; classified at lookup time.
    Miss {
        /// The paper's four-way miss classification.
        kind: MissKind,
        /// The invalidating processor, for invalidation misses.
        source: Option<ProcessorId>,
    },
}

/// A set-associative processor cache with LRU replacement
/// (associativity 1 = the paper's direct-mapped configuration).
/// `Clone` exists for the parallel engine's per-window snapshots.
#[derive(Debug, Clone)]
pub struct ProcessorCache {
    /// Flat way slab: set `s` is `slots[s * assoc ..][..lens[s]]`,
    /// MRU first.
    slots: Vec<Slot>,
    /// Occupied ways per set.
    lens: Vec<u32>,
    assoc: usize,
    /// Departure reason of every previously-resident, non-resident line.
    /// Doubles as the "ever seen" record: see the module docs.
    gone: FastMap<u64, GoneReason>,
    set_mask: u64,
    /// Lifetime fill count. Every miss fills exactly once, so this must
    /// equal the engine's miss-taxonomy total (the auditor checks it).
    fills: u64,
    /// Protocol whose hit table classifies write hits. Only the local
    /// (cache-side) half of the protocol lives here; the directory-side
    /// half lives in the engine's miss path.
    protocol: Protocol,
}

impl ProcessorCache {
    /// Creates a direct-mapped write-invalidate cache with `num_sets`
    /// line slots.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two.
    pub fn new(num_sets: u64) -> Self {
        Self::with_associativity(num_sets, 1)
    }

    /// Creates a write-invalidate cache with `num_sets` sets of `assoc`
    /// ways each.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or `assoc` is zero.
    pub fn with_associativity(num_sets: u64, assoc: usize) -> Self {
        Self::with_protocol(num_sets, assoc, Protocol::Wi)
    }

    /// Creates a cache whose write-hit classification follows
    /// `protocol`.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or `assoc` is zero.
    pub fn with_protocol(num_sets: u64, assoc: usize, protocol: Protocol) -> Self {
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(assoc > 0, "associativity must be positive");
        let empty = Slot {
            line: u64::MAX,
            state: LineState::Shared,
            owner: ThreadId::new(0),
        };
        ProcessorCache {
            slots: vec![empty; num_sets as usize * assoc],
            lens: vec![0; num_sets as usize],
            assoc,
            gone: FastMap::default(),
            set_mask: num_sets - 1,
            fills: 0,
            protocol,
        }
    }

    /// The protocol this cache classifies write hits under.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The cache's associativity.
    pub fn associativity(&self) -> usize {
        self.assoc
    }

    #[inline]
    fn set_bounds(&self, line: u64) -> (usize, usize) {
        let idx = (line & self.set_mask) as usize;
        (idx, idx * self.assoc)
    }

    /// One-pass access: classifies a reference to `line`, updates LRU
    /// order on hits, and classifies misses from the departure record in
    /// the same call. This is the simulation engine's hot path; see
    /// [`ProcessorCache::probe`] / [`ProcessorCache::miss_provenance`]
    /// for the split variant the reference engine and unit tests use.
    #[inline]
    pub fn access(&mut self, line: u64, is_write: bool, thread: ThreadId) -> Access {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        let set = &mut self.slots[base..base + len];
        if let Some(pos) = set.iter().position(|s| s.line == line) {
            let mut slot = set[pos];
            set.copy_within(..pos, 1); // MRU to front
            let outcome = if is_write {
                match self.protocol.write_hit(slot.state) {
                    WriteHit::Hit => Access::Hit,
                    WriteHit::Silent(next) => {
                        slot.state = next; // MESI/Dragon E→M, no bus traffic
                        Access::Hit
                    }
                    WriteHit::Upgrade => Access::UpgradeHit,
                    WriteHit::Update => Access::UpdateHit,
                }
            } else {
                Access::Hit
            };
            slot.owner = thread;
            set[0] = slot;
            return outcome;
        }
        let (kind, source) = self.classify_gone(line, thread);
        Access::Miss { kind, source }
    }

    /// Classifies an access to `line` and updates LRU order on hits.
    ///
    /// The engine calls this, performs the directory transaction, then
    /// calls [`ProcessorCache::fill`] (for misses) or relies on
    /// [`ProcessorCache::set_modified`] (for upgrades).
    pub fn probe(&mut self, line: u64, is_write: bool) -> AccessOutcome {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        let set = &mut self.slots[base..base + len];
        if let Some(pos) = set.iter().position(|s| s.line == line) {
            let mut slot = set[pos];
            set.copy_within(..pos, 1); // MRU to front
            let outcome = if is_write {
                match self.protocol.write_hit(slot.state) {
                    WriteHit::Hit => AccessOutcome::Hit,
                    WriteHit::Silent(next) => {
                        slot.state = next; // MESI/Dragon E→M, no bus traffic
                        AccessOutcome::Hit
                    }
                    WriteHit::Upgrade => AccessOutcome::UpgradeHit,
                    WriteHit::Update => AccessOutcome::UpdateHit,
                }
            } else {
                AccessOutcome::Hit
            };
            set[0] = slot;
            return outcome;
        }
        let victim = if len == self.assoc {
            set.last().map(|s| (s.line, s.state))
        } else {
            None
        };
        AccessOutcome::Miss { victim }
    }

    #[inline]
    fn classify_gone(
        &self,
        line: u64,
        missing_thread: ThreadId,
    ) -> (MissKind, Option<ProcessorId>) {
        match self.gone.get(&line) {
            None => (MissKind::Compulsory, None),
            Some(GoneReason::InvalidatedBy(p, _)) => (MissKind::Invalidation, Some(*p)),
            Some(GoneReason::EvictedBy(t)) => {
                if *t == missing_thread {
                    (MissKind::IntraThreadConflict, None)
                } else {
                    (MissKind::InterThreadConflict, None)
                }
            }
        }
    }

    /// Refines a miss classification into the paper's four components
    /// using the provenance recorded at departure time, and returns the
    /// processor that caused an invalidation miss (for the coherence
    /// probe's attribution).
    pub fn miss_provenance(
        &self,
        line: u64,
        missing_thread: ThreadId,
    ) -> (MissKind, Option<ProcessorId>) {
        self.classify_gone(line, missing_thread)
    }

    /// Fills `line` after a miss by `thread`, displacing the LRU way if
    /// the set is full.
    ///
    /// Returns the victim line (already reported by
    /// [`ProcessorCache::probe`]); the victim's departure is recorded as
    /// an eviction by `thread`.
    pub fn fill(
        &mut self,
        line: u64,
        state: LineState,
        thread: ThreadId,
    ) -> Option<(u64, LineState)> {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        debug_assert!(
            self.slots[base..base + len].iter().all(|s| s.line != line),
            "fill of resident line"
        );
        self.fills += 1;
        let victim = if len == self.assoc {
            let lru = self.slots[base + len - 1];
            self.gone.insert(lru.line, GoneReason::EvictedBy(thread));
            Some((lru.line, lru.state))
        } else {
            self.lens[idx] = (len + 1) as u32;
            None
        };
        let occupied = if victim.is_some() { len - 1 } else { len };
        self.slots.copy_within(base..base + occupied, base + 1);
        self.slots[base] = Slot {
            line,
            state,
            owner: thread,
        };
        self.gone.remove(&line);
        victim
    }

    /// Invalidates a resident line (remote write). Records the writing
    /// processor and thread for invalidation-miss attribution.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the line is not resident — the directory's
    /// sharer sets are exact, so spurious invalidations indicate a bug.
    pub fn invalidate(&mut self, line: u64, by: ProcessorId, writer: ThreadId) {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        match self.slots[base..base + len]
            .iter()
            .position(|s| s.line == line)
        {
            Some(pos) => {
                self.slots
                    .copy_within(base + pos + 1..base + len, base + pos);
                self.lens[idx] = (len - 1) as u32;
                self.gone
                    .insert(line, GoneReason::InvalidatedBy(by, writer));
            }
            None => debug_assert!(false, "invalidation for non-resident line {line:#x}"),
        }
    }

    /// Downgrades a resident exclusively-held line after a remote read.
    /// Under the paper's protocol and MESI the line becomes Shared;
    /// under Dragon a Modified owner keeps dirty ownership as
    /// SharedDirty (see [`Protocol::downgrade_target`]).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the line is not resident in an exclusive
    /// state (Modified, or Exclusive under MESI/Dragon).
    pub fn downgrade(&mut self, line: u64) {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        match self.slots[base..base + len]
            .iter_mut()
            .find(|s| s.line == line)
        {
            Some(slot) => {
                debug_assert!(
                    matches!(slot.state, LineState::Modified | LineState::Exclusive),
                    "downgrade of non-exclusive line {line:#x} in state {:?}",
                    slot.state
                );
                slot.state = self.protocol.downgrade_target(slot.state);
            }
            None => debug_assert!(false, "downgrade for non-resident line {line:#x}"),
        }
    }

    /// Applies a remote write-update (Dragon): the line stays resident
    /// and becomes a clean Shared copy. LRU order is *not* touched —
    /// the local processor did not reference the line.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the line is not resident.
    pub fn receive_update(&mut self, line: u64) {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        match self.slots[base..base + len]
            .iter_mut()
            .find(|s| s.line == line)
        {
            Some(slot) => slot.state = LineState::Shared,
            None => debug_assert!(false, "update for non-resident line {line:#x}"),
        }
    }

    /// Marks a resident line SharedDirty (Dragon: after an update the
    /// writer keeps dirty ownership of a still-shared line).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the line is not resident.
    pub fn set_shared_dirty(&mut self, line: u64) {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        match self.slots[base..base + len]
            .iter_mut()
            .find(|s| s.line == line)
        {
            Some(slot) => slot.state = LineState::SharedDirty,
            None => debug_assert!(false, "shared-dirty mark for non-resident line {line:#x}"),
        }
    }

    /// Marks a resident line Modified (after an upgrade's directory
    /// transaction).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the line is not resident.
    pub fn set_modified(&mut self, line: u64) {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        match self.slots[base..base + len]
            .iter_mut()
            .find(|s| s.line == line)
        {
            Some(slot) => slot.state = LineState::Modified,
            None => debug_assert!(false, "upgrade for non-resident line {line:#x}"),
        }
    }

    /// Last local thread to reference a resident line (the victim
    /// thread from an attribution standpoint), if the line is resident.
    pub fn owner_of(&self, line: u64) -> Option<ThreadId> {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        self.slots[base..base + len]
            .iter()
            .find(|s| s.line == line)
            .map(|s| s.owner)
    }

    /// The thread whose remote write invalidated a now-missing line, if
    /// that is why the line left. Read *before* the refill — the fill
    /// clears the departure record.
    pub fn invalidation_writer(&self, line: u64) -> Option<ThreadId> {
        match self.gone.get(&line) {
            Some(GoneReason::InvalidatedBy(_, w)) => Some(*w),
            _ => None,
        }
    }

    /// State of a resident line, if present (for tests).
    pub fn state_of(&self, line: u64) -> Option<LineState> {
        let (idx, base) = self.set_bounds(line);
        let len = self.lens[idx] as usize;
        self.slots[base..base + len]
            .iter()
            .find(|s| s.line == line)
            .map(|s| s.state)
    }

    /// Number of resident lines (for tests).
    pub fn resident_lines(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Lifetime number of line fills (= misses served by this cache).
    pub fn fill_count(&self) -> u64 {
        self.fills
    }

    /// Iterates over every resident `(line, state)` pair, set by set.
    pub fn iter_resident(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        self.lens.iter().enumerate().flat_map(move |(idx, &len)| {
            let base = idx * self.assoc;
            self.slots[base..base + len as usize]
                .iter()
                .map(|s| (s.line, s.state))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> ThreadId {
        ThreadId::new(i)
    }

    fn p(i: usize) -> ProcessorId {
        ProcessorId::from_index(i)
    }

    #[test]
    fn first_access_is_compulsory() {
        let mut c = ProcessorCache::new(8);
        match c.probe(100, false) {
            AccessOutcome::Miss { victim } => assert!(victim.is_none()),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(c.miss_provenance(100, t(0)), (MissKind::Compulsory, None));
    }

    #[test]
    fn fill_then_hit() {
        let mut c = ProcessorCache::new(8);
        c.fill(100, LineState::Shared, t(0));
        assert_eq!(c.probe(100, false), AccessOutcome::Hit);
        assert_eq!(c.state_of(100), Some(LineState::Shared));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn write_to_shared_is_upgrade() {
        let mut c = ProcessorCache::new(8);
        c.fill(100, LineState::Shared, t(0));
        assert_eq!(c.probe(100, true), AccessOutcome::UpgradeHit);
        c.set_modified(100);
        assert_eq!(c.probe(100, true), AccessOutcome::Hit);
    }

    #[test]
    fn conflict_eviction_classifies_by_thread() {
        let mut c = ProcessorCache::new(8);
        // Lines 0 and 8 map to the same set.
        c.fill(0, LineState::Shared, t(0));
        let victim = c.fill(8, LineState::Shared, t(1));
        assert_eq!(victim, Some((0, LineState::Shared)));

        // Line 0 is gone, evicted by thread 1.
        assert_eq!(
            c.miss_provenance(0, t(1)),
            (MissKind::IntraThreadConflict, None)
        );
        assert_eq!(
            c.miss_provenance(0, t(0)),
            (MissKind::InterThreadConflict, None)
        );
        match c.probe(0, false) {
            AccessOutcome::Miss { victim } => {
                assert_eq!(victim, Some((8, LineState::Shared)));
            }
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn invalidation_miss_attributed_to_writer() {
        let mut c = ProcessorCache::new(8);
        c.fill(5, LineState::Shared, t(0));
        assert_eq!(c.owner_of(5), Some(t(0)));
        c.invalidate(5, p(3), t(9));
        let (kind, src) = c.miss_provenance(5, t(0));
        assert_eq!(kind, MissKind::Invalidation);
        assert_eq!(src, Some(p(3)));
        assert_eq!(c.invalidation_writer(5), Some(t(9)));
        assert_eq!(c.owner_of(5), None);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn refill_clears_gone_reason() {
        let mut c = ProcessorCache::new(8);
        c.fill(5, LineState::Shared, t(0));
        c.invalidate(5, p(1), t(4));
        c.fill(5, LineState::Shared, t(0));
        assert_eq!(c.invalidation_writer(5), None, "fill clears provenance");
        assert_eq!(c.probe(5, false), AccessOutcome::Hit);
        // Evict it by conflict now; classification must be conflict, not
        // the stale invalidation.
        c.fill(13, LineState::Shared, t(2));
        assert_eq!(
            c.miss_provenance(5, t(2)),
            (MissKind::IntraThreadConflict, None)
        );
    }

    #[test]
    fn downgrade_preserves_residency() {
        let mut c = ProcessorCache::new(8);
        c.fill(7, LineState::Modified, t(0));
        c.downgrade(7);
        assert_eq!(c.state_of(7), Some(LineState::Shared));
        assert_eq!(c.probe(7, false), AccessOutcome::Hit);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = ProcessorCache::new(6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_associativity_panics() {
        let _ = ProcessorCache::with_associativity(8, 0);
    }

    #[test]
    fn two_way_set_holds_conflicting_pair() {
        // Lines 0 and 8 conflict in a direct-mapped cache of 8 sets; a
        // 2-way cache holds both.
        let mut c = ProcessorCache::with_associativity(8, 2);
        assert_eq!(c.associativity(), 2);
        c.fill(0, LineState::Shared, t(0));
        assert_eq!(c.probe(8, false), AccessOutcome::Miss { victim: None });
        c.fill(8, LineState::Shared, t(0));
        assert_eq!(c.probe(0, false), AccessOutcome::Hit);
        assert_eq!(c.probe(8, false), AccessOutcome::Hit);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ProcessorCache::with_associativity(8, 2);
        c.fill(0, LineState::Shared, t(0));
        c.fill(8, LineState::Shared, t(0));
        // Touch 0 so 8 becomes LRU.
        assert_eq!(c.probe(0, false), AccessOutcome::Hit);
        match c.probe(16, false) {
            AccessOutcome::Miss { victim } => {
                assert_eq!(victim, Some((8, LineState::Shared)));
            }
            other => panic!("expected miss, got {other:?}"),
        }
        let v = c.fill(16, LineState::Shared, t(1));
        assert_eq!(v, Some((8, LineState::Shared)));
        assert_eq!(c.probe(0, false), AccessOutcome::Hit, "MRU line survives");
    }

    #[test]
    fn invalidate_one_way_keeps_others() {
        let mut c = ProcessorCache::with_associativity(8, 2);
        c.fill(0, LineState::Shared, t(0));
        c.fill(8, LineState::Modified, t(0));
        c.invalidate(0, p(1), t(2));
        assert_eq!(c.state_of(0), None);
        assert_eq!(c.state_of(8), Some(LineState::Modified));
    }

    #[test]
    fn fused_access_matches_split_path() {
        // Drive both a fused cache and a probe/provenance cache through
        // the same mixed sequence; classifications and LRU behavior must
        // agree exactly.
        let seq: Vec<(u64, bool, u16)> = vec![
            (0, false, 0),
            (8, false, 1),
            (0, true, 0),
            (16, false, 0),
            (8, false, 1),
            (0, false, 1),
            (24, true, 2),
            (16, false, 2),
        ];
        let mut fused = ProcessorCache::with_associativity(8, 2);
        let mut split = ProcessorCache::with_associativity(8, 2);
        for &(line, is_write, tid) in &seq {
            let a = fused.access(line, is_write, t(tid));
            let b = match split.probe(line, is_write) {
                AccessOutcome::Hit => Access::Hit,
                AccessOutcome::UpgradeHit => Access::UpgradeHit,
                AccessOutcome::UpdateHit => Access::UpdateHit,
                AccessOutcome::Miss { .. } => {
                    let (kind, source) = split.miss_provenance(line, t(tid));
                    Access::Miss { kind, source }
                }
            };
            assert_eq!(a, b, "diverged at line {line:#x}");
            let state = if is_write {
                LineState::Modified
            } else {
                LineState::Shared
            };
            if let Access::Miss { .. } = a {
                fused.fill(line, state, t(tid));
                split.fill(line, state, t(tid));
            } else if a == Access::UpgradeHit {
                fused.set_modified(line);
                split.set_modified(line);
            }
        }
        assert_eq!(fused.resident_lines(), split.resident_lines());
    }

    #[test]
    fn mesi_silent_exclusive_to_modified() {
        let mut c = ProcessorCache::with_protocol(8, 1, Protocol::Mesi);
        c.fill(4, LineState::Exclusive, t(0));
        // Write hit on E upgrades silently — no UpgradeHit, no directory.
        assert_eq!(c.access(4, true, t(0)), Access::Hit);
        assert_eq!(c.state_of(4), Some(LineState::Modified));
        // A write hit on Shared still needs the upgrade transaction.
        c.fill(5, LineState::Shared, t(0));
        assert_eq!(c.access(5, true, t(0)), Access::UpgradeHit);
    }

    #[test]
    fn dragon_update_hit_and_receive_update() {
        let mut writer = ProcessorCache::with_protocol(8, 1, Protocol::Dragon);
        let mut sharer = ProcessorCache::with_protocol(8, 1, Protocol::Dragon);
        writer.fill(4, LineState::Shared, t(0));
        sharer.fill(4, LineState::Shared, t(1));
        // Writing a shared line sends updates instead of invalidations.
        assert_eq!(writer.access(4, true, t(0)), Access::UpdateHit);
        writer.set_shared_dirty(4);
        sharer.receive_update(4);
        assert_eq!(writer.state_of(4), Some(LineState::SharedDirty));
        assert_eq!(sharer.state_of(4), Some(LineState::Shared));
        // The sharer's copy never left: the next read hits.
        assert_eq!(sharer.access(4, false, t(1)), Access::Hit);
        // Writing the SharedDirty copy again is another update.
        assert_eq!(writer.access(4, true, t(0)), Access::UpdateHit);
    }

    #[test]
    fn dragon_downgrade_keeps_dirty_ownership() {
        let mut c = ProcessorCache::with_protocol(8, 1, Protocol::Dragon);
        c.fill(7, LineState::Modified, t(0));
        c.downgrade(7);
        assert_eq!(c.state_of(7), Some(LineState::SharedDirty));
        // An Exclusive (clean) copy downgrades to plain Shared.
        c.fill(9, LineState::Exclusive, t(0));
        c.downgrade(9);
        assert_eq!(c.state_of(9), Some(LineState::Shared));
    }

    #[test]
    fn hit_refreshes_slot_owner() {
        let mut c = ProcessorCache::new(8);
        c.fill(4, LineState::Shared, t(0));
        assert_eq!(c.owner_of(4), Some(t(0)));
        assert_eq!(c.access(4, false, t(3)), Access::Hit);
        assert_eq!(c.owner_of(4), Some(t(3)), "hit hands the slot over");
        assert_eq!(c.owner_of(5), None, "non-resident line has no owner");
    }

    #[test]
    fn wi_protocol_is_the_default() {
        let c = ProcessorCache::new(8);
        assert_eq!(c.protocol(), Protocol::Wi);
        let c = ProcessorCache::with_associativity(8, 2);
        assert_eq!(c.protocol(), Protocol::Wi);
    }

    #[test]
    fn invalidation_then_conflict_uses_latest_reason() {
        // A line invalidated remotely, then the *set* reused by another
        // fill: the first miss after the invalidation classifies as
        // invalidation, and once refilled+evicted, as a conflict.
        let mut c = ProcessorCache::new(8);
        c.fill(3, LineState::Shared, t(0));
        c.invalidate(3, p(2), t(5));
        assert_eq!(
            c.access(3, false, t(0)),
            Access::Miss {
                kind: MissKind::Invalidation,
                source: Some(p(2))
            }
        );
        c.fill(3, LineState::Shared, t(0));
        c.fill(11, LineState::Shared, t(1)); // evicts 3
        assert_eq!(
            c.access(3, false, t(0)),
            Access::Miss {
                kind: MissKind::InterThreadConflict,
                source: None
            }
        );
    }
}
