//! Sharded, sort-based address scanning: the fast path behind
//! [`crate::AddressProfile::build_parallel`],
//! [`crate::SharingAnalysis::measure`] and
//! [`crate::SharingAnalysis::measure_access`].
//!
//! The original profiling pass probes one *global* map — whose values
//! are per-address sharer vectors — once per memory reference. This
//! module replaces that with a three-stage pipeline that does almost all
//! of its work on *distinct* (thread, address) pairs instead:
//!
//! 1. **Run extraction** (parallel over threads): each thread's data
//!    references fold into a small thread-local map of
//!    `addr → (reads, writes)`. Traces are run-structured (many
//!    consecutive references to one address), so a last-address memo
//!    turns the common case into a single compare — most references
//!    never touch the map at all. The distinct entries are then sorted
//!    by address, once, per thread.
//! 2. **Splitter selection**: a small sample of addresses from every
//!    thread picks quantile cut points so shards carry comparable work.
//! 3. **K-way merge** (parallel over shards): per shard, a binary heap
//!    merges the threads' run slices in `(addr, thread)` order, so each
//!    address surfaces once with its per-thread counts already sorted by
//!    thread id — exactly the [`crate::PerAddress`] invariant.
//!
//! Shard results are combined by the caller; all downstream accumulation
//! is commutative `u64` addition, so shard order cannot change results.

use crate::profile::PerThreadCount;
use placesim_trace::hash::FastMap;
use placesim_trace::par::{max_workers, parallel_map};
use placesim_trace::{AddrCounts, ProgramTrace, ThreadId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-thread addresses sampled for splitter selection. 32 keeps the
/// sample tiny while bounding shard skew to a few percent of a thread.
const SAMPLES_PER_THREAD: usize = 32;

/// Extracts each thread's address-sorted `(addr, reads, writes)` runs.
fn extract_runs(prog: &ProgramTrace) -> Vec<Vec<AddrCounts>> {
    let tids: Vec<ThreadId> = (0..prog.thread_count())
        .map(|i| ThreadId::new(i as u16))
        .collect();
    parallel_map(&tids, |&tid| {
        let mut runs: Vec<AddrCounts> = Vec::new();
        let mut index: FastMap<u64, u32> = FastMap::default();
        // Memo for the run-structured common case: a reference to the
        // same address as its predecessor costs one compare.
        let mut last: Option<(u64, usize)> = None;
        for r in prog.thread(tid).iter() {
            if !r.kind.is_data() {
                continue;
            }
            let addr = r.addr.raw();
            let slot = match last {
                Some((a, slot)) if a == addr => slot,
                _ => {
                    let slot = *index.entry(addr).or_insert_with(|| {
                        runs.push(AddrCounts::new(addr));
                        (runs.len() - 1) as u32
                    }) as usize;
                    last = Some((addr, slot));
                    slot
                }
            };
            runs[slot].bump(r.kind.is_write());
        }
        runs.sort_unstable_by_key(|run| run.addr);
        runs
    })
}

/// Folds one thread's unaggregated access entries (an address may recur,
/// once per run) into address-sorted distinct-address counts.
fn aggregate_access(entries: &[AddrCounts]) -> Vec<AddrCounts> {
    let mut runs: Vec<AddrCounts> = Vec::new();
    let mut index: FastMap<u64, u32> = FastMap::default();
    for e in entries {
        let slot = *index.entry(e.addr).or_insert_with(|| {
            runs.push(AddrCounts::new(e.addr));
            (runs.len() - 1) as u32
        }) as usize;
        runs[slot].reads += e.reads;
        runs[slot].writes += e.writes;
    }
    runs.sort_unstable_by_key(|run| run.addr);
    runs
}

/// Picks up to `shards - 1` address cut points from evenly spaced
/// samples of every thread's runs. Returned cuts are strictly
/// increasing; fewer cuts (down to none) simply mean fewer shards.
fn splitters(runs: &[Vec<AddrCounts>], shards: usize) -> Vec<u64> {
    if shards <= 1 {
        return Vec::new();
    }
    let mut samples: Vec<u64> = Vec::new();
    for thread_runs in runs {
        let take = thread_runs.len().min(SAMPLES_PER_THREAD);
        for k in 0..take {
            samples.push(thread_runs[k * thread_runs.len() / take].addr);
        }
    }
    samples.sort_unstable();
    samples.dedup();
    if samples.is_empty() {
        return Vec::new();
    }
    let mut cuts: Vec<u64> = (1..shards)
        .map(|s| samples[(s * samples.len() / shards).min(samples.len() - 1)])
        .collect();
    cuts.dedup();
    cuts
}

/// Merges every thread's runs within `[lo, hi)` (`None` = unbounded) in
/// ascending address order, invoking `visit` once per address with the
/// per-thread counts sorted by thread id.
fn merge_shard<A>(
    runs: &[Vec<AddrCounts>],
    lo: Option<u64>,
    hi: Option<u64>,
    acc: &mut A,
    visit: &impl Fn(&mut A, u64, &[PerThreadCount]),
) {
    // Heap keys are (addr, thread, run index); ties on addr pop in
    // thread order, which is what keeps counts sorted without a sort.
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    let mut ends: Vec<usize> = Vec::with_capacity(runs.len());
    for (t, thread_runs) in runs.iter().enumerate() {
        let start = lo.map_or(0, |l| thread_runs.partition_point(|r| r.addr < l));
        let end = hi.map_or(thread_runs.len(), |h| {
            thread_runs.partition_point(|r| r.addr < h)
        });
        if start < end {
            heap.push(Reverse((thread_runs[start].addr, t, start)));
        }
        ends.push(end);
    }
    let mut counts: Vec<PerThreadCount> = Vec::new();
    while let Some(&Reverse((addr, _, _))) = heap.peek() {
        counts.clear();
        while let Some(&Reverse((a, t, i))) = heap.peek() {
            if a != addr {
                break;
            }
            heap.pop();
            let run = runs[t][i];
            counts.push(PerThreadCount {
                thread: ThreadId::new(t as u16),
                reads: run.reads,
                writes: run.writes,
            });
            if i + 1 < ends[t] {
                heap.push(Reverse((runs[t][i + 1].addr, t, i + 1)));
            }
        }
        visit(acc, addr, &counts);
    }
}

/// Scans every distinct data address of `prog` exactly once, in parallel
/// over disjoint address shards.
///
/// For each shard a fresh accumulator comes from `init`; `visit` sees
/// every address in that shard (ascending) with its per-thread counts in
/// thread-id order; the per-shard accumulators are returned for the
/// caller to reduce. Address shards partition the address space, so any
/// commutative reduction is independent of shard count and order.
pub(crate) fn sharded_scan<A, I, V>(prog: &ProgramTrace, init: I, visit: V) -> Vec<A>
where
    A: Send + Sync,
    I: Fn() -> A + Sync,
    V: Fn(&mut A, u64, &[PerThreadCount]) + Sync,
{
    sharded_scan_runs(&extract_runs(prog), init, visit)
}

/// [`sharded_scan`] over pre-extracted access lists instead of a trace:
/// the fused front end hands the emitter's per-thread run entries
/// straight here, skipping the trace re-scan entirely.
pub(crate) fn sharded_scan_access<A, I, V>(access: &[Vec<AddrCounts>], init: I, visit: V) -> Vec<A>
where
    A: Send + Sync,
    I: Fn() -> A + Sync,
    V: Fn(&mut A, u64, &[PerThreadCount]) + Sync,
{
    let runs = parallel_map(access, |entries| aggregate_access(entries));
    sharded_scan_runs(&runs, init, visit)
}

/// Shared back half: splitter selection plus the per-shard k-way merge.
fn sharded_scan_runs<A, I, V>(runs: &[Vec<AddrCounts>], init: I, visit: V) -> Vec<A>
where
    A: Send + Sync,
    I: Fn() -> A + Sync,
    V: Fn(&mut A, u64, &[PerThreadCount]) + Sync,
{
    // Two shards per worker evens out skewed address distributions
    // without flooding the heap merge with tiny ranges.
    let cuts = splitters(runs, max_workers().saturating_mul(2).max(1));
    let mut bounds: Vec<(Option<u64>, Option<u64>)> = Vec::with_capacity(cuts.len() + 1);
    let mut prev: Option<u64> = None;
    for &c in &cuts {
        bounds.push((prev, Some(c)));
        prev = Some(c);
    }
    bounds.push((prev, None));
    parallel_map(&bounds, |&(lo, hi)| {
        let mut acc = init();
        merge_shard(runs, lo, hi, &mut acc, &visit);
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef, ThreadTrace};

    fn prog() -> ProgramTrace {
        let t0: ThreadTrace = [
            MemRef::read(Address::new(0x100)),
            MemRef::read(Address::new(0x100)),
            MemRef::write(Address::new(0x900)),
            MemRef::instr(Address::new(0x4)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [
            MemRef::write(Address::new(0x100)),
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        ProgramTrace::new("p", vec![t0, t1])
    }

    #[test]
    fn scan_visits_every_address_once_in_thread_order() {
        let shards = sharded_scan(
            &prog(),
            Vec::new,
            |acc: &mut Vec<(u64, usize)>, addr, counts| {
                assert!(counts.windows(2).all(|w| w[0].thread < w[1].thread));
                acc.push((addr, counts.len()));
            },
        );
        let mut seen: Vec<(u64, usize)> = shards.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0x100, 2), (0x200, 1), (0x900, 1)]);
    }

    #[test]
    fn run_extraction_aggregates_reads_and_writes() {
        let runs = extract_runs(&prog());
        // Thread 0: 0x100 twice read, 0x900 one write; instr excluded.
        assert_eq!(runs[0].len(), 2);
        assert_eq!(runs[0][0].addr, 0x100);
        assert_eq!(runs[0][0].reads, 2);
        assert_eq!(runs[0][0].writes, 0);
        assert_eq!(runs[0][1].addr, 0x900);
        assert_eq!(runs[0][1].writes, 1);
    }

    #[test]
    fn access_scan_matches_trace_scan() {
        // The same references expressed as unaggregated access entries
        // (0x100 recurs in thread 0's list, as two runs would leave it).
        let access = vec![
            vec![
                AddrCounts {
                    addr: 0x100,
                    reads: 1,
                    writes: 0,
                },
                AddrCounts {
                    addr: 0x900,
                    reads: 0,
                    writes: 1,
                },
                AddrCounts {
                    addr: 0x100,
                    reads: 1,
                    writes: 0,
                },
            ],
            vec![
                AddrCounts {
                    addr: 0x100,
                    reads: 0,
                    writes: 1,
                },
                AddrCounts {
                    addr: 0x200,
                    reads: 1,
                    writes: 0,
                },
            ],
        ];
        let collect =
            |acc: &mut Vec<(u64, u32, u32, usize)>, addr: u64, counts: &[PerThreadCount]| {
                for c in counts {
                    acc.push((addr, c.reads, c.writes, c.thread.index()));
                }
            };
        let mut from_access: Vec<_> = sharded_scan_access(&access, Vec::new, collect)
            .into_iter()
            .flatten()
            .collect();
        let mut from_trace: Vec<_> = sharded_scan(&prog(), Vec::new, collect)
            .into_iter()
            .flatten()
            .collect();
        from_access.sort_unstable();
        from_trace.sort_unstable();
        assert_eq!(from_access, from_trace);
    }

    #[test]
    fn splitters_are_strictly_increasing() {
        let runs = extract_runs(&prog());
        let cuts = splitters(&runs, 8);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_program_yields_no_addresses() {
        let prog = ProgramTrace::new("empty", vec![ThreadTrace::new()]);
        let shards = sharded_scan(&prog, || 0usize, |n, _, _| *n += 1);
        assert_eq!(shards.into_iter().sum::<usize>(), 0);
    }
}
