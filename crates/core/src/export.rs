//! CSV export of figures, tables and grid sweeps.
//!
//! The bench binaries print paper-styled text tables; these helpers emit
//! the same data as RFC-4180 CSV for plotting pipelines.

use crate::figures::{ExecTimeFigure, MissComponentsFigure};
use placesim_machine::MissKind;

/// Escapes one CSV field (quotes when needed).
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Renders a header row plus data rows as CSV text.
pub fn to_csv<H, R, C>(headers: H, rows: R) -> String
where
    H: IntoIterator,
    H::Item: AsRef<str>,
    R: IntoIterator<Item = C>,
    C: IntoIterator,
    C::Item: AsRef<str>,
{
    let mut out = String::new();
    let header: Vec<String> = headers.into_iter().map(|h| csv_field(h.as_ref())).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.into_iter().map(|c| csv_field(c.as_ref())).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

impl ExecTimeFigure {
    /// Long-format CSV: `app,algorithm,processors,raw_cycles,normalized`.
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (a, algo) in self.algorithms.iter().enumerate() {
            for (p, &procs) in self.processor_counts.iter().enumerate() {
                rows.push(vec![
                    self.app.clone(),
                    algo.paper_name().to_owned(),
                    procs.to_string(),
                    self.raw[a][p].to_string(),
                    format!("{:.6}", self.normalized[a][p]),
                ]);
            }
        }
        to_csv(
            ["app", "algorithm", "processors", "raw_cycles", "normalized"],
            rows,
        )
    }
}

impl MissComponentsFigure {
    /// Long-format CSV: one row per (algorithm, processors, miss kind).
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (a, algo) in self.algorithms.iter().enumerate() {
            for (p, &procs) in self.processor_counts.iter().enumerate() {
                for kind in MissKind::ALL {
                    rows.push(vec![
                        self.app.clone(),
                        algo.paper_name().to_owned(),
                        procs.to_string(),
                        kind.label().to_owned(),
                        self.breakdown[a][p].get(kind).to_string(),
                    ]);
                }
            }
        }
        to_csv(
            ["app", "algorithm", "processors", "miss_kind", "count"],
            rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PreparedApp;
    use crate::figures::{exec_time_figure, miss_components_figure};
    use placesim_placement::PlacementAlgorithm;
    use placesim_workloads::{spec, GenOptions};

    #[test]
    fn field_escaping() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn generic_to_csv() {
        let csv = to_csv(["x", "y"], vec![vec!["1", "2"], vec!["a,b", "3"]]);
        assert_eq!(csv, "x,y\n1,2\n\"a,b\",3\n");
    }

    #[test]
    fn figure_csv_shapes() {
        let app = PreparedApp::prepare(
            &spec("water").unwrap(),
            &GenOptions {
                scale: 0.002,
                seed: 4,
            },
        );
        let fig = exec_time_figure(&app, &[2, 4]).unwrap();
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "app,algorithm,processors,raw_cycles,normalized");
        // 14 static algorithms x 2 processor counts.
        assert_eq!(lines.len(), 1 + 14 * 2);
        assert!(lines[1].starts_with("water,SHARE-REFS,2,"));

        let algos = [PlacementAlgorithm::Random];
        let mfig = miss_components_figure(&app, &[2], &algos).unwrap();
        let mcsv = mfig.to_csv();
        assert_eq!(mcsv.lines().count(), 1 + 4);
        assert!(mcsv.contains("inter-thread conflict"));
    }
}
