//! Regenerates the paper's Figure 5: cache-miss components across
//! placement algorithms and machine configurations.

fn main() {
    placesim_bench::print_miss_components_figure("locusroute");
}
