//! The supervised sweep runner: per-cell fault isolation, watchdog
//! timeouts, bounded retries, and checkpoint/resume through the
//! [`crate::journal`].
//!
//! [`run_supervised_sweep`] turns the all-or-nothing grid of
//! [`crate::run_sweep`] into a small job scheduler. Every grid cell
//! (algorithm × processor count) runs as an isolated attempt on its own
//! worker thread: a panic is caught and classified, a wedged simulation
//! is abandoned when the wall-clock watchdog fires, and both are
//! retried a bounded number of times before the cell degrades into an
//! annotated **hole**. Deterministic failures (typed placement or
//! simulation errors) are never retried — re-running them would produce
//! the same error. Each success is durably committed to the journal
//! *before* the cell is reported done, so a crash at any instant loses
//! at most the cells still in flight; resuming from the journal skips
//! every committed cell and reproduces the uninterrupted run's entries
//! bit-identically.

use crate::error::Error;
use crate::experiment::{run_placement, run_placement_attributed, PreparedApp};
use crate::journal::{DroppedLine, JournalCell, JournalError, JournalHeader, JournalWriter};
use crate::manifest::{ManifestEntry, RunManifest};
use placesim_machine::{AttrCollector, AttributionConfig};
use placesim_obs::json::JsonWriter;
use placesim_obs::{sink, FaultCounters};
use placesim_placement::PlacementAlgorithm;
use placesim_trace::par::{
    max_workers, panic_payload_summary, parallel_map_isolated_bounded, sim_workers,
    split_worker_budget, CancelToken, IsolatedOutcome,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Exponential retry backoff with deterministic, seeded jitter.
///
/// The delay before retry attempt `n` (1-based count of failures so
/// far) is `min(cap, base · 2^(n-1))` plus a jitter drawn uniformly
/// from `[0, delay/2]` — but the "draw" is a pure splitmix64 hash of
/// `(seed, job, n)`, so the whole schedule is a deterministic function
/// of the policy and the job: chaos tests can assert it exactly, and
/// two supervisors with the same seed de-synchronize their retries
/// per-job instead of stampeding together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffPolicy {
    base: Duration,
    cap: Duration,
    seed: u64,
}

impl BackoffPolicy {
    /// A policy backing off from `base` doubling up to `cap`, with
    /// jitter seeded by `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        BackoffPolicy { base, cap, seed }
    }

    /// The delay before the next attempt of `job`, after
    /// `failed_attempts` failures (so the first retry passes 1).
    /// `failed_attempts == 0` means nothing failed yet: zero delay.
    pub fn delay(&self, job: u64, failed_attempts: u32) -> Duration {
        if failed_attempts == 0 {
            return Duration::ZERO;
        }
        let base_ms = self.base.as_millis().min(u128::from(u64::MAX)) as u64;
        let cap_ms = self.cap.as_millis().min(u128::from(u64::MAX)) as u64;
        // 2^(n-1) with the shift clamped so a huge attempt count
        // saturates at the cap instead of overflowing.
        let exp = base_ms
            .saturating_mul(1u64 << u64::from(failed_attempts - 1).min(32))
            .min(cap_ms);
        let jitter = splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(job << 8)
                .wrapping_add(u64::from(failed_attempts)),
        ) % (exp / 2 + 1);
        Duration::from_millis(exp + jitter)
    }
}

/// The splitmix64 finalizer: avalanches a combined key into a uniform
/// 64-bit value. Shared by the backoff jitter and (in spirit) the
/// chaos plan's fault rolls.
fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Supervision policy for a sweep.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Maximum attempts per cell (0 is treated as 1). Deterministic
    /// errors are never retried regardless.
    pub max_attempts: u32,
    /// Wall-clock budget per attempt; `None` disables the watchdog. A
    /// timed-out attempt's thread is abandoned (detached), not joined —
    /// a wedged simulation cannot wedge the supervisor.
    pub watchdog: Option<Duration>,
    /// Attribute every cell's coherence events and fold the per-cell
    /// collectors into a sweep-level [`AttrCollector`]
    /// ([`SupervisedSweep::attribution`]).
    pub attribution: Option<AttributionConfig>,
    /// Live progress file ([`TELEMETRY_SCHEMA`]): atomically rewritten
    /// after every cell event — commit, hole, retry — with cells
    /// done/failed/retried, the sweep's refs/sec, and (when attribution
    /// is on) the current hottest addresses. Best-effort: an unwritable
    /// telemetry path never fails the sweep.
    pub telemetry: Option<PathBuf>,
    /// Delay schedule between retry attempts; `None` retries
    /// immediately (the historical behavior).
    pub backoff: Option<BackoffPolicy>,
    /// Fault-injection plan for chaos testing.
    #[cfg(feature = "chaos")]
    pub chaos: Option<crate::chaos::ChaosPlan>,
}

impl SupervisorConfig {
    /// The default policy: 3 attempts per cell, no watchdog.
    pub fn new() -> Self {
        SupervisorConfig {
            max_attempts: 3,
            watchdog: None,
            attribution: None,
            telemetry: None,
            backoff: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// Sets the per-cell attempt bound.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Sets the per-attempt wall-clock watchdog.
    pub fn with_watchdog(mut self, budget: Duration) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// Turns on per-cell coherence attribution with the given sizing.
    pub fn with_attribution(mut self, acfg: AttributionConfig) -> Self {
        self.attribution = Some(acfg);
        self
    }

    /// Sets the live-telemetry output path.
    pub fn with_telemetry(mut self, path: PathBuf) -> Self {
        self.telemetry = Some(path);
        self
    }

    /// Spaces retries out on an exponential-with-jitter schedule
    /// instead of re-attempting immediately.
    pub fn with_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = Some(policy);
        self
    }

    /// Arms a chaos fault-injection plan.
    #[cfg(feature = "chaos")]
    pub fn with_chaos(mut self, plan: crate::chaos::ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    fn attempt_bound(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// A grid cell that failed permanently: every attempt was exhausted (or
/// the failure was deterministic). The rest of the sweep is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepHole {
    /// Cell index in algorithm-major grid order.
    pub index: usize,
    /// Algorithm of the failed cell (paper name).
    pub algorithm: String,
    /// Processor count of the failed cell.
    pub processors: usize,
    /// Attempts spent before giving up.
    pub attempts: u32,
    /// What went wrong on the final attempt.
    pub reason: String,
}

/// The outcome of a supervised sweep: every committed cell (old and
/// new), every hole, and the fault accounting.
#[derive(Debug)]
pub struct SupervisedSweep {
    /// The sweep's grid, as recorded in the journal header.
    pub header: JournalHeader,
    /// Committed cells in grid-index order. On a healthy sweep this
    /// covers the whole grid.
    pub cells: Vec<JournalCell>,
    /// Cells that failed permanently, in grid-index order.
    pub holes: Vec<SweepHole>,
    /// Journal lines dropped during resume recovery (empty for a fresh
    /// run or a pristine journal).
    pub dropped: Vec<DroppedLine>,
    /// Faults absorbed along the way: panics, timeouts, deterministic
    /// errors, journal I/O errors and retries.
    pub faults: FaultCounters,
    /// Cells skipped because the journal had already committed them.
    pub resumed: usize,
    /// Sweep-level coherence attribution: every committed cell's
    /// collector merged in commit order. `Some` exactly when
    /// [`SupervisorConfig::attribution`] was set (resumed cells were
    /// attributed by the run that committed them and are not re-run, so
    /// their events are absent — the totals cover this run's cells).
    pub attribution: Option<AttrCollector>,
}

impl SupervisedSweep {
    /// `true` when every grid cell committed (no holes).
    pub fn is_complete(&self) -> bool {
        self.holes.is_empty() && self.cells.len() == self.header.cell_count()
    }

    /// The committed cells as a [`RunManifest`], entries in grid-index
    /// order. Identical grids produce identical manifests whether the
    /// sweep ran uninterrupted or was killed and resumed — the basis of
    /// the bit-identical-resume guarantee (the manifest's `wall_secs`
    /// is left at zero: wall time is not reproducible and is excluded
    /// from report output anyway).
    pub fn manifest(&self) -> RunManifest {
        let mut m = RunManifest::new("sweep", &self.header.app, &self.header.config);
        m.scale = Some(self.header.scale);
        m.seed = Some(self.header.seed);
        m.entries = self.cells.iter().map(|c| c.entry.clone()).collect();
        m
    }
}

/// Builds the journal header describing `app`'s sweep over
/// `algorithms` × `processors`.
pub fn sweep_header(
    app: &PreparedApp,
    algorithms: &[PlacementAlgorithm],
    processors: &[usize],
) -> JournalHeader {
    JournalHeader {
        app: app.spec.name.to_owned(),
        scale: app.gen.scale,
        seed: app.gen.seed,
        config: app.config,
        algorithms: algorithms
            .iter()
            .map(|a| a.paper_name().to_owned())
            .collect(),
        processors: processors.to_vec(),
    }
}

/// Schema tag stamped into every telemetry document; bump on layout
/// changes.
pub const TELEMETRY_SCHEMA: &str = "placesim-telemetry-v1";

/// How many hot addresses the telemetry document carries.
const TELEMETRY_TOP: usize = 10;

/// Shared live-progress state: cell counters, throughput accounting and
/// the sweep-level attribution merge. One lock, taken briefly after
/// each cell event; the telemetry rewrite happens under it so documents
/// are always internally consistent.
struct SweepMonitor {
    path: Option<PathBuf>,
    app: String,
    total: usize,
    resumed: usize,
    done: usize,
    failed: usize,
    retries: u64,
    refs: u64,
    started: Instant,
    attr: Option<AttrCollector>,
}

impl SweepMonitor {
    fn new(sup: &SupervisorConfig, header: &JournalHeader, resumed: usize) -> Self {
        SweepMonitor {
            path: sup.telemetry.clone(),
            app: header.app.clone(),
            total: header.cell_count(),
            resumed,
            done: 0,
            failed: 0,
            retries: 0,
            refs: 0,
            started: Instant::now(),
            attr: sup.attribution.map(AttrCollector::new),
        }
    }

    fn record_done(&mut self, entry: &ManifestEntry, attr: Option<Box<AttrCollector>>) {
        self.done += 1;
        self.refs += entry.total_refs;
        if let (Some(merged), Some(cell)) = (&mut self.attr, attr) {
            merged.merge(*cell);
        }
        self.rewrite();
    }

    fn record_failed(&mut self) {
        self.failed += 1;
        self.rewrite();
    }

    fn record_retry(&mut self) {
        self.retries += 1;
        self.rewrite();
    }

    /// Atomically rewrites the telemetry file. Best-effort by design:
    /// telemetry is advisory, so an unwritable path degrades to silence
    /// rather than failing (or retrying inside) the sweep.
    fn rewrite(&self) {
        let Some(path) = &self.path else { return };
        let _ = sink::write_atomic(path, self.to_json().as_bytes());
    }

    fn to_json(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", TELEMETRY_SCHEMA);
        w.field_str("app", &self.app);
        w.field_u64("cells_total", self.total as u64);
        w.field_u64("cells_resumed", self.resumed as u64);
        w.field_u64("cells_done", (self.resumed + self.done) as u64);
        w.field_u64("cells_failed", self.failed as u64);
        w.field_u64("retries", self.retries);
        w.field_u64("refs_simulated", self.refs);
        w.field_f64("elapsed_secs", elapsed);
        w.field_f64(
            "refs_per_sec",
            if elapsed > 0.0 {
                // Precision loss is fine for a human-facing rate.
                #[allow(clippy::cast_precision_loss)]
                {
                    self.refs as f64 / elapsed
                }
            } else {
                0.0
            },
        );
        w.key("attribution");
        match &self.attr {
            None => w.value_null(),
            Some(attr) => {
                w.begin_object();
                w.field_str("mode", if attr.is_sketch() { "sketch" } else { "exact" });
                w.field_u64("tracked_addresses", attr.tracked_addresses() as u64);
                w.field_u64("error_bound", attr.error_bound());
                w.field_u64("events", attr.total_events());
                w.key("top");
                w.begin_array();
                for (line, events, _) in attr.top_addresses(TELEMETRY_TOP) {
                    w.begin_object();
                    w.field_u64("line", line);
                    w.field_u64("events", events);
                    w.end_object();
                }
                w.end_array();
                w.end_object();
            }
        }
        w.end_object();
        w.finish()
    }
}

/// What one supervised attempt produced.
enum Attempt {
    /// Success: the entry, plus the cell's collector when attribution
    /// was requested (boxed — the collector dwarfs the other variants).
    Done(ManifestEntry, Option<Box<AttrCollector>>),
    /// A typed (deterministic) placement/simulation error.
    Failed(String),
    /// The attempt panicked; payload already summarized.
    Panicked(String),
    /// The watchdog fired; the attempt thread was abandoned.
    TimedOut,
}

/// What one supervised cell produced.
enum CellResult {
    Committed(JournalCell),
    Hole(SweepHole),
    /// The journal itself failed terminally; the sweep must stop.
    Fatal(JournalError),
}

/// Runs a supervised, journaled sweep of `app` over `algorithms` ×
/// `processors`, committing each completed cell to the journal at
/// `journal_path`.
///
/// With `resume` set and an existing journal at the path, committed
/// cells are recovered (longest valid prefix) and skipped; otherwise a
/// fresh journal is created (truncating any previous one). The caller
/// must have run [`PreparedApp::run_probe`] if `algorithms` includes
/// [`PlacementAlgorithm::CoherenceTraffic`] — a missing probe is a
/// deterministic error and degrades those cells into holes.
///
/// # Errors
///
/// [`Error::Journal`] when the journal cannot be created, resumed
/// (corrupt header / different sweep), or written despite retries.
/// Per-cell failures are **not** errors — they come back as
/// [`SupervisedSweep::holes`].
pub fn run_supervised_sweep(
    app: &Arc<PreparedApp>,
    algorithms: &[PlacementAlgorithm],
    processors: &[usize],
    journal_path: &Path,
    resume: bool,
    sup: &SupervisorConfig,
) -> Result<SupervisedSweep, Error> {
    let header = sweep_header(app, algorithms, processors);
    let (writer, mut cells, dropped) = if resume && journal_path.exists() {
        let (writer, recovery) = JournalWriter::resume(journal_path, &header)?;
        (writer, recovery.cells, recovery.dropped)
    } else {
        (
            JournalWriter::create(journal_path, &header)?,
            Vec::new(),
            Vec::new(),
        )
    };
    #[cfg(feature = "chaos")]
    let writer = writer.with_chaos(sup.chaos.clone());
    let resumed = cells.len();

    let pending: Vec<usize> = (0..header.cell_count())
        .filter(|i| !cells.iter().any(|c| c.index == *i))
        .collect();

    let writer = Mutex::new(writer);
    let faults = Mutex::new(FaultCounters::new());
    let monitor = Mutex::new(SweepMonitor::new(sup, &header, resumed));
    // Surface the telemetry file immediately (zero cells done) so
    // watchers can start polling before the first cell lands.
    monitor.lock().unwrap_or_else(|p| p.into_inner()).rewrite();
    let cancel = CancelToken::new();
    // Division of labor between the two pools: `PLACESIM_THREADS` is the
    // single machine-wide budget. Each grid cell may itself fan out over
    // `PLACESIM_SIM_THREADS` intra-simulation workers (the parallel
    // engine), so the cell pool is clamped to budget / sim-threads —
    // otherwise a 16-core sweep with 4 sim threads per cell would spawn
    // 64 runnable threads and thrash. One cell always runs, even when
    // sim-threads exceeds the whole budget.
    let cell_workers = split_worker_budget(max_workers(), sim_workers());
    let outcomes = parallel_map_isolated_bounded(&pending, Some(&cancel), cell_workers, |&index| {
        supervise_cell(
            app, algorithms, &header, index, sup, &writer, &faults, &monitor, &cancel,
        )
    });

    let mut holes = Vec::new();
    let mut fatal: Option<JournalError> = None;
    for (slot, outcome) in outcomes.into_iter().enumerate() {
        let index = pending[slot];
        match outcome {
            IsolatedOutcome::Done(CellResult::Committed(cell)) => cells.push(cell),
            IsolatedOutcome::Done(CellResult::Hole(hole)) => holes.push(hole),
            IsolatedOutcome::Done(CellResult::Fatal(e)) => fatal = Some(e),
            IsolatedOutcome::Panicked(payload) => {
                // The supervision wrapper itself panicked — not an
                // attempt (those are caught on their own threads). Keep
                // the sweep alive and annotate the cell.
                let (algorithm, procs) = grid_slot(&header, index);
                holes.push(SweepHole {
                    index,
                    algorithm,
                    processors: procs,
                    attempts: 0,
                    reason: format!(
                        "supervisor worker panicked: {}",
                        panic_payload_summary(payload.as_ref())
                    ),
                });
            }
            IsolatedOutcome::Cancelled => {
                let (algorithm, procs) = grid_slot(&header, index);
                holes.push(SweepHole {
                    index,
                    algorithm,
                    processors: procs,
                    attempts: 0,
                    reason: "cancelled before completion".into(),
                });
            }
        }
    }
    if let Some(e) = fatal {
        return Err(Error::Journal(e));
    }

    cells.sort_by_key(|c| c.index);
    holes.sort_by_key(|h| h.index);
    let faults = faults.into_inner().unwrap_or_else(|p| p.into_inner());
    let monitor = monitor.into_inner().unwrap_or_else(|p| p.into_inner());
    // One final rewrite so the document on disk reflects the finished
    // sweep even if the last cell event raced with a reader.
    monitor.rewrite();
    Ok(SupervisedSweep {
        header,
        cells,
        holes,
        dropped,
        faults,
        resumed,
        attribution: monitor.attr,
    })
}

/// The `(algorithm, processors)` labels of a cell index; falls back to
/// placeholders if the index is somehow out of grid (cannot happen for
/// indices drawn from `0..cell_count()`).
fn grid_slot(header: &JournalHeader, index: usize) -> (String, usize) {
    header
        .cell(index)
        .map(|(a, p)| (a.to_owned(), p))
        .unwrap_or_else(|| ("?".to_owned(), 0))
}

/// Supervises one cell to completion: retry loop, fault classification,
/// journal commit.
#[allow(clippy::too_many_arguments)]
fn supervise_cell(
    app: &Arc<PreparedApp>,
    algorithms: &[PlacementAlgorithm],
    header: &JournalHeader,
    index: usize,
    sup: &SupervisorConfig,
    writer: &Mutex<JournalWriter>,
    faults: &Mutex<FaultCounters>,
    monitor: &Mutex<SweepMonitor>,
    cancel: &CancelToken,
) -> CellResult {
    let algorithm = algorithms[index / header.processors.len()];
    let processors = header.processors[index % header.processors.len()];
    let bound = sup.attempt_bound();
    let mut attempt = 0u32;
    loop {
        let outcome = {
            #[cfg(feature = "chaos")]
            {
                let fault = sup
                    .chaos
                    .as_ref()
                    .and_then(|plan| plan.worker_fault(index, attempt));
                run_attempt(
                    app,
                    algorithm,
                    processors,
                    sup.watchdog,
                    sup.attribution,
                    fault,
                )
            }
            #[cfg(not(feature = "chaos"))]
            {
                run_attempt(app, algorithm, processors, sup.watchdog, sup.attribution)
            }
        };
        let reason = match outcome {
            Attempt::Done(entry, attr) => {
                let cell = JournalCell {
                    index,
                    attempts: attempt + 1,
                    entry,
                };
                let committed = {
                    let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
                    let mut f = faults.lock().unwrap_or_else(|p| p.into_inner());
                    w.commit_cell(&cell, &mut f)
                };
                return match committed {
                    Ok(()) => {
                        // Fold the cell into the live state only after
                        // it is durable, so telemetry never reports a
                        // cell the journal could still lose.
                        monitor
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .record_done(&cell.entry, attr);
                        CellResult::Committed(cell)
                    }
                    Err(e) => {
                        // The journal is unwritable: nothing further can
                        // be made durable, so stop claiming new cells.
                        cancel.cancel();
                        CellResult::Fatal(e)
                    }
                };
            }
            Attempt::Failed(msg) => {
                // Typed errors are deterministic — retrying replays the
                // same failure, so degrade to a hole immediately.
                let mut f = faults.lock().unwrap_or_else(|p| p.into_inner());
                f.errors += 1;
                drop(f);
                monitor
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .record_failed();
                return CellResult::Hole(SweepHole {
                    index,
                    algorithm: algorithm.paper_name().to_owned(),
                    processors,
                    attempts: attempt + 1,
                    reason: format!("deterministic error: {msg}"),
                });
            }
            Attempt::Panicked(msg) => {
                let mut f = faults.lock().unwrap_or_else(|p| p.into_inner());
                f.panics += 1;
                format!("worker panicked: {msg}")
            }
            Attempt::TimedOut => {
                let mut f = faults.lock().unwrap_or_else(|p| p.into_inner());
                f.timeouts += 1;
                // The timed-out attempt's thread was detached, not
                // joined — account for it so leaked workers show up in
                // sweep and service reports instead of vanishing.
                f.abandoned += 1;
                format!(
                    "watchdog fired after {:?} (attempt thread abandoned)",
                    sup.watchdog.unwrap_or_default()
                )
            }
        };
        attempt += 1;
        if attempt >= bound || cancel.is_cancelled() {
            monitor
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .record_failed();
            return CellResult::Hole(SweepHole {
                index,
                algorithm: algorithm.paper_name().to_owned(),
                processors,
                attempts: attempt,
                reason,
            });
        }
        let mut f = faults.lock().unwrap_or_else(|p| p.into_inner());
        f.retries += 1;
        drop(f);
        monitor
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .record_retry();
        if let Some(backoff) = &sup.backoff {
            std::thread::sleep(backoff.delay(index as u64, attempt));
        }
    }
}

/// One isolated attempt on a fresh, detached thread. Panics are caught
/// on that thread and come back classified; when the watchdog fires the
/// thread is abandoned (it parks on a dead channel and exits whenever
/// the wedged work finishes, if ever) and the supervisor moves on.
fn run_attempt(
    app: &Arc<PreparedApp>,
    algorithm: PlacementAlgorithm,
    processors: usize,
    watchdog: Option<Duration>,
    attribution: Option<AttributionConfig>,
    #[cfg(feature = "chaos")] fault: Option<crate::chaos::WorkerFault>,
) -> Attempt {
    let (tx, rx) = mpsc::channel();
    let app = Arc::clone(app);
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "chaos")]
            match fault {
                Some(crate::chaos::WorkerFault::Panic) => {
                    panic!("chaos: injected worker panic")
                }
                Some(crate::chaos::WorkerFault::Stall(d)) => std::thread::sleep(d),
                None => {}
            }
            match attribution {
                Some(acfg) => run_placement_attributed(&app, algorithm, processors, acfg)
                    .map(|(r, attr)| (r, Some(Box::new(attr)))),
                None => run_placement(&app, algorithm, processors).map(|r| (r, None)),
            }
        }));
        let outcome = match result {
            Ok(Ok((r, attr))) => Attempt::Done(
                ManifestEntry::from_stats(algorithm.paper_name(), processors, &r.stats),
                attr,
            ),
            Ok(Err(e)) => Attempt::Failed(e.to_string()),
            Err(payload) => Attempt::Panicked(panic_payload_summary(payload.as_ref())),
        };
        let _ = tx.send(outcome);
    });
    match watchdog {
        Some(budget) => match rx.recv_timeout(budget) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => Attempt::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Attempt::Panicked("attempt thread vanished without reporting".into())
            }
        },
        None => rx.recv().unwrap_or_else(|_| {
            Attempt::Panicked("attempt thread vanished without reporting".into())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::read_journal;
    use placesim_workloads::{spec, GenOptions};
    use std::path::PathBuf;

    fn tiny(name: &str) -> Arc<PreparedApp> {
        Arc::new(PreparedApp::prepare(
            &spec(name).unwrap(),
            &GenOptions {
                scale: 0.002,
                seed: 3,
            },
        ))
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("placesim-supervisor-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const ALGOS: [PlacementAlgorithm; 2] =
        [PlacementAlgorithm::Random, PlacementAlgorithm::LoadBal];

    #[test]
    fn healthy_sweep_commits_every_cell() {
        let dir = tmp_dir("healthy");
        let path = dir.join("sweep.journal");
        let app = tiny("water");
        let sweep = run_supervised_sweep(
            &app,
            &ALGOS,
            &[2, 4],
            &path,
            false,
            &SupervisorConfig::new(),
        )
        .unwrap();
        assert!(sweep.is_complete());
        assert_eq!(sweep.cells.len(), 4);
        assert!(sweep.holes.is_empty());
        assert_eq!(sweep.resumed, 0);
        assert_eq!(sweep.faults, FaultCounters::new());
        // Cells come back in grid order and match a plain run_sweep.
        let plain = crate::run_sweep(&app, &ALGOS, &[2, 4]).unwrap();
        for (cell, r) in sweep.cells.iter().zip(&plain) {
            assert_eq!(cell.entry.algorithm, r.algorithm.paper_name());
            assert_eq!(cell.entry.execution_time, r.execution_time());
            assert_eq!(cell.attempts, 1);
        }
        // The journal on disk recovers to the same cells.
        let rec = read_journal(&path).unwrap();
        assert_eq!(rec.cells.len(), 4);
        assert!(rec.dropped.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_skips_committed_cells_and_matches_uninterrupted_manifest() {
        let dir = tmp_dir("resume");
        let full_path = dir.join("full.journal");
        let app = tiny("water");
        let sup = SupervisorConfig::new();
        let full = run_supervised_sweep(&app, &ALGOS, &[2, 4], &full_path, false, &sup).unwrap();

        // Simulate an interrupted run: journal holding only 2 of the 4
        // cells (truncate the full journal after 3 lines).
        let part_path = dir.join("part.journal");
        let text = std::fs::read_to_string(&full_path).unwrap();
        let prefix: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        std::fs::write(&part_path, prefix).unwrap();

        let resumed = run_supervised_sweep(&app, &ALGOS, &[2, 4], &part_path, true, &sup).unwrap();
        assert_eq!(resumed.resumed, 2);
        assert!(resumed.is_complete());
        assert_eq!(
            resumed.manifest().to_json(),
            full.manifest().to_json(),
            "resumed sweep must reproduce the uninterrupted manifest bit-identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_error_becomes_hole_without_retry() {
        let dir = tmp_dir("hole");
        let path = dir.join("sweep.journal");
        let app = tiny("water");
        // CoherenceTraffic without a probe is a deterministic typed
        // error: both its cells must degrade to holes on attempt 1,
        // while the healthy algorithm's cells commit.
        let algos = [
            PlacementAlgorithm::Random,
            PlacementAlgorithm::CoherenceTraffic,
        ];
        let sweep = run_supervised_sweep(
            &app,
            &algos,
            &[2, 4],
            &path,
            false,
            &SupervisorConfig::new(),
        )
        .unwrap();
        assert!(!sweep.is_complete());
        assert_eq!(sweep.cells.len(), 2);
        assert_eq!(sweep.holes.len(), 2);
        assert_eq!(sweep.faults.errors, 2);
        assert_eq!(sweep.faults.retries, 0, "deterministic errors never retry");
        for hole in &sweep.holes {
            assert_eq!(hole.algorithm, "COHERENCE");
            assert_eq!(hole.attempts, 1);
            assert!(hole.reason.contains("probe"), "{}", hole.reason);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_of_mismatched_journal_is_refused() {
        let dir = tmp_dir("refuse");
        let path = dir.join("sweep.journal");
        let app = tiny("water");
        let sup = SupervisorConfig::new();
        run_supervised_sweep(&app, &ALGOS, &[2], &path, false, &sup).unwrap();
        // Same journal, different grid: must be a typed journal error.
        let err = run_supervised_sweep(&app, &ALGOS, &[2, 4], &path, true, &sup).unwrap_err();
        assert!(
            matches!(err, Error::Journal(JournalError::Mismatch(_))),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_flag_without_existing_journal_starts_fresh() {
        let dir = tmp_dir("fresh");
        let path = dir.join("sweep.journal");
        let app = tiny("water");
        let sweep = run_supervised_sweep(&app, &ALGOS, &[2], &path, true, &SupervisorConfig::new())
            .unwrap();
        assert!(sweep.is_complete());
        assert_eq!(sweep.resumed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
