//! Regenerates the paper's Table 1: the application suite.

fn main() {
    placesim_bench::print_table1();
}
