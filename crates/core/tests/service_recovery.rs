//! Durable-queue recovery and lockfile tests for the placement
//! service: jobs journaled before acknowledgment survive a crash and
//! resume to byte-identical results; a service directory admits one
//! daemon at a time; stale locks from dead PIDs are reclaimed.

use placesim::service::{LockFile, PlacementService, ServiceConfig, ServiceError, SERVICE_LOCK};
use placesim_obs::json::{self, JsonValue};
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("placesim-service-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn quick(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_capacity: 8,
        job_timeout: None,
        max_attempts: 2,
        backoff: None,
        cache_capacity: 8,
    }
}

fn submit_line(job: &str) -> String {
    format!("{{\"schema\": \"placesim-service-v1\", \"op\": \"submit\", \"job\": {job}}}")
}

fn wait_line(id: u64) -> String {
    format!(
        "{{\"schema\": \"placesim-service-v1\", \"op\": \"wait\", \"id\": {id}, \
         \"timeout_ms\": 60000}}"
    )
}

const SIM_JOB: &str = "{\"op\": \"simulate\", \"app\": \"water\", \"scale\": 0.002, \
                       \"seed\": 3, \"algorithms\": [\"LOAD-BAL\"], \"processors\": [4]}";

/// Runs a job to completion and returns the embedded result bytes.
fn run_to_result(svc: &PlacementService, job: &str) -> String {
    let resp = svc.handle_request(&submit_line(job));
    let doc = json::parse(&resp).unwrap();
    assert_eq!(
        doc.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{resp}"
    );
    let id = doc.get("id").and_then(JsonValue::as_u64).unwrap();
    let resp = svc.handle_request(&wait_line(id));
    let doc = json::parse(&resp).unwrap();
    assert_eq!(
        doc.get("state").and_then(JsonValue::as_str),
        Some("done"),
        "{resp}"
    );
    doc.get("result")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_owned()
}

#[test]
fn accepted_job_survives_crash_and_resumes_byte_identically() {
    // Reference run: an uninterrupted daemon.
    let ref_dir = tmp_dir("crash-ref");
    let (ref_svc, _) = PlacementService::start(&ref_dir, quick(1)).unwrap();
    let expected = run_to_result(&ref_svc, SIM_JOB);
    ref_svc.drain_and_join();

    // Crashing run: accept with zero workers (the job is journaled but
    // never starts), then drop the service without draining — the
    // in-memory queue is gone, the journal survives.
    let dir = tmp_dir("crash");
    let (svc, recovery) = PlacementService::start(&dir, quick(0)).unwrap();
    assert!(recovery.resumed.is_empty());
    let resp = svc.handle_request(&submit_line(SIM_JOB));
    let doc = json::parse(&resp).unwrap();
    assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
    let id = doc.get("id").and_then(JsonValue::as_u64).unwrap();
    svc.drain_and_join();
    drop(svc);

    // Restart: the journaled job is re-enqueued and runs to the same
    // bytes the uninterrupted daemon produced.
    let (svc, recovery) = PlacementService::start(&dir, quick(1)).unwrap();
    assert_eq!(recovery.resumed, vec![id]);
    let resp = svc.handle_request(&wait_line(id));
    let doc = json::parse(&resp).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"));
    let resumed = doc.get("result").and_then(JsonValue::as_str).unwrap();
    assert_eq!(resumed, expected, "resumed result must be byte-identical");
    svc.drain_and_join();
    drop(svc);

    // A third start replays the done record: no re-execution, the same
    // bytes straight from the journal, and a cache-hit dedup on submit.
    let (svc, recovery) = PlacementService::start(&dir, quick(1)).unwrap();
    assert!(recovery.resumed.is_empty());
    assert_eq!(recovery.completed, 1);
    let resp = svc.handle_request(&submit_line(SIM_JOB));
    let doc = json::parse(&resp).unwrap();
    assert_eq!(doc.get("cached").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(doc.get("id").and_then(JsonValue::as_u64), Some(id));
    let resp = svc.handle_request(&wait_line(id));
    let doc = json::parse(&resp).unwrap();
    let replayed = doc.get("result").and_then(JsonValue::as_str).unwrap();
    assert_eq!(replayed, expected);
    svc.drain_and_join();

    fs::remove_dir_all(&ref_dir).ok();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_daemon_is_locked_out() {
    let dir = tmp_dir("locked");
    let (svc, _) = PlacementService::start(&dir, quick(0)).unwrap();
    // Same process counts as live: the second start must refuse.
    match PlacementService::start(&dir, quick(0)) {
        Err(ServiceError::Locked { pid }) => {
            assert_eq!(pid, Some(std::process::id()));
        }
        other => panic!("expected Locked, got {other:?}"),
    }
    svc.drain_and_join();
    drop(svc);
    // After a clean shutdown the lock is released.
    let (svc, _) = PlacementService::start(&dir, quick(0)).unwrap();
    svc.drain_and_join();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_lock_from_dead_pid_is_reclaimed() {
    let dir = tmp_dir("stale");
    // Forge a lockfile naming a PID that can't be alive. PID 1 is
    // always alive; near-u32::MAX is beyond any real pid_max.
    fs::write(dir.join(SERVICE_LOCK), "4294967294\n").unwrap();
    let (svc, _) = PlacementService::start(&dir, quick(0)).expect("stale lock must be reclaimed");
    svc.drain_and_join();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn unreadable_lock_is_never_reclaimed() {
    let dir = tmp_dir("junklock");
    // A lockfile with no parseable PID: conservatively treated as held.
    fs::write(dir.join(SERVICE_LOCK), "not a pid\n").unwrap();
    match PlacementService::start(&dir, quick(0)) {
        Err(ServiceError::Locked { pid: None }) => {}
        other => panic!("expected Locked without a pid, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn lockfile_api_round_trips() {
    let dir = tmp_dir("lockapi");
    let path = dir.join(SERVICE_LOCK);
    let lock = LockFile::acquire(&path).unwrap();
    assert!(path.exists());
    assert!(matches!(
        LockFile::acquire(&path),
        Err(ServiceError::Locked { .. })
    ));
    drop(lock);
    assert!(!path.exists(), "drop must release the lock");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_leaves_queued_jobs_journaled_for_the_next_start() {
    let dir = tmp_dir("drain");
    let (svc, _) = PlacementService::start(&dir, quick(0)).unwrap();
    let resp = svc.handle_request(&submit_line(SIM_JOB));
    let id = json::parse(&resp)
        .unwrap()
        .get("id")
        .and_then(JsonValue::as_u64)
        .unwrap();
    svc.drain_and_join();
    // Draining rejects new submissions with the typed kind.
    let resp = svc.handle_request(&submit_line(&SIM_JOB.replace("\"seed\": 3", "\"seed\": 4")));
    let doc = json::parse(&resp).unwrap();
    assert_eq!(
        doc.get("error").and_then(JsonValue::as_str),
        Some("draining")
    );
    drop(svc);

    let (svc, recovery) = PlacementService::start(&dir, quick(1)).unwrap();
    assert_eq!(recovery.resumed, vec![id]);
    let resp = svc.handle_request(&wait_line(id));
    let doc = json::parse(&resp).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"));
    svc.drain_and_join();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn watchdog_timeouts_count_abandoned_threads() {
    // A 1 ns watchdog fires on every attempt; with 2 attempts the job
    // fails permanently, and every timeout is also an abandonment.
    let dir = tmp_dir("watchdog");
    let cfg = ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        job_timeout: Some(Duration::from_nanos(1)),
        max_attempts: 2,
        backoff: None,
        cache_capacity: 8,
    };
    let (svc, _) = PlacementService::start(&dir, cfg).unwrap();
    let resp = svc.handle_request(&submit_line(SIM_JOB));
    let id = json::parse(&resp)
        .unwrap()
        .get("id")
        .and_then(JsonValue::as_u64)
        .unwrap();
    let resp = svc.handle_request(&wait_line(id));
    let doc = json::parse(&resp).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("failed"));
    let faults = svc.fault_counters();
    assert_eq!(faults.timeouts, 2);
    assert_eq!(faults.abandoned, 2);
    assert_eq!(faults.retries, 1);
    svc.drain_and_join();
    fs::remove_dir_all(&dir).ok();
}
