//! Address-space layout of the synthetic applications.
//!
//! The layout is *compact*, like the address spaces of the real
//! Sequent-era programs the paper traced:
//!
//! ```text
//! 0x00_0000  code window (8 KB, shared by all threads)
//! 0x01_0000  shared data region (up to ~61k line-stride words)
//! 0x20_0000  per-thread private regions, packed contiguously
//! ```
//!
//! Compactness matters: the paper's §4.3 "infinite" 8 MB cache
//! eliminates *all* conflict misses, which is only true when the
//! program's whole footprint maps to distinct cache sets. Packing the
//! regions keeps every application's per-processor footprint within
//! 8 MB (the lone exception is Cholesky at full scale, which is not
//! part of the infinite-cache study).
//!
//! Shared and private data words are spaced one cache line (32 bytes)
//! apart: the paper's applications were restructured to have essentially
//! no false sharing (§3.1 footnote), so the generator allocates one word
//! per line.

/// Base of the shared code window.
pub const CODE_BASE: u64 = 0;
/// Number of 4-byte instruction slots in the looping code window.
pub const CODE_WORDS: u64 = 2048;

/// Base of the shared data region. Offset by 8 KB from a cache-size
/// multiple so the shared region continues in the cache sets *after*
/// the code window instead of aliasing onto set 0 (all the simulated
/// cache sizes are ≥ 32 KB, i.e. multiples never land mid-window).
pub const SHARED_BASE: u64 = 0x1_2000;
/// Stride between shared data words: one cache line (no false sharing).
pub const SHARED_STRIDE: u64 = 32;
/// First address past the shared region = start of private space.
/// Offset by 16 KB from a cache-size multiple for the same
/// set-staggering reason.
pub const PRIVATE_BASE: u64 = 0x20_4000;
/// Maximum shared slots the region can hold.
pub const MAX_SHARED_SLOTS: u64 = (PRIVATE_BASE - SHARED_BASE) / SHARED_STRIDE;

/// Stride between private data words.
pub const PRIVATE_STRIDE: u64 = 32;
/// Private regions are padded to this alignment.
const PRIVATE_ALIGN: u64 = 4096;

/// Address of the `i`-th instruction of the shared code window.
#[inline]
pub fn code_addr(i: u64) -> u64 {
    CODE_BASE + 4 * (i % CODE_WORDS)
}

/// Address of shared data word `slot` (wraps at the region capacity).
#[inline]
pub fn shared_addr(slot: u64) -> u64 {
    SHARED_BASE + (slot % MAX_SHARED_SLOTS) * SHARED_STRIDE
}

/// The packed per-thread private-region layout of one application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    bases: Vec<u64>,
    slots: Vec<u64>,
}

impl Layout {
    /// Packs one private region per thread, sized for `private_slots[t]`
    /// line-stride words, starting at [`PRIVATE_BASE`].
    pub fn new(private_slots: Vec<u64>) -> Self {
        let mut bases = Vec::with_capacity(private_slots.len());
        let mut cursor = PRIVATE_BASE;
        for &n in &private_slots {
            bases.push(cursor);
            let bytes = n.max(1) * PRIVATE_STRIDE;
            cursor += bytes.div_ceil(PRIVATE_ALIGN) * PRIVATE_ALIGN;
        }
        Layout {
            bases,
            slots: private_slots,
        }
    }

    /// Address of private word `slot` of thread `tid` (wraps within the
    /// thread's own region).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[inline]
    pub fn private_addr(&self, tid: usize, slot: u64) -> u64 {
        self.bases[tid] + (slot % self.slots[tid].max(1)) * PRIVATE_STRIDE
    }

    /// First address of `tid`'s private region.
    #[allow(dead_code)] // exercised by tests; kept as Layout's natural API
    pub fn private_base(&self, tid: usize) -> u64 {
        self.bases[tid]
    }

    /// One past the last private address of the whole application.
    #[allow(dead_code)] // exercised by tests; kept as Layout's natural API
    pub fn end(&self) -> u64 {
        match self.bases.last() {
            None => PRIVATE_BASE,
            Some(&b) => b + self.slots.last().unwrap().max(&1) * PRIVATE_STRIDE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_wraps() {
        assert_eq!(code_addr(0), CODE_BASE);
        assert_eq!(code_addr(CODE_WORDS), CODE_BASE);
        assert_eq!(code_addr(1), CODE_BASE + 4);
        assert!(code_addr(CODE_WORDS - 1) < SHARED_BASE);
    }

    #[test]
    fn shared_words_are_line_disjoint_and_wrap() {
        assert_ne!(shared_addr(1) / 32, shared_addr(0) / 32);
        assert_eq!(shared_addr(MAX_SHARED_SLOTS), shared_addr(0));
        assert!(shared_addr(MAX_SHARED_SLOTS - 1) < PRIVATE_BASE);
    }

    #[test]
    fn private_regions_are_disjoint_and_packed() {
        let l = Layout::new(vec![10, 200, 1]);
        assert_eq!(l.private_base(0), PRIVATE_BASE);
        // Region 0 holds 10 words = 320 bytes, padded to 4 KB.
        assert_eq!(l.private_base(1), PRIVATE_BASE + 4096);
        // Region 1 holds 200 words = 6400 bytes, padded to 8 KB.
        assert_eq!(l.private_base(2), PRIVATE_BASE + 4096 + 8192);

        // Addresses stay within their region.
        for slot in 0..50 {
            let a = l.private_addr(0, slot);
            assert!(a >= l.private_base(0) && a < l.private_base(1));
        }
    }

    #[test]
    fn private_wraps_within_own_region() {
        let l = Layout::new(vec![4]);
        assert_eq!(l.private_addr(0, 0), l.private_addr(0, 4));
        assert_ne!(l.private_addr(0, 0), l.private_addr(0, 3));
    }

    #[test]
    fn end_covers_all_regions() {
        let l = Layout::new(vec![10, 20]);
        assert!(l.end() > l.private_base(1));
        assert_eq!(Layout::new(vec![]).end(), PRIVATE_BASE);
    }

    #[test]
    fn zero_slot_region_is_safe() {
        let l = Layout::new(vec![0]);
        let a = l.private_addr(0, 7);
        assert_eq!(a, l.private_base(0));
    }
}
