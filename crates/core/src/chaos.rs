//! Deterministic chaos injection for the sweep supervisor
//! (`chaos` feature only).
//!
//! A [`ChaosPlan`] is a pure function from `(seed, cell, fault class)`
//! to "does a fault fire here": the same plan injects the same faults
//! on every run, so chaos tests are reproducible and the supervisor's
//! recovery behaviour can be asserted exactly. Rate-based faults fire
//! only on a cell's **first** attempt — a retried cell deterministically
//! succeeds, which lets tests distinguish "retried to success" from
//! "exhausted into a hole". Cells listed as persistent failures panic on
//! *every* attempt, exercising the hole path.

use std::time::Duration;

/// A fault injected into a sweep worker attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker panics mid-cell.
    Panic,
    /// The worker stalls for the given duration before completing
    /// (trips the watchdog when the stall exceeds it).
    Stall(Duration),
}

/// A fault injected into a journal append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFault {
    /// Half the line reaches the file, then the write "fails" — the
    /// torn state is made real on disk first.
    ShortWrite,
    /// The append fails outright without touching the file.
    Error,
}

/// Distinguishes fault classes when hashing, so e.g. panic and stall
/// rolls for the same cell are independent.
#[derive(Clone, Copy)]
enum FaultClass {
    Panic = 1,
    Stall = 2,
    Journal = 3,
}

/// A seeded, deterministic fault plan. Build one with [`ChaosPlan::new`]
/// plus the `with_*` builders; all rates are per-mille (out of 1000).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    seed: u64,
    panic_per_mille: u32,
    stall_per_mille: u32,
    stall_ms: u64,
    journal_per_mille: u32,
    persistent: Vec<usize>,
}

impl ChaosPlan {
    /// A plan with the given seed and no faults armed.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// Arms first-attempt worker panics at `per_mille` / 1000 cells.
    pub fn with_panics(mut self, per_mille: u32) -> Self {
        self.panic_per_mille = per_mille;
        self
    }

    /// Arms first-attempt worker stalls of `ms` milliseconds at
    /// `per_mille` / 1000 cells.
    pub fn with_stalls(mut self, per_mille: u32, ms: u64) -> Self {
        self.stall_per_mille = per_mille;
        self.stall_ms = ms;
        self
    }

    /// Arms first-attempt journal-append faults at `per_mille` / 1000
    /// cells (alternating short writes and outright errors).
    pub fn with_journal_faults(mut self, per_mille: u32) -> Self {
        self.journal_per_mille = per_mille;
        self
    }

    /// Marks `cell` as persistently failing: it panics on **every**
    /// attempt, so the supervisor must exhaust retries and report a
    /// hole.
    pub fn with_persistent_failure(mut self, cell: usize) -> Self {
        self.persistent.push(cell);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether `cell` is marked as persistently failing.
    pub fn is_persistent_failure(&self, cell: usize) -> bool {
        self.persistent.contains(&cell)
    }

    /// The worker fault (if any) for `cell` on `attempt` (0-based).
    /// Persistent cells always panic; rate faults fire on attempt 0
    /// only, with panic taking precedence over stall when both roll.
    pub fn worker_fault(&self, cell: usize, attempt: u32) -> Option<WorkerFault> {
        if self.is_persistent_failure(cell) {
            return Some(WorkerFault::Panic);
        }
        if attempt != 0 {
            return None;
        }
        if self.roll(cell, FaultClass::Panic) < self.panic_per_mille {
            return Some(WorkerFault::Panic);
        }
        if self.roll(cell, FaultClass::Stall) < self.stall_per_mille {
            return Some(WorkerFault::Stall(Duration::from_millis(self.stall_ms)));
        }
        None
    }

    /// The journal fault (if any) for the first append of `cell`'s
    /// line. Callers apply this to attempt 0 only; the journal writer's
    /// internal retry then deterministically succeeds.
    pub fn journal_fault(&self, cell: usize) -> Option<JournalFault> {
        let roll = self.roll(cell, FaultClass::Journal);
        if roll < self.journal_per_mille {
            Some(if roll.is_multiple_of(2) {
                JournalFault::ShortWrite
            } else {
                JournalFault::Error
            })
        } else {
            None
        }
    }

    /// A uniform roll in `0..1000`, a pure function of
    /// `(seed, cell, class)`.
    fn roll(&self, cell: usize, class: FaultClass) -> u32 {
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((cell as u64) << 8)
            .wrapping_add(class as u64);
        // splitmix64 finalizer: avalanche the combined key.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % 1000) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let a = ChaosPlan::new(7).with_panics(500).with_journal_faults(500);
        let b = ChaosPlan::new(7).with_panics(500).with_journal_faults(500);
        for cell in 0..64 {
            assert_eq!(a.worker_fault(cell, 0), b.worker_fault(cell, 0));
            assert_eq!(a.journal_fault(cell), b.journal_fault(cell));
        }
    }

    #[test]
    fn rate_faults_fire_on_first_attempt_only() {
        let plan = ChaosPlan::new(1).with_panics(1000).with_stalls(1000, 5);
        for cell in 0..16 {
            assert!(plan.worker_fault(cell, 0).is_some());
            assert_eq!(plan.worker_fault(cell, 1), None);
            assert_eq!(plan.worker_fault(cell, 2), None);
        }
    }

    #[test]
    fn persistent_cells_panic_every_attempt() {
        let plan = ChaosPlan::new(1).with_persistent_failure(3);
        for attempt in 0..5 {
            assert_eq!(plan.worker_fault(3, attempt), Some(WorkerFault::Panic));
        }
        assert!(plan.is_persistent_failure(3));
        assert!(!plan.is_persistent_failure(4));
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = ChaosPlan::new(42);
        for cell in 0..64 {
            assert_eq!(plan.worker_fault(cell, 0), None);
            assert_eq!(plan.journal_fault(cell), None);
        }
    }

    #[test]
    fn full_rate_hits_every_cell_and_varies_by_seed() {
        let plan = ChaosPlan::new(9).with_journal_faults(1000);
        let mut kinds = std::collections::BTreeSet::new();
        for cell in 0..64 {
            kinds.insert(format!("{:?}", plan.journal_fault(cell).unwrap()));
        }
        // Both fault kinds appear across 64 cells at full rate.
        assert_eq!(kinds.len(), 2);
        // Different seeds give different half-rate fault sets.
        let a = ChaosPlan::new(1).with_panics(500);
        let b = ChaosPlan::new(2).with_panics(500);
        let fire = |p: &ChaosPlan| {
            (0..64)
                .filter(|&c| p.worker_fault(c, 0).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(fire(&a), fire(&b));
    }
}
