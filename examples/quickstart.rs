//! Quickstart: generate an application, place its threads two ways, and
//! compare simulated execution times.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use placesim_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick an application from the paper's 14-app suite and generate
    //    its synthetic trace at 5% of paper scale (fast).
    let spec = spec("locusroute").expect("locusroute is in the suite");
    let opts = GenOptions {
        scale: 0.05,
        seed: 42,
    };
    let app = PreparedApp::prepare(&spec, &opts);
    println!(
        "{}: {} threads, {} total references",
        spec.name,
        app.threads(),
        app.prog.total_refs()
    );

    // 2. Place the threads on 8 processors with two algorithms and
    //    simulate each on the paper's machine (multithreaded contexts,
    //    direct-mapped cache, directory coherence, 50-cycle memory).
    let processors = 8;
    for algo in [PlacementAlgorithm::Random, PlacementAlgorithm::LoadBal] {
        let result = run_placement(&app, algo, processors)?;
        let stats = &result.stats;
        let misses = stats.total_misses();
        println!(
            "\n{algo} on {processors} processors:\n  execution time  {} cycles\n  miss rate       {:.2}%\n  misses          {} compulsory, {} intra-conflict, {} inter-conflict, {} invalidation",
            stats.execution_time(),
            100.0 * stats.miss_rate(),
            misses.compulsory,
            misses.intra_thread_conflict,
            misses.inter_thread_conflict,
            misses.invalidation,
        );
    }

    // 3. The paper's headline: load balancing, not sharing, is what
    //    placement should optimize.
    let lb = run_placement(&app, PlacementAlgorithm::LoadBal, processors)?;
    let rand = run_placement(&app, PlacementAlgorithm::Random, processors)?;
    let speedup = 100.0 * (1.0 - lb.execution_time() as f64 / rand.execution_time() as f64);
    println!("\nLOAD-BAL is {speedup:.1}% faster than RANDOM for this run.");
    Ok(())
}
