//! Differential tests: the batched hit-run engine must be bit-for-bit
//! equivalent to the per-reference [`placesim_machine::reference`]
//! engine — identical [`SimStats`] (every counter, every processor) and
//! identical coherence-traffic matrices — over randomized programs,
//! placements and machine configurations.
//!
//! This is the safety net for the hot-path batching optimisation: the
//! reference engine is the obviously-correct one-event-per-reference
//! implementation, kept verbatim behind the `reference-engine` feature.

#![cfg(feature = "reference-engine")]

use placesim_machine::{reference, simulate_with_traffic, ArchConfig};
use placesim_placement::PlacementMap;
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use proptest::prelude::*;

/// Random program over a small address universe to provoke sharing,
/// conflicts, invalidations and upgrades.
fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    let r#ref = (0u8..3, 0u64..64);
    let thread = proptest::collection::vec(r#ref, 0..150);
    proptest::collection::vec(thread, 1..6).prop_map(|threads| {
        let traces: Vec<ThreadTrace> = threads
            .into_iter()
            .map(|refs| {
                refs.into_iter()
                    .map(|(kind, slot)| {
                        let addr = Address::new(slot * 16); // overlapping lines
                        match kind {
                            0 => MemRef::instr(addr),
                            1 => MemRef::read(addr),
                            _ => MemRef::write(addr),
                        }
                    })
                    .collect()
            })
            .collect();
        ProgramTrace::new("diff-prop", traces)
    })
}

/// Programs with barrier phases (equal barrier counts per thread), so
/// the differential covers parks, releases and waiting contexts.
fn arb_barrier_program() -> impl Strategy<Value = ProgramTrace> {
    let segment = proptest::collection::vec((0u8..3, 0u64..48), 0..30);
    (
        1usize..4,
        proptest::collection::vec(proptest::collection::vec(segment, 3), 1..5),
    )
        .prop_map(|(phases, threads)| {
            let traces: Vec<ThreadTrace> = threads
                .into_iter()
                .map(|segments| {
                    let mut t = ThreadTrace::new();
                    for (pi, seg) in segments.into_iter().take(phases).enumerate() {
                        for (kind, slot) in seg {
                            let addr = Address::new(0x100 + slot * 16);
                            t.push(match kind {
                                0 => MemRef::instr(addr),
                                1 => MemRef::read(addr),
                                _ => MemRef::write(addr),
                            });
                        }
                        if pi + 1 < phases {
                            t.push(MemRef::barrier(pi as u64));
                        }
                    }
                    t
                })
                .collect();
            ProgramTrace::new("diff-barrier-prop", traces)
        })
}

fn arb_placement(t: usize, seed: u64) -> PlacementMap {
    // Deterministic pseudo-random balanced clustering.
    let p = 1 + (seed as usize % t.max(1));
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); p.min(t).max(1)];
    for i in 0..t {
        let k = (seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64) >> 7) as usize
            % clusters.len();
        clusters[k].push(i);
    }
    PlacementMap::from_clusters(clusters).expect("valid clusters")
}

/// Randomized machine: cache geometry, latencies, channel occupancy and
/// the upgrade-stall policy all vary, so horizon interactions are probed
/// under many event interleavings.
fn arb_config() -> impl Strategy<Value = ArchConfig> {
    (0u8..4, 0u8..2, 0u64..4, 0u64..3, 0u8..2).prop_map(|(geom, assoc, switch, occ, stalls)| {
        let (cache, line) = match geom {
            0 => (256, 32),
            1 => (512, 32),
            2 => (1024, 64),
            _ => (4096, 64),
        };
        ArchConfig::builder()
            .cache_size(cache)
            .line_size(line)
            .associativity(1 << (assoc * 2)) // 1- or 4-way
            .context_switch(1 + switch * 5) // 1, 6, 11, 16
            .memory_latency(20 + occ * 30)
            .memory_occupancy(occ * 7) // 0 = contention-free
            .upgrade_stalls(stalls == 1)
            .build()
            .expect("valid random config")
    })
}

/// Full-state equality between the two engines on one scenario.
fn assert_engines_agree(prog: &ProgramTrace, map: &PlacementMap, config: &ArchConfig) {
    let (fast, fast_traffic) = simulate_with_traffic(prog, map, config).expect("batched engine");
    let (slow, slow_traffic) =
        reference::simulate_with_traffic(prog, map, config).expect("reference engine");
    assert_eq!(
        fast,
        slow,
        "batched and reference SimStats diverge (p={}, threads={})",
        map.processor_count(),
        prog.thread_count()
    );
    assert_eq!(
        fast_traffic, slow_traffic,
        "batched and reference traffic matrices diverge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engines_agree_on_random_programs(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        assert_engines_agree(&prog, &map, &config);
    }

    #[test]
    fn engines_agree_on_barrier_programs(
        prog in arb_barrier_program(),
        seed in 1u64..5000,
        config in arb_config(),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        assert_engines_agree(&prog, &map, &config);
    }

    #[test]
    fn engines_agree_on_single_processor(prog in arb_program(), config in arb_config()) {
        // p = 1 maximizes batch length (no other processor's events cut
        // the horizon), the exact case the fast path optimizes.
        let t = prog.thread_count();
        let map = PlacementMap::from_clusters(vec![(0..t).collect()]).unwrap();
        assert_engines_agree(&prog, &map, &config);
    }

    #[test]
    fn engines_agree_on_all_distinct_processors(prog in arb_program(), config in arb_config()) {
        // One thread per processor: lockstep events, horizon cut every
        // cycle — the fast path's worst case degenerates to per-reference.
        let t = prog.thread_count();
        let map = PlacementMap::from_clusters((0..t).map(|i| vec![i]).collect()).unwrap();
        assert_engines_agree(&prog, &map, &config);
    }
}

/// The paper-default machine on a fixed hand-written scenario, so the
/// differential does not rest on random generation alone.
#[test]
fn engines_agree_on_paper_default_machine() {
    let t0: ThreadTrace = (0..400)
        .map(|i| MemRef::instr(Address::new(4 * i)))
        .collect();
    let t1: ThreadTrace = (0..300)
        .map(|i| {
            if i % 7 == 0 {
                MemRef::write(Address::new(64 * (i % 13)))
            } else {
                MemRef::read(Address::new(64 * (i % 29)))
            }
        })
        .collect();
    let t2: ThreadTrace = (0..200)
        .map(|i| MemRef::read(Address::new(64 * (i % 13))))
        .collect();
    let prog = ProgramTrace::new("fixed", vec![t0, t1, t2]);
    for clusters in [
        vec![vec![0, 1, 2]],
        vec![vec![0, 1], vec![2]],
        vec![vec![0], vec![1], vec![2]],
    ] {
        let map = PlacementMap::from_clusters(clusters).unwrap();
        assert_engines_agree(&prog, &map, &ArchConfig::paper_default());
    }
}
