//! Full experiment grids: app × algorithm × processor-count sweeps with
//! a tidy record per cell, for custom studies beyond the paper's fixed
//! tables.

use crate::error::Error;
use crate::experiment::{run_placement_with_config, PreparedApp};
use crate::export::to_csv;
use placesim_machine::{ArchConfig, MissBreakdown};
use placesim_placement::PlacementAlgorithm;
use placesim_trace::par::parallel_map;
use serde::Serialize;

/// One cell of an experiment grid.
#[derive(Debug, Clone, Serialize)]
pub struct GridRecord {
    /// Application name.
    pub app: String,
    /// Placement algorithm.
    pub algorithm: PlacementAlgorithm,
    /// Processor count.
    pub processors: usize,
    /// Hardware contexts on the fullest processor.
    pub contexts: usize,
    /// Execution time in cycles.
    pub execution_time: u64,
    /// Aggregated miss components.
    pub misses: MissBreakdown,
    /// Miss rate over all references (0–1).
    pub miss_rate: f64,
    /// Max processor load over ideal load (1.0 = perfectly balanced).
    pub load_imbalance: f64,
    /// Coherence traffic (invalidations + invalidation misses).
    pub coherence_traffic: u64,
}

/// Runs the full grid for one prepared application, in parallel.
///
/// Uses `config` if given, the app's paper cache configuration
/// otherwise.
///
/// # Errors
///
/// Returns the first placement/simulation error encountered.
pub fn run_grid(
    app: &PreparedApp,
    algorithms: &[PlacementAlgorithm],
    processor_counts: &[usize],
    config: Option<&ArchConfig>,
) -> Result<Vec<GridRecord>, Error> {
    let cfg = config.copied().unwrap_or(app.config);
    let combos: Vec<(PlacementAlgorithm, usize)> = algorithms
        .iter()
        .flat_map(|&a| processor_counts.iter().map(move |&p| (a, p)))
        .collect();
    parallel_map(&combos, |&(algo, p)| {
        let r = run_placement_with_config(app, algo, p, &cfg)?;
        Ok(GridRecord {
            app: app.spec.name.to_owned(),
            algorithm: algo,
            processors: p,
            contexts: r.map.max_cluster_size(),
            execution_time: r.execution_time(),
            misses: r.stats.total_misses(),
            miss_rate: r.stats.miss_rate(),
            load_imbalance: r.map.load_imbalance(&app.lengths),
            coherence_traffic: r.stats.coherence_traffic(),
        })
    })
    .into_iter()
    .collect()
}

/// Renders grid records as long-format CSV.
pub fn grid_to_csv(records: &[GridRecord]) -> String {
    let rows = records.iter().map(|r| {
        vec![
            r.app.clone(),
            r.algorithm.paper_name().to_owned(),
            r.processors.to_string(),
            r.contexts.to_string(),
            r.execution_time.to_string(),
            r.misses.compulsory.to_string(),
            r.misses.intra_thread_conflict.to_string(),
            r.misses.inter_thread_conflict.to_string(),
            r.misses.invalidation.to_string(),
            format!("{:.6}", r.miss_rate),
            format!("{:.4}", r.load_imbalance),
            r.coherence_traffic.to_string(),
        ]
    });
    to_csv(
        [
            "app",
            "algorithm",
            "processors",
            "contexts",
            "execution_time",
            "compulsory",
            "intra_conflict",
            "inter_conflict",
            "invalidation",
            "miss_rate",
            "load_imbalance",
            "coherence_traffic",
        ],
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_workloads::{spec, GenOptions};

    fn tiny() -> PreparedApp {
        PreparedApp::prepare(
            &spec("barnes-hut").unwrap(),
            &GenOptions {
                scale: 0.002,
                seed: 6,
            },
        )
    }

    #[test]
    fn grid_covers_all_cells() {
        let app = tiny();
        let algos = [PlacementAlgorithm::Random, PlacementAlgorithm::LoadBal];
        let records = run_grid(&app, &algos, &[2, 4], None).unwrap();
        assert_eq!(records.len(), 4);
        for r in &records {
            assert!(r.execution_time > 0);
            assert!(r.miss_rate > 0.0 && r.miss_rate < 1.0);
            assert!(r.load_imbalance >= 1.0 - 1e-9);
            assert_eq!(r.contexts, app.threads().div_ceil(r.processors));
        }
    }

    #[test]
    fn grid_with_explicit_config() {
        let app = tiny();
        let inf = ArchConfig::infinite_cache();
        let records = run_grid(&app, &[PlacementAlgorithm::Random], &[2], Some(&inf)).unwrap();
        assert_eq!(records[0].misses.conflicts(), 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let app = tiny();
        let records = run_grid(&app, &[PlacementAlgorithm::Random], &[2], None).unwrap();
        let csv = grid_to_csv(&records);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("app,algorithm,processors"));
        assert!(lines[1].starts_with("barnes-hut,RANDOM,2,"));
    }
}
