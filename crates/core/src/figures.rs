//! The series behind the paper's Figures 2–5.

use crate::error::Error;
use crate::experiment::{run_sweep, PreparedApp};
use placesim_machine::MissBreakdown;
use placesim_placement::PlacementAlgorithm;
use serde::Serialize;

/// Processor counts the paper sweeps, filtered to those feasible for a
/// `threads`-thread application (at least one thread per processor).
pub fn default_processor_counts(threads: usize) -> Vec<usize> {
    [2usize, 4, 8, 16]
        .into_iter()
        .filter(|&p| p <= threads)
        .collect()
}

/// Execution time of every static placement algorithm, normalized to
/// RANDOM, across processor configurations — one of the paper's
/// Figure 2/3/4 bar charts.
#[derive(Debug, Clone, Serialize)]
pub struct ExecTimeFigure {
    /// Application name.
    pub app: String,
    /// Processor counts on the X axis.
    pub processor_counts: Vec<usize>,
    /// Algorithms (one bar group each).
    pub algorithms: Vec<PlacementAlgorithm>,
    /// `raw[a][p]` = execution time of `algorithms[a]` at
    /// `processor_counts[p]`.
    pub raw: Vec<Vec<u64>>,
    /// `normalized[a][p]` = raw time over RANDOM's time at the same
    /// processor count (the paper's Y axis).
    pub normalized: Vec<Vec<f64>>,
}

impl ExecTimeFigure {
    /// The normalized time of one algorithm at one processor count.
    pub fn normalized_time(&self, algo: PlacementAlgorithm, processors: usize) -> Option<f64> {
        let a = self.algorithms.iter().position(|&x| x == algo)?;
        let p = self
            .processor_counts
            .iter()
            .position(|&x| x == processors)?;
        Some(self.normalized[a][p])
    }
}

/// Runs the Figure 2/3/4 experiment for one application.
///
/// # Errors
///
/// Propagates placement/simulation failures.
pub fn exec_time_figure(
    app: &PreparedApp,
    processor_counts: &[usize],
) -> Result<ExecTimeFigure, Error> {
    let algorithms: Vec<PlacementAlgorithm> = PlacementAlgorithm::STATIC.to_vec();
    let results = run_sweep(app, &algorithms, processor_counts)?;

    let pc = processor_counts.len();
    let mut raw = vec![vec![0u64; pc]; algorithms.len()];
    for (i, r) in results.iter().enumerate() {
        let (a, p) = (i / pc, i % pc);
        raw[a][p] = r.execution_time();
    }
    let random_idx = algorithms
        .iter()
        .position(|&a| a == PlacementAlgorithm::Random)
        .expect("STATIC includes RANDOM");
    let normalized = raw
        .iter()
        .map(|times| {
            times
                .iter()
                .enumerate()
                .map(|(p, &t)| t as f64 / raw[random_idx][p].max(1) as f64)
                .collect()
        })
        .collect();

    Ok(ExecTimeFigure {
        app: app.spec.name.to_owned(),
        processor_counts: processor_counts.to_vec(),
        algorithms,
        raw,
        normalized,
    })
}

/// Cache-miss components per algorithm per configuration — the paper's
/// Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct MissComponentsFigure {
    /// Application name.
    pub app: String,
    /// Processor counts.
    pub processor_counts: Vec<usize>,
    /// Algorithms.
    pub algorithms: Vec<PlacementAlgorithm>,
    /// `breakdown[a][p]` = aggregated miss components.
    pub breakdown: Vec<Vec<MissBreakdown>>,
}

impl MissComponentsFigure {
    /// The breakdown of one algorithm at one processor count.
    pub fn get(&self, algo: PlacementAlgorithm, processors: usize) -> Option<&MissBreakdown> {
        let a = self.algorithms.iter().position(|&x| x == algo)?;
        let p = self
            .processor_counts
            .iter()
            .position(|&x| x == processors)?;
        Some(&self.breakdown[a][p])
    }
}

/// Runs the Figure 5 experiment for one application.
///
/// # Errors
///
/// Propagates placement/simulation failures.
pub fn miss_components_figure(
    app: &PreparedApp,
    processor_counts: &[usize],
    algorithms: &[PlacementAlgorithm],
) -> Result<MissComponentsFigure, Error> {
    let results = run_sweep(app, algorithms, processor_counts)?;
    let pc = processor_counts.len();
    let mut breakdown = vec![vec![MissBreakdown::default(); pc]; algorithms.len()];
    for (i, r) in results.iter().enumerate() {
        breakdown[i / pc][i % pc] = r.stats.total_misses();
    }
    Ok(MissComponentsFigure {
        app: app.spec.name.to_owned(),
        processor_counts: processor_counts.to_vec(),
        algorithms: algorithms.to_vec(),
        breakdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_workloads::{spec, GenOptions};

    fn tiny(name: &str) -> PreparedApp {
        PreparedApp::prepare(
            &spec(name).unwrap(),
            &GenOptions {
                scale: 0.002,
                seed: 21,
            },
        )
    }

    #[test]
    fn processor_count_filtering() {
        assert_eq!(default_processor_counts(16), vec![2, 4, 8, 16]);
        assert_eq!(default_processor_counts(8), vec![2, 4, 8]);
        assert_eq!(default_processor_counts(127), vec![2, 4, 8, 16]);
        assert_eq!(default_processor_counts(3), vec![2]);
    }

    #[test]
    fn exec_time_figure_normalizes_random_to_one() {
        let app = tiny("barnes-hut");
        let fig = exec_time_figure(&app, &[2, 4]).unwrap();
        for (p, _) in fig.processor_counts.iter().enumerate() {
            let r = fig.normalized_time(PlacementAlgorithm::Random, fig.processor_counts[p]);
            assert!((r.unwrap() - 1.0).abs() < 1e-12);
        }
        assert_eq!(fig.raw.len(), PlacementAlgorithm::STATIC.len());
        assert!(fig.raw.iter().flatten().all(|&t| t > 0));
    }

    #[test]
    fn miss_components_figure_shape() {
        let app = tiny("water");
        let algos = [PlacementAlgorithm::Random, PlacementAlgorithm::ShareRefs];
        let fig = miss_components_figure(&app, &[2, 4], &algos).unwrap();
        assert_eq!(fig.breakdown.len(), 2);
        assert_eq!(fig.breakdown[0].len(), 2);
        let b = fig.get(PlacementAlgorithm::Random, 2).unwrap();
        assert!(b.total() > 0);
        assert!(fig.get(PlacementAlgorithm::LoadBal, 2).is_none());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::experiment::PreparedApp;
    use placesim_workloads::{spec, GenOptions};

    /// Raw times and normalized values are mutually consistent.
    #[test]
    fn normalization_is_consistent_with_raw() {
        let app = PreparedApp::prepare(
            &spec("patch").unwrap(),
            &GenOptions {
                scale: 0.002,
                seed: 31,
            },
        );
        let fig = exec_time_figure(&app, &[2, 4]).unwrap();
        let random_idx = fig
            .algorithms
            .iter()
            .position(|&a| a == PlacementAlgorithm::Random)
            .unwrap();
        for (a, row) in fig.normalized.iter().enumerate() {
            for (p, &norm) in row.iter().enumerate() {
                let expect = fig.raw[a][p] as f64 / fig.raw[random_idx][p] as f64;
                assert!((norm - expect).abs() < 1e-9, "algo {a} p {p}");
            }
        }
        // Accessor agrees with the matrix.
        assert_eq!(
            fig.normalized_time(PlacementAlgorithm::LoadBal, 4),
            Some(
                fig.normalized[fig
                    .algorithms
                    .iter()
                    .position(|&a| a == PlacementAlgorithm::LoadBal)
                    .unwrap()][1]
            )
        );
        assert_eq!(fig.normalized_time(PlacementAlgorithm::LoadBal, 32), None);
    }
}
