//! Protocol differential and conservation suite.
//!
//! Three families of guarantees, over randomized programs, placements
//! and cache geometries (associativity 1 and 2):
//!
//! * **WI bit-identity** — `protocol=wi` is the pre-refactor machine.
//!   The serial engine must agree bit-for-bit (every [`ProcStats`]
//!   counter and the traffic matrix) with the parallel engine at 1, 2,
//!   4 and 8 simulation workers, and (under `reference-engine`) with
//!   the per-reference reference engine.
//! * **Message conservation** — for every protocol,
//!   `coherence_traffic = invalidations + invalidation misses +
//!   updates`, the buckets are disjoint (WI/MESI send no updates,
//!   Dragon sends no invalidations and takes no invalidation misses or
//!   upgrades), and sent message counts reconcile with received ones.
//! * **Protocol orderings** — MESI's exclusive-clean fill can only
//!   remove upgrade transactions relative to WI, never add them, and
//!   never changes which references miss.
//!
//! The per-run structural invariants (MESI E-state exclusivity,
//! Dragon's no-stale-sharer law) live in the `audit`-feature checker,
//! which the engines invoke on every drained run in audit builds — the
//! proptests here exercise all three protocols, so audit CI runs sweep
//! those laws across the same randomized scenarios.

use placesim_machine::{
    simulate_parallel_with_traffic, simulate_with_traffic, ArchConfig, Protocol, SimStats,
};
use placesim_placement::PlacementMap;
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use proptest::prelude::*;

/// Random program over a small address universe to provoke sharing,
/// conflicts, invalidations, upgrades and updates.
fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    let r#ref = (0u8..3, 0u64..64);
    let thread = proptest::collection::vec(r#ref, 0..150);
    proptest::collection::vec(thread, 1..6).prop_map(|threads| {
        let traces: Vec<ThreadTrace> = threads
            .into_iter()
            .map(|refs| {
                refs.into_iter()
                    .map(|(kind, slot)| {
                        let addr = Address::new(slot * 16); // overlapping lines
                        match kind {
                            0 => MemRef::instr(addr),
                            1 => MemRef::read(addr),
                            _ => MemRef::write(addr),
                        }
                    })
                    .collect()
            })
            .collect();
        ProgramTrace::new("protocol-prop", traces)
    })
}

fn arb_placement(t: usize, seed: u64) -> PlacementMap {
    let p = 1 + (seed as usize % t.max(1));
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); p.min(t).max(1)];
    for i in 0..t {
        let k = (seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64) >> 7) as usize
            % clusters.len();
        clusters[k].push(i);
    }
    PlacementMap::from_clusters(clusters).expect("valid clusters")
}

/// Randomized geometry at associativity 1 and 2, per protocol.
fn arb_config(protocol: Protocol) -> impl Strategy<Value = ArchConfig> {
    (0u8..3, 0u8..2, 0u64..3).prop_map(move |(geom, assoc, switch)| {
        let (cache, line) = match geom {
            0 => (256, 32),
            1 => (512, 32),
            _ => (1024, 64),
        };
        let mut builder = ArchConfig::builder();
        builder
            .cache_size(cache)
            .line_size(line)
            .associativity(1 + u32::from(assoc)) // 1- or 2-way
            .context_switch(1 + switch * 5)
            .protocol(protocol);
        builder.build().expect("valid random config")
    })
}

/// Per-protocol conservation: the traffic buckets are disjoint, sum to
/// `coherence_traffic`, and every sent message is received somewhere.
fn assert_conservation(protocol: Protocol, stats: &SimStats) {
    let inval_sent: u64 = stats.per_proc().iter().map(|p| p.invalidations_sent).sum();
    let inval_recv: u64 = stats
        .per_proc()
        .iter()
        .map(|p| p.invalidations_received)
        .sum();
    let upd_sent: u64 = stats.per_proc().iter().map(|p| p.updates_sent).sum();
    let upd_recv: u64 = stats.per_proc().iter().map(|p| p.updates_received).sum();
    let upgrades: u64 = stats.per_proc().iter().map(|p| p.upgrades).sum();
    let inval_misses = stats.total_misses().invalidation;

    assert_eq!(inval_sent, inval_recv, "{protocol}: invalidations lost");
    assert_eq!(upd_sent, upd_recv, "{protocol}: updates lost");
    assert_eq!(
        stats.coherence_traffic(),
        inval_sent + inval_misses + upd_sent,
        "{protocol}: taxonomy buckets do not reconcile"
    );
    match protocol {
        Protocol::Wi | Protocol::Mesi => {
            assert_eq!(upd_sent, 0, "{protocol}: write-invalidate sent updates");
        }
        Protocol::Dragon => {
            assert_eq!(inval_sent, 0, "dragon sent invalidations");
            assert_eq!(inval_misses, 0, "dragon took invalidation misses");
            assert_eq!(upgrades, 0, "dragon counted upgrades");
        }
    }
}

/// Runs one scenario under `protocol` serially and at 2/4/8 parallel
/// workers, asserting bit-identical stats and traffic matrices, and
/// returns the serial stats.
fn simulate_all_engines(prog: &ProgramTrace, map: &PlacementMap, config: &ArchConfig) -> SimStats {
    let (serial, serial_traffic) = simulate_with_traffic(prog, map, config).expect("serial engine");
    for workers in [1, 2, 4, 8] {
        let (par, par_traffic) =
            simulate_parallel_with_traffic(prog, map, config, workers).expect("parallel engine");
        assert_eq!(
            serial,
            par,
            "parallel({workers}) diverges from serial under {}",
            config.protocol()
        );
        assert_eq!(
            serial_traffic,
            par_traffic,
            "parallel({workers}) traffic diverges under {}",
            config.protocol()
        );
    }
    #[cfg(feature = "reference-engine")]
    {
        let (slow, slow_traffic) =
            placesim_machine::reference::simulate_with_traffic(prog, map, config)
                .expect("reference engine");
        assert_eq!(
            serial,
            slow,
            "batched engine diverges from reference under {}",
            config.protocol()
        );
        assert_eq!(serial_traffic, slow_traffic, "reference traffic diverges");
    }
    serial
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// WI bit-identity across serial, parallel and (when built in) the
    /// reference engine, plus conservation.
    #[test]
    fn wi_is_bit_identical_across_engines(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(Protocol::Wi),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        let stats = simulate_all_engines(&prog, &map, &config);
        assert_conservation(Protocol::Wi, &stats);
    }

    /// MESI agrees with itself across engines (the parallel path falls
    /// back to serial), conserves messages, and only ever *removes*
    /// upgrade traffic relative to WI — the exclusive-clean fill turns
    /// first-writes to private lines silent without changing which
    /// references miss.
    #[test]
    fn mesi_conserves_and_only_reduces_upgrades(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(Protocol::Mesi),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        let stats = simulate_all_engines(&prog, &map, &config);
        assert_conservation(Protocol::Mesi, &stats);

        let wi_config = config.with_protocol(Protocol::Wi);
        let (wi, _) = simulate_with_traffic(&prog, &map, &wi_config).expect("wi engine");
        let upgrades = |s: &SimStats| s.per_proc().iter().map(|p| p.upgrades).sum::<u64>();
        assert!(
            upgrades(&stats) <= upgrades(&wi),
            "mesi added upgrade traffic: {} > {}",
            upgrades(&stats),
            upgrades(&wi)
        );
        assert_eq!(
            stats.total_misses(),
            wi.total_misses(),
            "mesi changed the miss taxonomy"
        );
        assert_eq!(stats.total_refs(), wi.total_refs());
    }

    /// Dragon agrees with itself across engines, conserves update
    /// messages, and is structurally invalidation-free.
    #[test]
    fn dragon_conserves_and_never_invalidates(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(Protocol::Dragon),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        let stats = simulate_all_engines(&prog, &map, &config);
        assert_conservation(Protocol::Dragon, &stats);
    }
}

/// A fixed producer/consumer sharing scenario where the protocols
/// measurably differ, pinning the qualitative orderings: Dragon turns
/// the write-invalidate ping-pong into update traffic (no invalidation
/// misses), and MESI silences the private-line upgrades WI pays for.
#[test]
fn protocols_differ_in_the_documented_directions() {
    // T0 repeatedly writes a line T1 repeatedly reads (ping-pong), and
    // T2 write-walks a private region (upgrade fodder under WI).
    let t0: ThreadTrace = (0..120)
        .map(|i| {
            if i % 2 == 0 {
                MemRef::write(Address::new(0x40))
            } else {
                MemRef::instr(Address::new(4 * i))
            }
        })
        .collect();
    let t1: ThreadTrace = (0..120)
        .map(|i| {
            if i % 2 == 0 {
                MemRef::read(Address::new(0x40))
            } else {
                MemRef::instr(Address::new(0x8000 + 4 * i))
            }
        })
        .collect();
    let t2: ThreadTrace = (0..60)
        .flat_map(|i| {
            let addr = Address::new(0x10000 + 64 * i);
            [MemRef::read(addr), MemRef::write(addr)]
        })
        .collect();
    let prog = ProgramTrace::new("ping-pong", vec![t0, t1, t2]);
    let map = PlacementMap::from_clusters(vec![vec![0], vec![1], vec![2]]).unwrap();

    let run = |protocol: Protocol| {
        let config = ArchConfig::paper_default().with_protocol(protocol);
        let stats = simulate_all_engines(&prog, &map, &config);
        assert_conservation(protocol, &stats);
        stats
    };
    let wi = run(Protocol::Wi);
    let mesi = run(Protocol::Mesi);
    let dragon = run(Protocol::Dragon);

    let upgrades = |s: &SimStats| s.per_proc().iter().map(|p| p.upgrades).sum::<u64>();
    // WI pays upgrades for T2's read-then-write walk; MESI fills those
    // lines Exclusive and silences every one of them.
    assert!(upgrades(&wi) > 0, "scenario must provoke upgrades under WI");
    assert!(upgrades(&mesi) < upgrades(&wi));
    // The ping-pong line causes invalidation misses under WI but none
    // under Dragon, which refreshes T1's copy in place.
    assert!(wi.total_misses().invalidation > 0);
    assert_eq!(dragon.total_misses().invalidation, 0);
    assert!(dragon.total_updates() > 0, "dragon must send updates");
    assert_eq!(wi.total_updates(), 0);
    assert_eq!(mesi.total_updates(), 0);
    // Fewer misses means Dragon finishes the ping-pong no later.
    assert!(dragon.total_misses().total() < wi.total_misses().total());
}
