//! Out-of-process crash-consistency proof: SIGKILL a `placesim-cli
//! sweep` mid-run, resume from its journal, and require the final
//! report JSON to be byte-identical to an uninterrupted run's.
//!
//! Gated on the `chaos` feature so it runs in the CI chaos job (the
//! test itself injects no faults — the fault is the SIGKILL — but it
//! belongs to the same crash-recovery acceptance suite).
#![cfg(all(unix, feature = "chaos"))]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_placesim-cli");

/// Sweep shape shared by the interrupted and uninterrupted runs. Twelve
/// cells at a non-trivial scale so a single-threaded child is reliably
/// still mid-sweep when the kill lands.
const SWEEP: &[&str] = &[
    "sweep",
    "water",
    "--scale",
    "0.01",
    "--seed",
    "3",
    "--algos",
    "RANDOM,LOAD-BAL,SHARE-REFS,SHARE-ADDR",
    "--procs",
    "2,4,8",
];

fn tmp_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("placesim-crash-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn sweep_cmd(journal: &Path, report: &Path, resume: bool) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args(SWEEP)
        .arg("--journal")
        .arg(journal)
        .arg("--report")
        .arg(report);
    if resume {
        cmd.arg("--resume");
    }
    // Single worker paces the child so the journal grows line by line.
    cmd.env("PLACESIM_THREADS", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd
}

fn journal_lines(path: &Path) -> usize {
    std::fs::read(path)
        .map(|d| d.iter().filter(|&&b| b == b'\n').count())
        .unwrap_or(0)
}

#[test]
fn sigkilled_sweep_resumes_to_byte_identical_report() {
    let dir = tmp_dir();

    // Reference: the uninterrupted run.
    let full_journal = dir.join("full.journal");
    let full_report = dir.join("full-report.json");
    let status = sweep_cmd(&full_journal, &full_report, false)
        .status()
        .expect("spawn uninterrupted sweep");
    assert!(status.success(), "uninterrupted sweep failed: {status}");
    let want = std::fs::read(&full_report).expect("uninterrupted report exists");

    // Victim: kill the child once a few cells are durably committed
    // (header + at least three cell lines) but before it can finish.
    let kill_journal = dir.join("killed.journal");
    let kill_report = dir.join("killed-report.json");
    let mut child = sweep_cmd(&kill_journal, &kill_report, false)
        .spawn()
        .expect("spawn victim sweep");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut outran_the_kill = false;
    loop {
        if journal_lines(&kill_journal) >= 4 {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll victim") {
            // The child finished before we could kill it (a very fast
            // machine). The resume below then exercises the committed
            // journal-is-complete path instead — still a valid check,
            // but flag it so the assertion message is honest.
            assert!(status.success(), "victim sweep failed early: {status}");
            outran_the_kill = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "victim sweep never reached 3 committed cells"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    if !outran_the_kill {
        child.kill().expect("SIGKILL victim"); // SIGKILL: no cleanup, no flush
    }
    child.wait().expect("reap victim");

    // Recovery: resume from whatever the kill left behind.
    let status = sweep_cmd(&kill_journal, &kill_report, true)
        .status()
        .expect("spawn resumed sweep");
    assert!(status.success(), "resumed sweep failed: {status}");

    let got = std::fs::read(&kill_report).expect("resumed report exists");
    assert_eq!(
        got,
        want,
        "resumed report must be byte-identical to the uninterrupted run{}",
        if outran_the_kill {
            " (victim finished before the kill)"
        } else {
            ""
        }
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_against_a_mismatched_grid_exits_with_corrupt_journal_code() {
    let dir = tmp_dir();
    let journal = dir.join("grid.journal");
    let report = dir.join("grid-report.json");
    let status = sweep_cmd(&journal, &report, false)
        .status()
        .expect("spawn sweep");
    assert!(status.success());

    // Same journal, different grid: refused with the dedicated exit code.
    let status = Command::new(BIN)
        .args([
            "sweep", "water", "--scale", "0.01", "--seed", "3", "--algos", "RANDOM", "--procs",
            "2", "--resume",
        ])
        .arg("--journal")
        .arg(&journal)
        .env("PLACESIM_THREADS", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn mismatched resume");
    assert_eq!(
        status.code(),
        Some(4),
        "corrupt/mismatched journal exit code"
    );
    std::fs::remove_dir_all(&dir).ok();
}
