//! Regenerates the paper's Table 5: the infinite-cache (8 MB) study,
//! normalized to LOAD-BAL.

fn main() {
    placesim_bench::print_table5();
}
