//! Design-choice ablation study: how each architectural knob moves the
//! *simulated* results, and whether the paper's conclusion (load balance
//! beats sharing-based placement) is robust to them.
//!
//! Knobs swept: context-switch cost, memory latency, cache line size,
//! and upgrade stalling. For each configuration we report LOAD-BAL and
//! SHARE-REFS execution times normalized to RANDOM — the paper's
//! conclusion holds whenever LOAD-BAL ≤ RANDOM and SHARE-REFS shows no
//! consistent advantage.

use placesim::report::{fmt_f, TextTable};
use placesim::run_placement_with_config;
use placesim_bench::{harness_opts, prepare};
use placesim_machine::{simulate, ArchConfig, ArchConfigBuilder};
use placesim_placement::{kl, PlacementAlgorithm};

fn main() {
    let apps = ["locusroute", "fft"];
    let processors = 8;
    println!(
        "Ablation: robustness of the placement conclusion to architectural\n\
         knobs (p = {processors}, scale {})\n",
        harness_opts().scale
    );

    let knobs: Vec<(&str, ArchConfig)> = vec![
        (
            "baseline (switch 6, latency 50, line 32)",
            ArchConfig::paper_default(),
        ),
        (
            "switch 0",
            build(|b| {
                b.context_switch(0);
            }),
        ),
        (
            "switch 16",
            build(|b| {
                b.context_switch(16);
            }),
        ),
        (
            "latency 25",
            build(|b| {
                b.memory_latency(25);
            }),
        ),
        (
            "latency 200",
            build(|b| {
                b.memory_latency(200);
            }),
        ),
        (
            "line 16",
            build(|b| {
                b.line_size(16);
            }),
        ),
        (
            "line 128",
            build(|b| {
                b.line_size(128);
            }),
        ),
        (
            "upgrade stalls",
            build(|b| {
                b.upgrade_stalls(true);
            }),
        ),
        (
            "memory occupancy 8",
            build(|b| {
                b.memory_occupancy(8);
            }),
        ),
        (
            "2-way associative",
            build(|b| {
                b.associativity(2);
            }),
        ),
        (
            "4-way associative",
            build(|b| {
                b.associativity(4);
            }),
        ),
    ];

    for app_name in apps {
        let app = prepare(app_name);
        println!("== {app_name} ==");
        let mut t = TextTable::new(["knob", "LOAD-BAL/RANDOM", "SHARE-REFS/RANDOM"]);
        for (label, base) in &knobs {
            // Use the app's paper cache size with the knob applied.
            let config = ArchConfigBuilder::from(*base)
                .cache_size(app.spec.cache_bytes())
                .build()
                .expect("valid config");
            let rnd =
                run_placement_with_config(&app, PlacementAlgorithm::Random, processors, &config)
                    .expect("random");
            let lb =
                run_placement_with_config(&app, PlacementAlgorithm::LoadBal, processors, &config)
                    .expect("load-bal");
            let sr =
                run_placement_with_config(&app, PlacementAlgorithm::ShareRefs, processors, &config)
                    .expect("share-refs");
            let r = rnd.execution_time() as f64;
            t.row([
                label.to_string(),
                fmt_f(lb.execution_time() as f64 / r, 3),
                fmt_f(sr.execution_time() as f64 / r, 3),
            ]);
        }
        println!("{t}");

        // A stronger sharing optimizer: Kernighan-Lin refinement of the
        // SHARE-REFS placement (maximizes in-cluster shared references
        // far beyond the greedy). If sharing-based placement could win,
        // this is where it would show.
        let config = ArchConfigBuilder::from(ArchConfig::paper_default())
            .cache_size(app.spec.cache_bytes())
            .build()
            .expect("valid config");
        let inputs = app.placement_inputs();
        let seed_map = PlacementAlgorithm::ShareRefs
            .place(&inputs, processors)
            .expect("share-refs");
        let before = kl::in_cluster_weight(&seed_map, app.sharing.pair_refs_matrix());
        let (kl_map, after) =
            kl::refine(&seed_map, app.sharing.pair_refs_matrix()).expect("kl refine");
        let kl_time = simulate(&app.prog, &kl_map, &config)
            .expect("simulate")
            .execution_time();
        let rnd_time =
            run_placement_with_config(&app, PlacementAlgorithm::Random, processors, &config)
                .expect("random")
                .execution_time();
        println!(
            "KL-refined SHARE-REFS: in-cluster sharing {} -> {} (+{:.1}%), exec/RANDOM = {:.3}\n",
            before,
            after,
            100.0 * (after as f64 / before.max(1) as f64 - 1.0),
            kl_time as f64 / rnd_time as f64
        );
    }
}

fn build(f: impl FnOnce(&mut ArchConfigBuilder)) -> ArchConfig {
    let mut b = ArchConfig::builder();
    f(&mut b);
    b.build().expect("valid ablation config")
}
