//! Timeline tracing properties: traced runs are bit-identical to
//! untraced ones, and (with the `obs` feature) the event counts
//! reconcile exactly with the aggregate statistics — the same
//! conservation discipline the invariant auditor enforces.

use placesim_machine::{simulate, simulate_traced, ArchConfig};
use placesim_placement::PlacementMap;
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use proptest::prelude::*;

/// Random program over a small address universe to provoke sharing and
/// conflicts (mirrors `proptests.rs`).
fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    let r#ref = (0u8..3, 0u64..64);
    let thread = proptest::collection::vec(r#ref, 0..120);
    proptest::collection::vec(thread, 1..6).prop_map(|threads| {
        let traces: Vec<ThreadTrace> = threads
            .into_iter()
            .map(|refs| {
                refs.into_iter()
                    .map(|(kind, slot)| {
                        let addr = Address::new(slot * 16);
                        match kind {
                            0 => MemRef::instr(addr),
                            1 => MemRef::read(addr),
                            _ => MemRef::write(addr),
                        }
                    })
                    .collect()
            })
            .collect();
        ProgramTrace::new("prop", traces)
    })
}

fn arb_placement(t: usize, seed: u64) -> PlacementMap {
    let p = 1 + (seed as usize % t.max(1));
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); p.min(t).max(1)];
    for i in 0..t {
        let k = (seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64) >> 7) as usize
            % clusters.len();
        clusters[k].push(i);
    }
    PlacementMap::from_clusters(clusters).expect("valid clusters")
}

fn tiny_config() -> ArchConfig {
    ArchConfig::builder()
        .cache_size(256)
        .line_size(32)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tracing must never perturb the simulation, in any build.
    #[test]
    fn tracing_never_perturbs(prog in arb_program(), seed in 1u64..5000) {
        let map = arb_placement(prog.thread_count(), seed);
        let plain = simulate(&prog, &map, &tiny_config()).unwrap();
        let (traced, _, _) = simulate_traced(&prog, &map, &tiny_config(), 1 << 16).unwrap();
        prop_assert_eq!(plain, traced);
    }
}

#[cfg(feature = "obs")]
mod traced_props {
    use super::*;
    use placesim_machine::EventKind;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every timeline count reconciles exactly with the aggregate
        /// statistics: misses, fills, invalidations, switches and
        /// directory transactions are each counted once per event.
        #[test]
        fn event_counts_reconcile_with_stats(prog in arb_program(), seed in 1u64..5000) {
            let map = arb_placement(prog.thread_count(), seed);
            let (stats, report, trace) =
                simulate_traced(&prog, &map, &tiny_config(), 1 << 16).unwrap();
            prop_assert!(report.enabled);
            // Generous capacity: nothing may have been overwritten, so
            // the retained window equals the full event stream.
            prop_assert_eq!(trace.dropped(), 0);

            let misses = stats.total_misses().total();
            let upgrades: u64 = stats.per_proc().iter().map(|p| p.upgrades).sum();
            let inv_sent: u64 = stats.per_proc().iter().map(|p| p.invalidations_sent).sum();
            let inv_recv: u64 =
                stats.per_proc().iter().map(|p| p.invalidations_received).sum();

            prop_assert_eq!(trace.count(EventKind::MissIssue), misses);
            prop_assert_eq!(trace.count(EventKind::MissFill), misses);
            prop_assert_eq!(trace.count(EventKind::InvalidationSend), inv_sent);
            prop_assert_eq!(trace.count(EventKind::InvalidationReceive), inv_recv);
            prop_assert_eq!(
                trace.count(EventKind::ContextSwitch),
                report.context_switches
            );
            // One directory transaction per miss fill and per upgrade.
            prop_assert_eq!(
                trace.count(EventKind::DirectoryTransition),
                misses + upgrades
            );

            // Run-slice hit payloads sum to the hits the histogram saw
            // (zero-hit dispatches record no slice and contribute 0).
            let slice_hits: u64 = trace
                .iter()
                .filter(|e| e.kind == EventKind::RunSlice)
                .map(|e| e.detail)
                .sum();
            prop_assert_eq!(slice_hits, report.hit_run_hits.sum());

            // Miss-issue payloads carry the paper's taxonomy: per-kind
            // event counts match the classified breakdown.
            let m = stats.total_misses();
            for (idx, expect) in [
                (0u64, m.compulsory),
                (1, m.intra_thread_conflict),
                (2, m.inter_thread_conflict),
                (3, m.invalidation),
            ] {
                let got = trace
                    .iter()
                    .filter(|e| e.kind == EventKind::MissIssue && e.detail == idx)
                    .count() as u64;
                prop_assert_eq!(got, expect, "miss kind {}", idx);
            }
        }

        /// Dragon write-update runs emit one `UpdateSend` per update a
        /// writer pushes and one `UpdateReceive` per sharer refreshed,
        /// reconciling exactly with the update-traffic statistics (the
        /// timeline gap this suite previously left open).
        #[test]
        fn dragon_update_events_reconcile_with_stats(
            prog in arb_program(),
            seed in 1u64..5000,
        ) {
            let map = arb_placement(prog.thread_count(), seed);
            let config = ArchConfig::builder()
                .cache_size(256)
                .line_size(32)
                .protocol(placesim_machine::Protocol::Dragon)
                .build()
                .unwrap();
            let (stats, _, trace) = simulate_traced(&prog, &map, &config, 1 << 16).unwrap();
            prop_assert_eq!(trace.dropped(), 0);

            let upd_sent: u64 = stats.per_proc().iter().map(|p| p.updates_sent).sum();
            let upd_recv: u64 = stats.per_proc().iter().map(|p| p.updates_received).sum();
            prop_assert_eq!(trace.count(EventKind::UpdateSend), upd_sent);
            prop_assert_eq!(trace.count(EventKind::UpdateReceive), upd_recv);
            // Dragon never invalidates: the update kinds fully replace
            // the invalidation kinds on this protocol's timeline.
            prop_assert_eq!(trace.count(EventKind::InvalidationSend), 0);
            prop_assert_eq!(trace.count(EventKind::InvalidationReceive), 0);
        }

        /// A tiny ring drops events but the per-kind counters stay
        /// exact, so reconciliation still holds.
        #[test]
        fn ring_overflow_keeps_counts_exact(prog in arb_program(), seed in 1u64..2000) {
            let map = arb_placement(prog.thread_count(), seed);
            let (stats, _, trace) = simulate_traced(&prog, &map, &tiny_config(), 8).unwrap();
            prop_assert!(trace.len() <= 8);
            prop_assert_eq!(
                trace.count(EventKind::MissIssue),
                stats.total_misses().total()
            );
            prop_assert_eq!(
                trace.total_recorded(),
                trace.dropped() + trace.len() as u64
            );
        }
    }

    /// A concrete producer-consumer workload yields sharing runs whose
    /// tenants alternate, and the Chrome export is well-formed JSON.
    #[test]
    fn sharing_runs_and_chrome_export_from_real_run() {
        // T0 and T1 ping-pong writes on one line, with spacers so the
        // tenures are long; line 0x2000 stays private to T0.
        let mut t0 = ThreadTrace::new();
        let mut t1 = ThreadTrace::new();
        for round in 0..4u64 {
            t0.push(MemRef::write(Address::new(0x1000)));
            t0.push(MemRef::write(Address::new(0x2000)));
            for i in 0..40 {
                t0.push(MemRef::instr(Address::new(4 * (round * 40 + i))));
                t1.push(MemRef::instr(Address::new(0x4000 + 4 * (round * 40 + i))));
            }
            t1.push(MemRef::write(Address::new(0x1000)));
        }
        let prog = ProgramTrace::new("pingpong", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let big = ArchConfig::builder().cache_size(1 << 20).build().unwrap();
        let (stats, _, trace) = simulate_traced(&prog, &map, &big, 1 << 16).unwrap();
        assert!(stats.total_misses().invalidation > 0);

        let runs = trace.sharing_runs();
        assert!(!runs.is_empty());
        // Only the ping-ponged line is shared; the private line and the
        // disjoint instruction lines produce no runs.
        let shared_line = runs[0].line;
        assert!(runs.iter().all(|r| r.line == shared_line), "{runs:?}");
        // Tenants alternate between the two threads.
        for pair in runs.windows(2) {
            assert_ne!(pair[0].thread, pair[1].thread, "{runs:?}");
        }

        let json = trace.to_chrome_json();
        placesim_obs::json::parse(&json).expect("chrome export parses strictly");
    }
}
