//! Memory-reference trace model for the placesim thread-placement study.
//!
//! This crate is the foundation of the reproduction of Thekkath & Eggers,
//! *Impact of Sharing-Based Thread Placement on Multithreaded
//! Architectures* (ISCA 1994). The paper's experiments are trace-driven:
//! every thread of an application is represented by a sequence of
//! instruction fetches and data reads/writes to a flat address space, and
//! both the static analyses (sharing metrics) and the machine simulator
//! consume those sequences.
//!
//! The crate provides:
//!
//! * [`MemRef`] / [`RefKind`] — a single memory reference,
//! * [`Address`] / [`ThreadId`] — newtypes for the two identifier domains,
//! * [`ThreadTrace`] — the packed, append-only trace of one thread,
//! * [`AddrCounts`] — aggregated per-address access counts, the currency
//!   of the fused generate-and-profile front end,
//! * [`ProgramTrace`] — all threads of one application plus metadata,
//! * [`io`] — a compact binary serialization of program traces,
//! * [`stats`] — cheap per-trace counting statistics,
//! * [`par`] — the worker-pool `parallel_map` shared by the analysis
//!   passes and the experiment sweeps (honours `PLACESIM_THREADS`).
//!
//! # Example
//!
//! ```
//! use placesim_trace::{Address, MemRef, ProgramTrace, RefKind, ThreadTrace};
//!
//! let mut t0 = ThreadTrace::new();
//! t0.push(MemRef::instr(Address::new(0x1000)));
//! t0.push(MemRef::read(Address::new(0x8000)));
//! t0.push(MemRef::write(Address::new(0x8000)));
//!
//! let program = ProgramTrace::new("tiny", vec![t0]);
//! assert_eq!(program.thread_count(), 1);
//! assert_eq!(program.total_refs(), 3);
//! assert_eq!(program.thread(placesim_trace::ThreadId::new(0)).data_len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
pub mod compress;
mod error;
pub mod hash;
pub mod io;
pub mod par;
mod program_trace;
mod record;
pub mod stats;
pub mod stream;
mod thread_trace;

pub use access::AddrCounts;
pub use error::TraceError;
pub use program_trace::ProgramTrace;
pub use record::{Address, LineAddr, MemRef, RefKind, ThreadId};
pub use thread_trace::{ThreadTrace, ThreadTraceIter};
