//! Architectural parameters (the paper's Table 3).

use crate::protocol::Protocol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from building an [`ArchConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A size parameter must be a power of two.
    NotPowerOfTwo {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: u64,
    },
    /// The cache must hold at least one line.
    CacheTooSmall {
        /// Cache size requested.
        cache: u64,
        /// Line size requested.
        line: u64,
    },
    /// `cache_size / line_size / associativity` does not divide exactly:
    /// the truncated quotient would silently drop part of the cache.
    InexactGeometry {
        /// Cache size requested.
        cache: u64,
        /// Line size requested.
        line: u64,
        /// Associativity requested.
        ways: u32,
    },
    /// The geometry yields zero cache sets.
    ZeroSets {
        /// Cache size requested.
        cache: u64,
        /// Line size requested.
        line: u64,
        /// Associativity requested.
        ways: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::CacheTooSmall { cache, line } => {
                write!(f, "cache of {cache} bytes cannot hold a {line}-byte line")
            }
            ConfigError::InexactGeometry { cache, line, ways } => {
                write!(
                    f,
                    "cache geometry {cache} B / {line} B lines / {ways} ways does not divide \
                     exactly (the truncated set count would drop part of the cache)"
                )
            }
            ConfigError::ZeroSets { cache, line, ways } => {
                write!(
                    f,
                    "cache geometry {cache} B / {line} B lines / {ways} ways yields zero sets"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Architectural inputs to the simulator (paper Table 3).
///
/// The paper's values: 1-cycle cache hit, 50-cycle memory latency
/// (an Alewife-like moderately loaded multipath network), 6-cycle
/// context switch (pipeline drain), direct-mapped caches of 32 KB or
/// 64 KB (8 MB ≈ infinite), round-robin switch-on-miss scheduling and a
/// distributed directory-based invalidation protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchConfig {
    cache_size: u64,
    line_size: u64,
    associativity: u32,
    memory_latency: u64,
    memory_occupancy: u64,
    context_switch: u64,
    upgrade_stalls: bool,
    protocol: Protocol,
}

impl ArchConfig {
    /// The paper's default configuration with a 64 KB cache (used by the
    /// medium-grain suite; coarse-grain apps plus Health and FFT use
    /// [`ArchConfig::with_cache_size`] at 32 KB).
    pub fn paper_default() -> Self {
        ArchConfig {
            cache_size: 64 * 1024,
            line_size: 32,
            associativity: 1,
            memory_latency: 50,
            memory_occupancy: 0,
            context_switch: 6,
            upgrade_stalls: false,
            protocol: Protocol::Wi,
        }
    }

    /// The paper's "effectively infinite" configuration: an 8 MB cache
    /// that eliminates capacity and conflict misses (§4.3).
    pub fn infinite_cache() -> Self {
        ArchConfig {
            cache_size: 8 * 1024 * 1024,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different cache size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `bytes` is not a power of two or is
    /// smaller than the line size.
    pub fn with_cache_size(self, bytes: u64) -> Result<Self, ConfigError> {
        ArchConfigBuilder::from(self).cache_size(bytes).build()
    }

    /// Returns a copy simulating a different coherence protocol. The
    /// protocol does not participate in geometry validation, so this
    /// cannot fail.
    #[must_use]
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Starts building a configuration from the paper defaults.
    pub fn builder() -> ArchConfigBuilder {
        ArchConfigBuilder::from(Self::paper_default())
    }

    /// Cache size in bytes.
    pub fn cache_size(&self) -> u64 {
        self.cache_size
    }

    /// Cache line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of cache sets (`cache_size / line_size / associativity`).
    ///
    /// The division is exact by construction: [`ArchConfigBuilder::build`]
    /// rejects inexact or zero-set geometry
    /// ([`ConfigError::InexactGeometry`] / [`ConfigError::ZeroSets`]), so
    /// this can no longer silently truncate.
    pub fn num_sets(&self) -> u64 {
        debug_assert_eq!(
            self.cache_size % (self.line_size * u64::from(self.associativity)),
            0,
            "validated config has exact geometry"
        );
        self.cache_size / self.line_size / u64::from(self.associativity)
    }

    /// Validates this configuration's cache geometry and returns the set
    /// count. [`ArchConfigBuilder::build`] enforces this, so a built
    /// config always passes; the check exists for values constructed by
    /// deserialization or future non-builder paths.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InexactGeometry`] if
    /// `cache_size / line_size / associativity` does not divide exactly
    /// (the pre-fix code silently truncated here), or
    /// [`ConfigError::ZeroSets`] if the quotient is zero.
    pub fn check_geometry(&self) -> Result<u64, ConfigError> {
        check_geometry(self.cache_size, self.line_size, self.associativity)
    }

    /// The coherence protocol the machine runs.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Cache associativity: 1 (direct-mapped, the paper's configuration)
    /// unless overridden for the set-associativity ablation the paper
    /// suggests in §4.1.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Remote memory latency in cycles.
    pub fn memory_latency(&self) -> u64 {
        self.memory_latency
    }

    /// Cycles the (single) memory channel is occupied per line fill.
    /// The paper's multipath network is contention-free (§3.2), so the
    /// default is 0; nonzero values serialize concurrent misses and model
    /// a bandwidth-limited interconnect (ablation).
    pub fn memory_occupancy(&self) -> u64 {
        self.memory_occupancy
    }

    /// Context-switch (pipeline drain) cost in cycles.
    pub fn context_switch(&self) -> u64 {
        self.context_switch
    }

    /// Whether a write hit that must invalidate remote sharers stalls the
    /// writer for the memory latency (ablation; the paper's accounting
    /// treats invalidations as fire-and-forget, so the default is
    /// `false`).
    pub fn upgrade_stalls(&self) -> bool {
        self.upgrade_stalls
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The geometry validation behind [`ArchConfig::check_geometry`] and
/// [`ArchConfigBuilder::build`].
fn check_geometry(cache: u64, line: u64, ways: u32) -> Result<u64, ConfigError> {
    let span = line.saturating_mul(u64::from(ways));
    if span == 0 || !cache.is_multiple_of(span) {
        return Err(ConfigError::InexactGeometry { cache, line, ways });
    }
    let sets = cache / span;
    if sets == 0 {
        return Err(ConfigError::ZeroSets { cache, line, ways });
    }
    Ok(sets)
}

/// Builder for [`ArchConfig`].
#[derive(Debug, Clone, Copy)]
pub struct ArchConfigBuilder {
    cache_size: u64,
    line_size: u64,
    associativity: u32,
    memory_latency: u64,
    memory_occupancy: u64,
    context_switch: u64,
    upgrade_stalls: bool,
    protocol: Protocol,
}

impl From<ArchConfig> for ArchConfigBuilder {
    fn from(c: ArchConfig) -> Self {
        ArchConfigBuilder {
            cache_size: c.cache_size,
            line_size: c.line_size,
            associativity: c.associativity,
            memory_latency: c.memory_latency,
            memory_occupancy: c.memory_occupancy,
            context_switch: c.context_switch,
            upgrade_stalls: c.upgrade_stalls,
            protocol: c.protocol,
        }
    }
}

impl ArchConfigBuilder {
    /// Sets the cache size in bytes (power of two).
    pub fn cache_size(&mut self, bytes: u64) -> &mut Self {
        self.cache_size = bytes;
        self
    }

    /// Sets the line size in bytes (power of two).
    pub fn line_size(&mut self, bytes: u64) -> &mut Self {
        self.line_size = bytes;
        self
    }

    /// Sets the cache associativity (power of two; 1 = direct-mapped).
    pub fn associativity(&mut self, ways: u32) -> &mut Self {
        self.associativity = ways;
        self
    }

    /// Sets the remote memory latency in cycles.
    pub fn memory_latency(&mut self, cycles: u64) -> &mut Self {
        self.memory_latency = cycles;
        self
    }

    /// Sets the memory-channel occupancy per fill (0 = contention-free).
    pub fn memory_occupancy(&mut self, cycles: u64) -> &mut Self {
        self.memory_occupancy = cycles;
        self
    }

    /// Sets the context-switch cost in cycles.
    pub fn context_switch(&mut self, cycles: u64) -> &mut Self {
        self.context_switch = cycles;
        self
    }

    /// Enables or disables write-upgrade stalling.
    pub fn upgrade_stalls(&mut self, on: bool) -> &mut Self {
        self.upgrade_stalls = on;
        self
    }

    /// Sets the coherence protocol.
    pub fn protocol(&mut self, protocol: Protocol) -> &mut Self {
        self.protocol = protocol;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a size is not a power of two, the
    /// cache cannot hold one line, or the set-count division
    /// `cache_size / line_size / associativity` is inexact or zero
    /// (which [`ArchConfig::num_sets`] would previously have silently
    /// truncated).
    pub fn build(&self) -> Result<ArchConfig, ConfigError> {
        if !self.cache_size.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "cache size",
                value: self.cache_size,
            });
        }
        if !self.line_size.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                value: self.line_size,
            });
        }
        if !u64::from(self.associativity).is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "associativity",
                value: u64::from(self.associativity),
            });
        }
        if self.cache_size < self.line_size * u64::from(self.associativity) {
            return Err(ConfigError::CacheTooSmall {
                cache: self.cache_size,
                line: self.line_size,
            });
        }
        check_geometry(self.cache_size, self.line_size, self.associativity)?;
        Ok(ArchConfig {
            cache_size: self.cache_size,
            line_size: self.line_size,
            associativity: self.associativity,
            memory_latency: self.memory_latency,
            memory_occupancy: self.memory_occupancy,
            context_switch: self.context_switch,
            upgrade_stalls: self.upgrade_stalls,
            protocol: self.protocol,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table3() {
        let c = ArchConfig::paper_default();
        assert_eq!(c.cache_size(), 65536);
        assert_eq!(c.line_size(), 32);
        assert_eq!(c.num_sets(), 2048);
        assert_eq!(c.associativity(), 1);
        assert_eq!(c.memory_latency(), 50);
        assert_eq!(c.context_switch(), 6);
        assert!(!c.upgrade_stalls());
        assert_eq!(c.memory_occupancy(), 0);
        assert_eq!(ArchConfig::default(), c);
    }

    #[test]
    fn infinite_cache_is_8mb() {
        let c = ArchConfig::infinite_cache();
        assert_eq!(c.cache_size(), 8 * 1024 * 1024);
        assert_eq!(c.num_sets(), 262_144);
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            ArchConfig::builder().cache_size(1000).build(),
            Err(ConfigError::NotPowerOfTwo {
                what: "cache size",
                ..
            })
        ));
        assert!(matches!(
            ArchConfig::builder().line_size(24).build(),
            Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                ..
            })
        ));
        assert!(matches!(
            ArchConfig::builder().cache_size(16).line_size(32).build(),
            Err(ConfigError::CacheTooSmall { .. })
        ));
        let ok = ArchConfig::builder()
            .cache_size(32 * 1024)
            .memory_latency(100)
            .context_switch(2)
            .upgrade_stalls(true)
            .build()
            .unwrap();
        assert_eq!(ok.cache_size(), 32 * 1024);
        assert_eq!(ok.memory_latency(), 100);
        assert_eq!(ok.context_switch(), 2);
        assert!(ok.upgrade_stalls());
    }

    #[test]
    fn memory_occupancy_builder() {
        let c = ArchConfig::builder().memory_occupancy(4).build().unwrap();
        assert_eq!(c.memory_occupancy(), 4);
    }

    #[test]
    fn associativity_validated_and_applied() {
        let c = ArchConfig::builder().associativity(4).build().unwrap();
        assert_eq!(c.associativity(), 4);
        assert_eq!(c.num_sets(), 64 * 1024 / 32 / 4);
        assert!(matches!(
            ArchConfig::builder().associativity(3).build(),
            Err(ConfigError::NotPowerOfTwo {
                what: "associativity",
                ..
            })
        ));
        // A fully associative demand that exceeds the cache is rejected.
        assert!(matches!(
            ArchConfig::builder()
                .cache_size(64)
                .associativity(4)
                .build(),
            Err(ConfigError::CacheTooSmall { .. })
        ));
    }

    #[test]
    fn with_cache_size_shortcut() {
        let c = ArchConfig::paper_default()
            .with_cache_size(32 * 1024)
            .unwrap();
        assert_eq!(c.cache_size(), 32 * 1024);
        assert!(ArchConfig::paper_default().with_cache_size(31).is_err());
    }

    #[test]
    fn error_display() {
        let e = ConfigError::NotPowerOfTwo {
            what: "cache size",
            value: 7,
        };
        assert!(e.to_string().contains("power of two"));
        let e = ConfigError::CacheTooSmall {
            cache: 16,
            line: 32,
        };
        assert!(e.to_string().contains("cannot hold"));
        let e = ConfigError::InexactGeometry {
            cache: 1000,
            line: 48,
            ways: 3,
        };
        assert!(e.to_string().contains("does not divide"));
        let e = ConfigError::ZeroSets {
            cache: 0,
            line: 32,
            ways: 1,
        };
        assert!(e.to_string().contains("zero sets"));
    }

    #[test]
    fn protocol_defaults_to_write_invalidate_and_builds() {
        assert_eq!(ArchConfig::paper_default().protocol(), Protocol::Wi);
        let c = ArchConfig::builder()
            .protocol(Protocol::Dragon)
            .build()
            .unwrap();
        assert_eq!(c.protocol(), Protocol::Dragon);
        // Protocol selection is orthogonal to geometry.
        assert_eq!(c.num_sets(), ArchConfig::paper_default().num_sets());
        let m = ArchConfigBuilder::from(c).protocol(Protocol::Mesi).build();
        assert_eq!(m.unwrap().protocol(), Protocol::Mesi);
    }

    /// Regression: these geometries used to flow straight into
    /// `num_sets`'s truncating division. `ArchConfig { cache_size: 1000,
    /// line_size: 48, associativity: 3, .. }` would have reported
    /// `1000 / 48 / 3 = 6` sets, silently modeling a 864-byte cache.
    /// Every non-builder construction path must now be caught by
    /// `check_geometry`.
    #[test]
    fn inexact_geometry_rejected_not_truncated() {
        let truncating = ArchConfig {
            cache_size: 1000,
            line_size: 48,
            associativity: 3,
            ..ArchConfig::paper_default()
        };
        assert_eq!(
            truncating.check_geometry(),
            Err(ConfigError::InexactGeometry {
                cache: 1000,
                line: 48,
                ways: 3,
            })
        );
        // 2^7 lines over 3 ways: pow2 everywhere except the way count,
        // the exact shape the old code truncated to 42 sets.
        let uneven_ways = ArchConfig {
            cache_size: 4096,
            line_size: 32,
            associativity: 3,
            ..ArchConfig::paper_default()
        };
        assert_eq!(
            uneven_ways.check_geometry(),
            Err(ConfigError::InexactGeometry {
                cache: 4096,
                line: 32,
                ways: 3,
            })
        );
        // A zeroed cache yields zero sets instead of the old `0 / n = 0`
        // silently flowing into the cache constructor's pow2 assert.
        let zeroed = ArchConfig {
            cache_size: 0,
            ..ArchConfig::paper_default()
        };
        assert!(matches!(
            zeroed.check_geometry(),
            Err(ConfigError::ZeroSets { cache: 0, .. })
        ));
        // A zero line size can no longer divide-by-zero or truncate.
        let zero_line = ArchConfig {
            line_size: 0,
            ..ArchConfig::paper_default()
        };
        assert!(matches!(
            zero_line.check_geometry(),
            Err(ConfigError::InexactGeometry { line: 0, .. })
        ));
        // Valid geometry reports the exact set count.
        assert_eq!(ArchConfig::paper_default().check_geometry(), Ok(2048));
    }

    /// `build()` enforces the same geometry law, so configurations that
    /// reach an engine always have an exact set count.
    #[test]
    fn build_enforces_exact_geometry() {
        // Power-of-two inputs large enough to hold a line always divide
        // exactly; sweep a sample to pin that build() and check_geometry
        // agree (no false rejections).
        for shift in 5..22 {
            let c = ArchConfig::builder().cache_size(1 << shift).build();
            match c {
                Ok(cfg) => assert_eq!(cfg.check_geometry().unwrap(), cfg.num_sets()),
                Err(e) => assert!(matches!(e, ConfigError::CacheTooSmall { .. })),
            }
        }
    }
}
