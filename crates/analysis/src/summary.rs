//! Table-2 style program characteristic summaries.

use crate::nway::{nway_stats, pairwise_stats};
use crate::sharing::SharingAnalysis;
use placesim_trace::stats::MeanDev;
use placesim_trace::{ProgramTrace, ThreadTrace};
use serde::{Deserialize, Serialize};

/// One row of the paper's Table 2 ("Measured Characteristics"):
/// pairwise and N-way sharing, references per shared address, percentage
/// of shared references, and simulated thread length — each as a mean
/// with a percentage deviation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacteristicsRow {
    /// Application name.
    pub app: String,
    /// Number of threads.
    pub threads: usize,
    /// Pairwise shared references between thread pairs.
    pub pairwise_sharing: MeanDev,
    /// In-cluster shared references with the maximum threads/processor
    /// (clusters of ⌈t/2⌉ threads, i.e. two processors).
    pub nway_sharing: MeanDev,
    /// References per shared address, over threads.
    pub refs_per_shared_addr: MeanDev,
    /// Percentage of data references that touch shared addresses, over
    /// threads.
    pub shared_refs_percent: MeanDev,
    /// Thread length in instructions, over threads.
    pub thread_length: MeanDev,
}

impl CharacteristicsRow {
    /// Number of random balanced partitions sampled for the N-way column.
    pub const NWAY_SAMPLES: usize = 32;

    /// Measures every Table-2 characteristic of `prog`.
    ///
    /// `seed` controls the sampling of N-way clusters (deterministic per
    /// seed).
    pub fn measure(prog: &ProgramTrace, seed: u64) -> Self {
        let sharing = SharingAnalysis::measure(prog);
        Self::from_sharing(prog, &sharing, seed)
    }

    /// Same as [`CharacteristicsRow::measure`] but reuses a pre-computed
    /// sharing analysis.
    pub fn from_sharing(prog: &ProgramTrace, sharing: &SharingAnalysis, seed: u64) -> Self {
        Self::from_sharing_parts(
            prog.name(),
            prog.threads().iter().map(ThreadTrace::instr_len),
            sharing,
            seed,
        )
    }

    /// Builds the row from the raw parts a streaming reader can supply
    /// without materializing the trace: the application name, per-thread
    /// instruction counts (e.g. from the v3 footer totals), and a
    /// pre-computed sharing analysis. [`Self::from_sharing`] delegates
    /// here, so the two paths cannot diverge.
    pub fn from_sharing_parts(
        app: &str,
        instr_lengths: impl IntoIterator<Item = u64>,
        sharing: &SharingAnalysis,
        seed: u64,
    ) -> Self {
        let t = sharing.thread_count();
        let nway_cluster = t.div_ceil(2).max(1);
        CharacteristicsRow {
            app: app.to_owned(),
            threads: t,
            pairwise_sharing: pairwise_stats(sharing),
            nway_sharing: nway_stats(sharing, nway_cluster, Self::NWAY_SAMPLES, seed),
            refs_per_shared_addr: MeanDev::from_values(
                sharing
                    .per_thread()
                    .iter()
                    .map(|s| s.refs_per_shared_addr()),
            ),
            shared_refs_percent: MeanDev::from_values(
                sharing.per_thread().iter().map(|s| s.shared_percent()),
            ),
            thread_length: MeanDev::from_values(instr_lengths.into_iter().map(|n| n as f64)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef, ThreadTrace};

    fn prog() -> ProgramTrace {
        let mk = |instrs: usize, shared: usize, private: usize, base: u64| -> ThreadTrace {
            let mut t = ThreadTrace::new();
            for i in 0..instrs {
                t.push(MemRef::instr(Address::new(4 * i as u64)));
            }
            for _ in 0..shared {
                t.push(MemRef::read(Address::new(0x10_0000)));
            }
            for i in 0..private {
                t.push(MemRef::write(Address::new(base + i as u64 * 8)));
            }
            t
        };
        ProgramTrace::new(
            "row",
            vec![
                mk(100, 4, 2, 0x20_0000),
                mk(200, 4, 2, 0x30_0000),
                mk(300, 4, 2, 0x40_0000),
            ],
        )
    }

    #[test]
    fn measures_all_columns() {
        let row = CharacteristicsRow::measure(&prog(), 1);
        assert_eq!(row.app, "row");
        assert_eq!(row.threads, 3);
        assert!((row.thread_length.mean - 200.0).abs() < 1e-9);
        assert!(row.thread_length.dev_percent() > 0.0);
        // Every thread: 4 shared refs of 6 data refs.
        assert!((row.shared_refs_percent.mean - 100.0 * 4.0 / 6.0).abs() < 1e-9);
        assert!(row.shared_refs_percent.std_dev < 1e-9);
        // One shared address with 4 refs per thread.
        assert!((row.refs_per_shared_addr.mean - 4.0).abs() < 1e-12);
        // Pairwise: 4 + 4 = 8 for each of the 3 pairs.
        assert!((row.pairwise_sharing.mean - 8.0).abs() < 1e-12);
        assert!(row.pairwise_sharing.std_dev < 1e-12);
        assert!(row.nway_sharing.mean > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CharacteristicsRow::measure(&prog(), 9);
        let b = CharacteristicsRow::measure(&prog(), 9);
        assert_eq!(a, b);
    }
}
