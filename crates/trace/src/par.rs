//! Small parallel-map helpers shared by trace analysis and experiment
//! sweeps.
//!
//! This module lives in the trace crate (the bottom of the dependency
//! stack) so both the analysis passes and the high-level sweep runner
//! can fan work out over the same pool discipline; `placesim`
//! re-exports it unchanged.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Maximum worker threads a [`parallel_map`] call may use.
///
/// Defaults to `std::thread::available_parallelism()`; the
/// `PLACESIM_THREADS` environment variable overrides it (values < 1 or
/// unparsable are ignored), so benchmark and CI runs can pin the worker
/// count — `PLACESIM_THREADS=1` forces fully serial execution without
/// code edits.
pub fn max_workers() -> usize {
    std::env::var("PLACESIM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Applies `f` to every item on a pool of worker threads and returns the
/// results in input order.
///
/// The worker count is `min(items, max_workers())` (see
/// [`max_workers`] for the `PLACESIM_THREADS` override). `f` must be
/// `Sync` (it runs concurrently); results land in lock-free
/// [`OnceLock`] slots, so per-item overhead is tiny compared to a
/// simulation run. If `f` panics, the panic is re-raised on the calling
/// thread with the index of the item that caused it.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    match try_parallel_map(items, |item| Ok::<R, std::convert::Infallible>(f(item))) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// Fallible [`parallel_map`]: applies `f` to every item in parallel, but
/// the first `Err` raises a shared stop flag so workers stop claiming
/// new items, and that error is returned. When several items fail
/// concurrently, the error with the smallest item index wins, keeping
/// the result deterministic.
///
/// # Errors
///
/// Returns the lowest-indexed error produced before the sweep stopped.
pub fn try_parallel_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    // `Sync` because workers share `&Vec<OnceLock<R>>`; results are plain
    // data (stats, placements), so this costs callers nothing.
    R: Send + Sync,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = max_workers().min(n);
    if workers <= 1 {
        // Same contract as the threaded path: errors short-circuit and
        // panics carry the failing item's index.
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                catch_unwind(AssertUnwindSafe(|| f(item)))
                    .unwrap_or_else(|payload| repanic_with_index(i, payload))
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    // Failures are rare (they end the sweep), so a mutex-guarded list
    // costs nothing on the happy path where it is never touched.
    let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(Ok(r)) => {
                        let filled = slots[i].set(r).is_ok();
                        debug_assert!(filled, "item {i} claimed twice");
                    }
                    Ok(Err(e)) => {
                        stop.store(true, Ordering::Relaxed);
                        errors.lock().expect("error list poisoned").push((i, e));
                        break;
                    }
                    Err(payload) => {
                        stop.store(true, Ordering::Relaxed);
                        panics
                            .lock()
                            .expect("panic list poisoned")
                            .push((i, payload));
                        break;
                    }
                }
            });
        }
    });

    let mut panics = panics.into_inner().expect("panic list poisoned");
    if let Some(min_at) = panics
        .iter()
        .enumerate()
        .min_by_key(|(_, (i, _))| *i)
        .map(|(at, _)| at)
    {
        let (i, payload) = panics.swap_remove(min_at);
        repanic_with_index(i, payload);
    }

    let errors = errors.into_inner().expect("error list poisoned");
    if let Some((_, e)) = errors.into_iter().min_by_key(|(i, _)| *i) {
        return Err(e);
    }

    Ok(slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled"))
        .collect())
}

/// Re-raises a caught worker panic, prefixing string payloads with the
/// index of the item whose closure panicked.
fn repanic_with_index(i: usize, payload: Box<dyn std::any::Any + Send>) -> ! {
    if let Some(msg) = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
    {
        panic!("parallel_map: worker panicked on item {i}: {msg}");
    }
    eprintln!("parallel_map: worker panicked on item {i}");
    resume_unwind(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_positive() {
        // Whatever PLACESIM_THREADS or the host says, the pool is usable.
        assert!(max_workers() >= 1);
    }

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_state_is_shared_immutably() {
        let table: Vec<u64> = (0..1000).collect();
        let items: Vec<usize> = (0..50).collect();
        let out = parallel_map(&items, |&i| table[i * 2]);
        assert_eq!(out[10], 20);
    }

    #[test]
    fn try_map_happy_path() {
        let items: Vec<u64> = (0..40).collect();
        let out: Result<Vec<u64>, ()> = try_parallel_map(&items, |&x| Ok(x + 1));
        assert_eq!(out.unwrap()[39], 40);
    }

    #[test]
    fn first_error_wins_deterministically() {
        // Every item fails; the error carried back must be item 0's,
        // regardless of which worker finished (or stopped) first.
        let items: Vec<usize> = (0..64).collect();
        let out: Result<Vec<()>, usize> = try_parallel_map(&items, |&i| Err(i));
        assert_eq!(out.unwrap_err(), 0);
    }

    #[test]
    fn error_raises_stop_flag() {
        let executed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..10_000).collect();
        let out: Result<Vec<()>, &'static str> = try_parallel_map(&items, |&i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err("boom")
            } else {
                Ok(())
            }
        });
        assert_eq!(out.unwrap_err(), "boom");
        // Workers stop claiming once the flag is up; with 10k items and
        // item 0 failing on a worker's first claim, a full sweep means
        // cancellation never happened.
        assert!(
            executed.load(Ordering::Relaxed) < items.len(),
            "stop flag did not short-circuit the sweep"
        );
    }

    #[test]
    fn panic_carries_item_index() {
        let items: Vec<usize> = (0..4).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, |&i| {
                if i == 3 {
                    panic!("exploded");
                }
                i
            })
        }))
        .expect_err("worker panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic message is a String");
        assert!(msg.contains("item 3"), "message was: {msg}");
        assert!(msg.contains("exploded"), "message was: {msg}");
    }
}
