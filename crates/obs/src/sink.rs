//! Output sinks: JSONL appenders and atomic single-file writes.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Writes `contents` to `path` atomically **and durably**: the bytes go
/// to a `.tmp` sibling first, are fsynced, renamed over the target, and
/// then the parent directory is fsynced too. Without the final
/// directory fsync a crash shortly after the rename can surface the old
/// file, an empty file, or no file at all on journaling filesystems —
/// the rename itself lives in the directory's metadata, which has its
/// own writeback schedule.
///
/// # Errors
///
/// Propagates the underlying filesystem error; on failure the partial
/// temporary file is removed (best-effort) and `path` is untouched.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        fsync_dir(parent_dir(path))
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// The directory holding `path` (`.` when the path has no parent
/// component, e.g. a bare relative filename).
pub fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Fsyncs a directory, making its entries (newly created files,
/// renames) durable against power loss. On platforms where directories
/// cannot be opened for syncing (non-unix), this is a no-op.
///
/// # Errors
///
/// Propagates the underlying filesystem error (unix only).
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// The `.tmp` sibling path used by [`write_atomic`] (exposed so callers
/// doing streaming writes can use the same write-then-rename protocol).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// An append-only JSON-lines sink: one complete JSON document per line.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncating) the sink file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Appends one JSON document as a line. Interior newlines are not
    /// checked — callers emit single-line JSON (the [`crate::json`]
    /// writer never emits newlines).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn append(&mut self, json: &str) -> io::Result<()> {
        self.out.write_all(json.as_bytes())?;
        self.out.write_all(b"\n")
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flush error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("placesim-obs-test-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_roundtrip() {
        let path = tmp_dir().join("atomic.json");
        write_atomic(&path, b"{\"a\": 1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\": 1}");
        assert!(!tmp_sibling(&path).exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tmp_sibling_appends_suffix() {
        let p = Path::new("/x/y/out.json");
        assert_eq!(tmp_sibling(p), Path::new("/x/y/out.json.tmp"));
    }

    #[test]
    fn parent_dir_handles_bare_filenames() {
        assert_eq!(parent_dir(Path::new("/x/y/out.json")), Path::new("/x/y"));
        assert_eq!(parent_dir(Path::new("out.json")), Path::new("."));
        assert_eq!(parent_dir(Path::new("/")), Path::new("."));
    }

    #[test]
    fn fsync_dir_syncs_real_directories() {
        fsync_dir(&tmp_dir()).unwrap();
        #[cfg(unix)]
        assert!(fsync_dir(Path::new("/nonexistent-placesim-dir")).is_err());
    }

    /// Regression test for the durability fix: `write_atomic` must
    /// succeed for a target given as a bare relative filename (the
    /// parent-directory fsync has to resolve to `.`, not to an empty
    /// path), and must leave neither a temp sibling nor a torn target.
    #[test]
    fn atomic_write_fsyncs_parent_of_bare_filename() {
        let dir = tmp_dir();
        let prev = std::env::current_dir().unwrap();
        // Serialize with other tests mutating cwd (there are none today,
        // but keep the window tiny regardless).
        std::env::set_current_dir(&dir).unwrap();
        let result = write_atomic(Path::new("bare.json"), b"{}");
        std::env::set_current_dir(prev).unwrap();
        result.unwrap();
        assert_eq!(fs::read_to_string(dir.join("bare.json")).unwrap(), "{}");
        assert!(!dir.join("bare.json.tmp").exists());
        fs::remove_file(dir.join("bare.json")).ok();
    }

    #[test]
    fn jsonl_appends_lines() {
        let path = tmp_dir().join("log.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.append("{\"n\": 1}").unwrap();
        sink.append("{\"n\": 2}").unwrap();
        sink.flush().unwrap();
        drop(sink);
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(crate::json::balanced));
        fs::remove_file(&path).unwrap();
    }
}
