//! End-to-end pipeline tests: workload generation → static analysis →
//! placement → simulation, across crates.

use placesim_repro::prelude::*;

fn opts() -> GenOptions {
    GenOptions {
        scale: 0.003,
        seed: 2024,
    }
}

#[test]
fn every_app_runs_every_algorithm_end_to_end() {
    for app_spec in suite() {
        let mut app = PreparedApp::prepare(&app_spec, &opts());
        // Skip probe for the 127-thread app to keep this test fast; the
        // static algorithms don't need it.
        let algos: Vec<PlacementAlgorithm> = PlacementAlgorithm::STATIC.to_vec();
        let p = 4.min(app.threads());
        for algo in algos {
            let r = placesim::run_placement(&app, algo, p)
                .unwrap_or_else(|e| panic!("{} {algo}: {e}", app_spec.name));
            assert_eq!(
                r.stats.total_refs(),
                app.prog.total_refs(),
                "{} {algo}: reference conservation",
                app_spec.name
            );
            assert!(r.execution_time() > 0);
        }
        // One dynamic-probe-driven placement per app (cheap at this scale).
        app.run_probe().expect("probe");
        let r = placesim::run_placement(&app, PlacementAlgorithm::CoherenceTraffic, p)
            .expect("coherence placement");
        assert!(r.execution_time() > 0);
    }
}

#[test]
fn trace_io_roundtrip_preserves_analysis() {
    use placesim_repro::analysis::SharingAnalysis;
    use placesim_repro::trace::io;

    let spec = spec("pverify").unwrap();
    let prog = generate(&spec, &opts());
    let bytes = io::to_bytes(&prog).expect("serialize");
    let back = io::from_bytes(&bytes).expect("deserialize");
    assert_eq!(back, prog);

    let a = SharingAnalysis::measure(&prog);
    let b = SharingAnalysis::measure(&back);
    assert_eq!(
        a, b,
        "analysis must be identical on the round-tripped trace"
    );
}

#[test]
fn prepared_app_from_trace_matches_prepare() {
    let spec = spec("patch").unwrap();
    let prog = generate(&spec, &opts());
    let via_trace = PreparedApp::from_trace(&spec, prog, &opts());
    let via_prepare = PreparedApp::prepare(&spec, &opts());
    assert_eq!(via_trace.prog, via_prepare.prog);
    assert_eq!(via_trace.lengths, via_prepare.lengths);
}

#[test]
fn simulation_is_deterministic_across_sweeps() {
    let app = PreparedApp::prepare(&spec("grav").unwrap(), &opts());
    let algos = [PlacementAlgorithm::LoadBal, PlacementAlgorithm::ShareRefs];
    let a = placesim::run_sweep(&app, &algos, &[2, 4]).unwrap();
    let b = placesim::run_sweep(&app, &algos, &[2, 4]).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.stats, y.stats);
        assert_eq!(x.map, y.map);
    }
}

#[test]
fn context_count_follows_placement() {
    // The machine sizes hardware contexts from the placement map: with
    // p processors and t threads the largest cluster is ⌈t/p⌉ for every
    // thread-balanced algorithm.
    let app = PreparedApp::prepare(&spec("water").unwrap(), &opts());
    for p in [2usize, 4, 8] {
        let r = placesim::run_placement(&app, PlacementAlgorithm::Random, p).unwrap();
        assert_eq!(r.map.max_cluster_size(), app.threads().div_ceil(p));
    }
}

#[test]
fn twelve_algorithm_manifested_sweep_emits_valid_metrics() {
    // The full clustering set (the twelve sharing-based algorithms) on
    // one app, through the manifested sweep. Under `--features audit`
    // every simulation in here is re-validated by the engine's
    // post-drain invariant auditor; the manifest must always pass its
    // own schema check and agree with the results it summarizes.
    use placesim::manifest::RunManifest;

    let app = PreparedApp::prepare(&spec("water").unwrap(), &opts());
    let algos: Vec<PlacementAlgorithm> = PlacementAlgorithm::SHARING_BASED
        .into_iter()
        .chain(PlacementAlgorithm::STATIC.into_iter().filter(|a| {
            matches!(
                a.paper_name(),
                n if n.ends_with("+LB") && n != "LOAD-BAL"
            )
        }))
        .collect();
    assert_eq!(algos.len(), 12, "the paper's twelve clustering algorithms");

    let (results, manifest) = placesim::run_sweep_manifested(&app, &algos, &[4]).unwrap();
    assert_eq!(results.len(), 12);
    assert_eq!(manifest.entries.len(), 12);
    let json = manifest.to_json();
    RunManifest::validate(&json).unwrap();
    for (r, e) in results.iter().zip(&manifest.entries) {
        assert_eq!(e.algorithm, r.algorithm.paper_name());
        assert_eq!(e.execution_time, r.execution_time());
        assert_eq!(e.total_refs, r.stats.total_refs());
        assert!(json.contains(&format!("\"algorithm\": \"{}\"", e.algorithm)));
    }
}
