//! Property-based tests: simulator conservation laws over random
//! programs and placements.

use placesim_machine::{simulate, simulate_with_traffic, ArchConfig};
use placesim_placement::PlacementMap;
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random program over a small address universe to provoke sharing and
/// conflicts.
fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    let r#ref = (0u8..3, 0u64..64);
    let thread = proptest::collection::vec(r#ref, 0..120);
    proptest::collection::vec(thread, 1..6).prop_map(|threads| {
        let traces: Vec<ThreadTrace> = threads
            .into_iter()
            .map(|refs| {
                refs.into_iter()
                    .map(|(kind, slot)| {
                        let addr = Address::new(slot * 16); // overlapping lines
                        match kind {
                            0 => MemRef::instr(addr),
                            1 => MemRef::read(addr),
                            _ => MemRef::write(addr),
                        }
                    })
                    .collect()
            })
            .collect();
        ProgramTrace::new("prop", traces)
    })
}

fn arb_placement(t: usize, seed: u64) -> PlacementMap {
    // Deterministic pseudo-random balanced clustering.
    let p = 1 + (seed as usize % t.max(1));
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); p.min(t).max(1)];
    for i in 0..t {
        let k = (seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64) >> 7) as usize
            % clusters.len();
        clusters[k].push(i);
    }
    PlacementMap::from_clusters(clusters).expect("valid clusters")
}

fn tiny_config() -> ArchConfig {
    ArchConfig::builder()
        .cache_size(256)
        .line_size(32)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn conservation_laws(prog in arb_program(), seed in 1u64..5000) {
        let map = arb_placement(prog.thread_count(), seed);
        let stats = simulate(&prog, &map, &tiny_config()).unwrap();

        // Reference conservation: every trace reference executes once.
        prop_assert_eq!(stats.total_refs(), prog.total_refs());

        for (pi, p) in stats.per_proc().iter().enumerate() {
            // Cycle conservation.
            prop_assert_eq!(
                p.accounted_cycles(), p.finish_time,
                "proc {}: busy {} switch {} idle {} finish {}",
                pi, p.busy, p.switching, p.idle, p.finish_time
            );
            // Hits + misses = refs; busy = refs (one cycle per reference).
            prop_assert_eq!(p.hits + p.misses.total(), p.refs());
            prop_assert_eq!(p.busy, p.refs());
            // Invalidation misses need a prior received invalidation.
            prop_assert!(p.misses.invalidation <= p.invalidations_received);
        }

        // Invalidations sent = invalidations received, globally.
        let sent: u64 = stats.per_proc().iter().map(|p| p.invalidations_sent).sum();
        let recv: u64 = stats.per_proc().iter().map(|p| p.invalidations_received).sum();
        prop_assert_eq!(sent, recv);
    }

    #[test]
    fn compulsory_equals_distinct_lines_per_processor(
        prog in arb_program(),
        seed in 1u64..5000,
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        let config = tiny_config();
        let stats = simulate(&prog, &map, &config).unwrap();

        for (proc, cluster) in map.iter() {
            let mut lines: HashSet<u64> = HashSet::new();
            for &tid in cluster {
                for r in prog.thread(tid).iter() {
                    lines.insert(r.addr.line(config.line_size()).raw());
                }
            }
            prop_assert_eq!(
                stats.per_proc()[proc.index()].misses.compulsory,
                lines.len() as u64,
                "processor {} compulsory misses must equal its distinct lines",
                proc
            );
        }
    }

    #[test]
    fn determinism(prog in arb_program(), seed in 1u64..5000) {
        let map = arb_placement(prog.thread_count(), seed);
        let a = simulate_with_traffic(&prog, &map, &tiny_config()).unwrap();
        let b = simulate_with_traffic(&prog, &map, &tiny_config()).unwrap();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    #[test]
    fn infinite_cache_has_no_conflicts(prog in arb_program(), seed in 1u64..5000) {
        let map = arb_placement(prog.thread_count(), seed);
        let stats = simulate(&prog, &map, &ArchConfig::infinite_cache()).unwrap();
        prop_assert_eq!(stats.total_misses().conflicts(), 0);
    }

    #[test]
    fn traffic_matrix_totals_match_stats(prog in arb_program(), seed in 1u64..5000) {
        let map = arb_placement(prog.thread_count(), seed);
        let (stats, traffic) = simulate_with_traffic(&prog, &map, &tiny_config()).unwrap();
        let matrix_total: u64 = traffic.iter_pairs().map(|(_, _, v)| v).sum();
        prop_assert_eq!(matrix_total, stats.coherence_traffic());
    }

    #[test]
    fn single_context_never_switches(prog in arb_program()) {
        // All threads on distinct processors, one context each: switching
        // still occurs on misses (pipeline drain), but idle time must then
        // cover the full remaining latency.
        let t = prog.thread_count();
        let map = PlacementMap::from_clusters((0..t).map(|i| vec![i]).collect()).unwrap();
        let config = tiny_config();
        let stats = simulate(&prog, &map, &config).unwrap();
        for p in stats.per_proc() {
            let misses = p.misses.total();
            // Every miss drains the pipeline, except a miss on the
            // thread's final reference (the processor is then finished
            // and the drain is not charged).
            prop_assert!(p.switching <= misses * config.context_switch());
            prop_assert_eq!(p.switching % config.context_switch(), 0);
            // Each miss idles for latency - switch (the last miss of a
            // thread pays neither if the thread is done).
            prop_assert!(
                p.idle <= misses * (config.memory_latency() - config.context_switch())
            );
        }
    }
}

/// Programs with equal barrier counts per thread: all conservation laws
/// must hold through barrier waits and releases.
mod barrier_props {
    use super::*;
    use placesim_machine::ArchConfig;
    use placesim_trace::MemRef;

    fn arb_barrier_program() -> impl Strategy<Value = ProgramTrace> {
        // Each thread: `phases` segments of random refs with barriers
        // between segments; all threads share the phase count.
        let segment = proptest::collection::vec((0u8..3, 0u64..48), 0..30);
        (
            1usize..4,
            proptest::collection::vec(proptest::collection::vec(segment, 3), 1..5),
        )
            .prop_map(|(phases, threads)| {
                let traces: Vec<ThreadTrace> = threads
                    .into_iter()
                    .map(|segments| {
                        let mut t = ThreadTrace::new();
                        for (pi, seg) in segments.into_iter().take(phases).enumerate() {
                            for (kind, slot) in seg {
                                let addr = Address::new(0x100 + slot * 16);
                                t.push(match kind {
                                    0 => MemRef::instr(addr),
                                    1 => MemRef::read(addr),
                                    _ => MemRef::write(addr),
                                });
                            }
                            if pi + 1 < phases {
                                t.push(MemRef::barrier(pi as u64));
                            }
                        }
                        t
                    })
                    .collect();
                ProgramTrace::new("barrier-prop", traces)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn conservation_with_barriers(prog in arb_barrier_program(), seed in 1u64..3000) {
            let map = arb_placement(prog.thread_count(), seed);
            let config = ArchConfig::builder()
                .cache_size(512)
                .line_size(32)
                .build()
                .unwrap();
            let stats = simulate(&prog, &map, &config).unwrap();
            prop_assert_eq!(stats.total_refs(), prog.total_refs());
            for (pi, p) in stats.per_proc().iter().enumerate() {
                prop_assert_eq!(
                    p.accounted_cycles(), p.finish_time,
                    "proc {}: busy {} switch {} idle {} finish {}",
                    pi, p.busy, p.switching, p.idle, p.finish_time
                );
                prop_assert_eq!(p.busy, p.refs());
            }
            // Barrier ops across processors = threads x (phases - 1).
            let barrier_ops: u64 = stats.per_proc().iter().map(|p| p.barrier_ops).sum();
            let expected: u64 = prog.threads().iter().map(|t| t.barrier_len()).sum();
            prop_assert_eq!(barrier_ops, expected);
        }

        #[test]
        fn barriers_are_deterministic(prog in arb_barrier_program(), seed in 1u64..3000) {
            let map = arb_placement(prog.thread_count(), seed);
            let config = tiny_config();
            let a = simulate(&prog, &map, &config).unwrap();
            let b = simulate(&prog, &map, &config).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}

/// Instrumented runs: the observation layer must never perturb the
/// simulation, and its recorded distributions must obey the same
/// conservation laws as the stats they describe. When the crate is
/// built with `--features audit`, every `simulate*` call here also
/// executes the internal post-drain auditor.
mod observed_props {
    use super::*;
    use placesim_machine::{simulate_observed, EngineObsReport};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn observation_never_perturbs(prog in arb_program(), seed in 1u64..5000) {
            let map = arb_placement(prog.thread_count(), seed);
            let config = tiny_config();
            let plain = simulate(&prog, &map, &config).unwrap();
            let (stats, report) = simulate_observed(&prog, &map, &config).unwrap();
            prop_assert_eq!(&stats, &plain);

            if report.enabled {
                // Feature `obs` on: the report's own conservation laws.
                // Hit runs count plain hits; upgrades are accounted as
                // stat hits outside the runs.
                let upgrades: u64 = stats.per_proc().iter().map(|p| p.upgrades).sum();
                prop_assert_eq!(report.hit_run_hits.sum() + upgrades, stats.total_hits());
                // Read fills never invalidate, so every sent invalidation
                // appears in the write-transaction fan-out.
                prop_assert_eq!(
                    report.invalidation_fanout.sum(),
                    stats.total_invalidations()
                );
                // Switch stalls recorded = drain cycles charged.
                let switching: u64 = stats.per_proc().iter().map(|p| p.switching).sum();
                prop_assert_eq!(report.switch_stall_cycles, switching);
                // Queue depth is bounded by the machine size and at least
                // 1 at every pop.
                if let Some(max) = report.queue_depth.max() {
                    prop_assert!(max <= map.processor_count() as u64);
                    prop_assert!(report.queue_depth.min() >= Some(1));
                }
            } else {
                // Feature off: the stub records nothing at all.
                prop_assert_eq!(report, EngineObsReport::default());
            }
        }
    }
}

/// Both engines, random traces and placements: the conservation laws
/// the auditor enforces internally, asserted externally against each
/// engine's output (and, with `--features audit`, re-checked by the
/// auditor inside every run).
#[cfg(feature = "reference-engine")]
mod engine_law_props {
    use super::*;
    use placesim_machine::reference;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn laws_hold_in_both_engines(prog in arb_program(), seed in 1u64..5000) {
            let map = arb_placement(prog.thread_count(), seed);
            let config = tiny_config();
            for stats in [
                simulate(&prog, &map, &config).unwrap(),
                reference::simulate(&prog, &map, &config).unwrap(),
            ] {
                prop_assert_eq!(stats.total_refs(), prog.total_refs());
                let sent: u64 =
                    stats.per_proc().iter().map(|p| p.invalidations_sent).sum();
                let received: u64 =
                    stats.per_proc().iter().map(|p| p.invalidations_received).sum();
                prop_assert_eq!(sent, received);
                for p in stats.per_proc() {
                    prop_assert_eq!(p.accounted_cycles(), p.finish_time);
                    prop_assert_eq!(p.hits + p.misses.total() + p.barrier_ops, p.refs());
                }
            }
        }
    }
}
