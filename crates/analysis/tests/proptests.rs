//! Property-based tests for the static sharing analysis.

use placesim_analysis::{nway, AddressProfile, CharacteristicsRow, SharingAnalysis, SpillBudget};
use placesim_trace::stream::{FileReader, StreamWriter};
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadId, ThreadTrace};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Writes `prog` as a v3 stream with the given chunk size to a unique
/// temp file, returning its path. Caller removes the file.
fn write_v3_temp(prog: &ProgramTrace, chunk_bytes: usize) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "placesim-proptest-{}-{}.trace",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let file = std::fs::File::create(&path).expect("create temp trace");
    let mut w = StreamWriter::with_chunk_bytes(file, prog.name(), prog.thread_count(), chunk_bytes)
        .expect("stream header");
    for (tid, t) in prog.iter() {
        w.append_thread(tid, t.iter()).expect("stream chunk");
    }
    w.finish().expect("stream footer");
    path
}

fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    let r#ref = (0u8..3, 0u64..32);
    let thread = proptest::collection::vec(r#ref, 0..60);
    proptest::collection::vec(thread, 1..8).prop_map(|threads| {
        let traces: Vec<ThreadTrace> = threads
            .into_iter()
            .map(|refs| {
                refs.into_iter()
                    .map(|(kind, slot)| {
                        let addr = Address::new(0x100 + slot * 8);
                        match kind {
                            0 => MemRef::instr(addr),
                            1 => MemRef::read(addr),
                            _ => MemRef::write(addr),
                        }
                    })
                    .collect()
            })
            .collect();
        ProgramTrace::new("prop", traces)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pairwise matrices are symmetric with zero diagonal by
    /// construction of SymMatrix; spot-check the accessors agree.
    #[test]
    fn pairwise_metrics_are_symmetric(prog in arb_program()) {
        let s = SharingAnalysis::measure(&prog);
        let t = prog.thread_count();
        for i in 0..t {
            for j in 0..t {
                let (a, b) = (ThreadId::from_index(i), ThreadId::from_index(j));
                prop_assert_eq!(s.pair_shared_refs(a, b), s.pair_shared_refs(b, a));
                prop_assert_eq!(s.pair_write_shared_refs(a, b), s.pair_write_shared_refs(b, a));
                prop_assert_eq!(s.pair_shared_addrs(a, b), s.pair_shared_addrs(b, a));
                // Write-shared references are a subset of shared references.
                prop_assert!(s.pair_write_shared_refs(a, b) <= s.pair_shared_refs(a, b));
            }
        }
    }

    /// Per-thread shared+private reference counts reconstruct each
    /// thread's data reference count exactly.
    #[test]
    fn per_thread_counts_conserve_data_refs(prog in arb_program()) {
        let s = SharingAnalysis::measure(&prog);
        for (id, trace) in prog.iter() {
            let ts = s.thread(id);
            prop_assert_eq!(
                ts.data_refs(),
                trace.data_len(),
                "thread {} data refs", id
            );
            prop_assert!(ts.shared_percent() <= 100.0 + 1e-9);
        }
    }

    /// The profile's address census matches a brute-force recount.
    #[test]
    fn profile_matches_brute_force(prog in arb_program()) {
        let profile = AddressProfile::build(&prog);
        let mut expect: std::collections::HashMap<u64, std::collections::HashMap<usize, (u32, u32)>> =
            std::collections::HashMap::new();
        for (id, trace) in prog.iter() {
            for r in trace.iter() {
                if r.kind.is_data() {
                    let entry = expect.entry(r.addr.raw()).or_default()
                        .entry(id.index()).or_insert((0, 0));
                    if r.kind.is_write() {
                        entry.1 += 1;
                    } else {
                        entry.0 += 1;
                    }
                }
            }
        }
        prop_assert_eq!(profile.address_count(), expect.len());
        for (addr, per_thread) in expect {
            let pa = profile.get(addr).expect("address present");
            prop_assert_eq!(pa.sharer_count(), per_thread.len());
            for c in pa.counts() {
                let &(reads, writes) = per_thread.get(&c.thread.index()).expect("thread present");
                prop_assert_eq!(c.reads, reads);
                prop_assert_eq!(c.writes, writes);
            }
        }
    }

    /// Differential: the sharded sort-merge profile is identical to the
    /// reference hash-map build — same address map, same per-thread
    /// counts (HashMap equality is order-independent, so this is exactly
    /// "equal maps").
    #[test]
    fn parallel_profile_matches_reference(prog in arb_program()) {
        prop_assert_eq!(
            AddressProfile::build_parallel(&prog),
            AddressProfile::build(&prog)
        );
    }

    /// Differential: the fused sharded analysis is bit-identical to the
    /// two-pass reference — all three pairwise matrices, every
    /// ThreadSharing row, and the address censuses.
    #[test]
    fn fused_measure_matches_reference(prog in arb_program()) {
        let fused = SharingAnalysis::measure(&prog);
        let reference = SharingAnalysis::measure_reference(&prog);
        prop_assert_eq!(fused.pair_refs_matrix(), reference.pair_refs_matrix());
        prop_assert_eq!(fused.pair_write_refs_matrix(), reference.pair_write_refs_matrix());
        prop_assert_eq!(fused.pair_addrs_matrix(), reference.pair_addrs_matrix());
        prop_assert_eq!(fused.per_thread(), reference.per_thread());
        prop_assert_eq!(fused.shared_address_count(), reference.shared_address_count());
        prop_assert_eq!(fused.total_address_count(), reference.total_address_count());
        // Derived equality covers any future field.
        prop_assert_eq!(fused, reference);
    }

    /// Differential: the out-of-core streamed scan over a v3 file is
    /// bit-identical to the in-memory analyses, across chunk sizes that
    /// force many chunks per thread and resident-address budgets tiny
    /// enough to force spill files and their k-way merge.
    #[test]
    fn streamed_scan_matches_in_memory(
        prog in arb_program(),
        budget in 1usize..40,
        chunk in 16usize..256,
    ) {
        let path = write_v3_temp(&prog, chunk);
        let reader = FileReader::open(&path).expect("open v3");
        let budget = SpillBudget::new(budget);
        let streamed_sharing = SharingAnalysis::measure_streamed(&reader, &budget);
        let streamed_profile = AddressProfile::build_parallel_streamed(&reader, &budget);
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(streamed_sharing.expect("streamed measure"), SharingAnalysis::measure(&prog));
        prop_assert_eq!(streamed_profile.expect("streamed profile"), AddressProfile::build_parallel(&prog));
    }

    /// Cluster sharing sums: the group metric over the full thread set
    /// equals the sum of all pairwise entries.
    #[test]
    fn full_group_sum_equals_total(prog in arb_program()) {
        let s = SharingAnalysis::measure(&prog);
        let all: Vec<usize> = (0..prog.thread_count()).collect();
        prop_assert_eq!(
            nway::group_shared_refs(s.pair_refs_matrix(), &all),
            s.total_pairwise_shared_refs()
        );
    }

    /// Characteristics rows never produce NaNs and respect bounds.
    #[test]
    fn characteristics_are_finite(prog in arb_program(), seed in 0u64..50) {
        let row = CharacteristicsRow::measure(&prog, seed);
        for v in [
            row.pairwise_sharing.mean,
            row.pairwise_sharing.std_dev,
            row.nway_sharing.mean,
            row.refs_per_shared_addr.mean,
            row.shared_refs_percent.mean,
            row.thread_length.mean,
        ] {
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
        }
        prop_assert!(row.shared_refs_percent.mean <= 100.0 + 1e-9);
    }

    /// Write-run analysis conservation: runs cover all shared-address
    /// references; mean run length is consistent.
    #[test]
    fn write_run_bounds(prog in arb_program()) {
        use placesim_analysis::write_runs::analyze_round_robin;
        let stats = analyze_round_robin(&prog);
        prop_assert!(stats.migratory_addresses <= stats.shared_addresses);
        prop_assert!(stats.mean_run_length >= 0.0);
        if stats.shared_addresses > 0 {
            prop_assert!(stats.runs >= stats.shared_addresses);
            prop_assert!(stats.mean_run_length >= 1.0);
        }
        let frac = stats.migratory_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }
}
