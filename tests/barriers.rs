//! Integration tests for barrier-phased execution across the full
//! pipeline (generator → placement → machine).

use placesim_repro::prelude::*;

fn opts() -> GenOptions {
    GenOptions {
        scale: 0.01,
        seed: 77,
    }
}

/// Every suite application generates equal barrier counts across its
/// threads — the machine's precondition for deadlock-free barriers.
#[test]
fn suite_barrier_counts_are_uniform() {
    for spec in suite() {
        let prog = generate(&spec, &opts());
        let expected = (spec.phases.max(1) - 1) as u64;
        for (id, thread) in prog.iter() {
            assert_eq!(
                thread.barrier_len(),
                expected,
                "{} {}: barrier count",
                spec.name,
                id
            );
        }
    }
}

/// Phased applications run end-to-end with references conserved and
/// cycle accounting intact.
#[test]
fn phased_apps_simulate_cleanly() {
    for name in ["water", "gauss", "fft"] {
        let app = PreparedApp::prepare(&spec(name).unwrap(), &opts());
        let p = 4.min(app.threads());
        let r = placesim::run_placement(&app, PlacementAlgorithm::LoadBal, p).unwrap();
        assert_eq!(r.stats.total_refs(), app.prog.total_refs(), "{name}");
        for (i, ps) in r.stats.per_proc().iter().enumerate() {
            assert_eq!(
                ps.accounted_cycles(),
                ps.finish_time,
                "{name} P{i}: conservation with barriers"
            );
        }
    }
}

/// Barriers amplify imbalance: on a skewed-length app, the phased run
/// cannot be faster than the same app generated without phases (same
/// placement algorithm, same seed).
#[test]
fn phases_never_speed_up_execution() {
    let mut phased_spec = spec("gauss").unwrap();
    let mut flat_spec = phased_spec.clone();
    phased_spec.phases = 8;
    flat_spec.phases = 1;

    let phased = PreparedApp::prepare(&phased_spec, &opts());
    let flat = PreparedApp::prepare(&flat_spec, &opts());
    let p = 8;
    let rp = placesim::run_placement(&phased, PlacementAlgorithm::Random, p).unwrap();
    let rf = placesim::run_placement(&flat, PlacementAlgorithm::Random, p).unwrap();
    assert!(
        rp.execution_time() >= rf.execution_time(),
        "phased {} must not beat flat {}",
        rp.execution_time(),
        rf.execution_time()
    );
}

/// The compressed trace format round-trips a phased application
/// (barrier records included) and the analysis ignores barriers.
#[test]
fn phased_trace_roundtrip_and_analysis() {
    use placesim_repro::analysis::SharingAnalysis;
    use placesim_repro::trace::compress;

    let prog = generate(&spec("mp3d").unwrap(), &opts());
    assert!(prog.threads()[0].barrier_len() > 0, "mp3d is phased");

    let bytes = compress::to_bytes(&prog).unwrap();
    let back = compress::from_bytes(&bytes).unwrap();
    assert_eq!(back, prog);

    let a = SharingAnalysis::measure(&prog);
    let b = SharingAnalysis::measure(&back);
    assert_eq!(a, b);
    // Barriers are not data references.
    let data: u64 = prog.threads().iter().map(|t| t.data_len()).sum();
    let per_thread: u64 = a.per_thread().iter().map(|s| s.data_refs()).sum();
    assert_eq!(data, per_thread);
}
