//! The output of a placement algorithm: the thread → processor map.

use crate::error::PlacementError;
use placesim_trace::ThreadId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processor in the simulated machine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcessorId(u16);

impl ProcessorId {
    /// Creates a processor id from a dense index.
    #[inline]
    pub fn new(index: u16) -> Self {
        ProcessorId(index)
    }

    /// Creates a processor id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u16`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ProcessorId(u16::try_from(index).expect("processor index exceeds u16::MAX"))
    }

    /// Returns the dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A complete static assignment of threads to processors.
///
/// This is the "placement map" the paper's simulator consumes: thread
/// clusters never migrate during execution.
///
/// # Example
///
/// ```
/// use placesim_placement::{PlacementMap, ProcessorId};
/// use placesim_trace::ThreadId;
///
/// let map = PlacementMap::from_clusters(vec![vec![0, 2], vec![1]])?;
/// assert_eq!(map.processor_of(ThreadId::new(2)), ProcessorId::new(0));
/// assert_eq!(map.threads_on(ProcessorId::new(1)), &[ThreadId::new(1)]);
/// assert_eq!(map.max_cluster_size(), 2);
/// # Ok::<(), placesim_placement::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementMap {
    /// `assignment[thread] == processor`.
    assignment: Vec<ProcessorId>,
    /// `clusters[processor]` = thread ids, ascending.
    clusters: Vec<Vec<ThreadId>>,
}

impl PlacementMap {
    /// Builds a map from per-processor clusters of thread indices.
    ///
    /// Cluster `i` is assigned to processor `i`. Thread indices must form
    /// a permutation of `0..t` (every thread placed exactly once).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::DimensionMismatch`] if a thread index is
    /// repeated, missing or out of range.
    pub fn from_clusters(clusters: Vec<Vec<usize>>) -> Result<Self, PlacementError> {
        let t: usize = clusters.iter().map(Vec::len).sum();
        let mut assignment = vec![None; t];
        for (pi, cluster) in clusters.iter().enumerate() {
            for &thread in cluster {
                let slot = assignment
                    .get_mut(thread)
                    .ok_or(PlacementError::DimensionMismatch {
                        what: "cluster thread index",
                        expected: t,
                        found: thread,
                    })?;
                if slot.is_some() {
                    return Err(PlacementError::DimensionMismatch {
                        what: "duplicate thread in clusters",
                        expected: 1,
                        found: 2,
                    });
                }
                *slot = Some(ProcessorId::from_index(pi));
            }
        }
        let assignment: Vec<ProcessorId> = assignment
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect();
        let mut sorted_clusters: Vec<Vec<ThreadId>> = clusters
            .into_iter()
            .map(|c| c.into_iter().map(ThreadId::from_index).collect())
            .collect();
        for c in &mut sorted_clusters {
            c.sort_unstable();
        }
        Ok(PlacementMap {
            assignment,
            clusters: sorted_clusters,
        })
    }

    /// Number of threads placed.
    pub fn thread_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of processors (clusters), including any empty ones.
    pub fn processor_count(&self) -> usize {
        self.clusters.len()
    }

    /// The processor a thread is placed on.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn processor_of(&self, thread: ThreadId) -> ProcessorId {
        self.assignment[thread.index()]
    }

    /// The threads placed on one processor, ascending by id.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn threads_on(&self, proc: ProcessorId) -> &[ThreadId] {
        &self.clusters[proc.index()]
    }

    /// Iterates over `(processor, cluster)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (ProcessorId, &[ThreadId])> + '_ {
        self.clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (ProcessorId::from_index(i), c.as_slice()))
    }

    /// The largest cluster size — the number of hardware contexts the
    /// simulated machine needs per processor.
    pub fn max_cluster_size(&self) -> usize {
        self.clusters.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `true` if cluster sizes are all ⌊t/p⌋ or ⌈t/p⌉ with exactly
    /// `t mod p` clusters of the larger size (the paper's thread-balance
    /// criterion).
    pub fn is_thread_balanced(&self) -> bool {
        let t = self.thread_count();
        let p = self.processor_count();
        if p == 0 {
            return t == 0;
        }
        let floor = t / p;
        let ceil = t.div_ceil(p);
        let want_big = t % p;
        let mut big = 0;
        for c in &self.clusters {
            if c.len() == ceil && floor != ceil {
                big += 1;
            } else if c.len() != floor {
                return false;
            }
        }
        floor == ceil || big == want_big
    }

    /// Total `lengths` load per processor.
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is shorter than the thread count.
    pub fn loads(&self, lengths: &[u64]) -> Vec<u64> {
        self.clusters
            .iter()
            .map(|c| c.iter().map(|t| lengths[t.index()]).sum())
            .collect()
    }

    /// Load imbalance: max processor load divided by the ideal
    /// (`total / p`). 1.0 is perfect; returns 0.0 for an empty machine.
    pub fn load_imbalance(&self, lengths: &[u64]) -> f64 {
        let loads = self.loads(lengths);
        let total: u64 = loads.iter().sum();
        let p = loads.len();
        if p == 0 || total == 0 {
            return 0.0;
        }
        let ideal = total as f64 / p as f64;
        loads.iter().copied().max().unwrap_or(0) as f64 / ideal
    }
}

impl fmt::Display for PlacementMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (p, cluster) in self.iter() {
            write!(f, "{p}: ")?;
            for (i, t) in cluster.iter().enumerate() {
                if i > 0 {
                    f.write_str(" ")?;
                }
                write!(f, "{t}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_clusters() {
        let map = PlacementMap::from_clusters(vec![vec![3, 0], vec![1, 2]]).unwrap();
        assert_eq!(map.thread_count(), 4);
        assert_eq!(map.processor_count(), 2);
        assert_eq!(map.processor_of(ThreadId::new(3)), ProcessorId::new(0));
        assert_eq!(
            map.threads_on(ProcessorId::new(0)),
            &[ThreadId::new(0), ThreadId::new(3)]
        );
        assert_eq!(map.max_cluster_size(), 2);
    }

    #[test]
    fn rejects_duplicates_and_gaps() {
        assert!(PlacementMap::from_clusters(vec![vec![0, 0]]).is_err());
        // Index 2 with only 2 threads total: out of range.
        assert!(PlacementMap::from_clusters(vec![vec![0], vec![2]]).is_err());
    }

    #[test]
    fn thread_balance_detection() {
        let ok = PlacementMap::from_clusters(vec![vec![0, 1, 2], vec![3, 4]]).unwrap();
        assert!(ok.is_thread_balanced()); // 5 over 2: sizes 3,2

        let skew = PlacementMap::from_clusters(vec![vec![0, 1, 2, 3], vec![4]]).unwrap();
        assert!(!skew.is_thread_balanced());

        let even = PlacementMap::from_clusters(vec![vec![0, 1], vec![2, 3]]).unwrap();
        assert!(even.is_thread_balanced());

        // 7 over 3 → sizes must be 3,2,2. (3,3,1) is not balanced.
        let bad = PlacementMap::from_clusters(vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]).unwrap();
        assert!(!bad.is_thread_balanced());
    }

    #[test]
    fn loads_and_imbalance() {
        let map = PlacementMap::from_clusters(vec![vec![0, 1], vec![2]]).unwrap();
        let lengths = [10, 20, 30];
        assert_eq!(map.loads(&lengths), vec![30, 30]);
        assert!((map.load_imbalance(&lengths) - 1.0).abs() < 1e-12);

        let map2 = PlacementMap::from_clusters(vec![vec![0], vec![1, 2]]).unwrap();
        assert_eq!(map2.loads(&lengths), vec![10, 50]);
        assert!((map2.load_imbalance(&lengths) - 50.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_clusters() {
        let map = PlacementMap::from_clusters(vec![vec![1], vec![0]]).unwrap();
        let s = map.to_string();
        assert!(s.contains("P0: T1"));
        assert!(s.contains("P1: T0"));
    }

    #[test]
    fn empty_map() {
        let map = PlacementMap::from_clusters(vec![]).unwrap();
        assert_eq!(map.thread_count(), 0);
        assert!(map.is_thread_balanced());
        assert_eq!(map.max_cluster_size(), 0);
        assert_eq!(map.load_imbalance(&[]), 0.0);
    }
}
