//! Engine instrumentation: hook collector and its report.
//!
//! The batched engine calls the [`EngineObs`] hooks at the handful of
//! places where something globally interesting happens — an event-queue
//! pop, a hit run ending, a context-switch drain, a directory write
//! transaction. Without the `obs` cargo feature every hook body is
//! empty and inlined away, so default builds pay nothing; with it,
//! [`crate::simulate_observed`] returns an [`EngineObsReport`] with the
//! recorded distributions.

use placesim_obs::json::JsonWriter;
#[cfg(feature = "obs")]
use placesim_obs::timeline::NO_THREAD;
use placesim_obs::AttributionConfig;
use placesim_obs::EventTrace;
use placesim_obs::Histogram;
#[cfg(feature = "obs")]
use placesim_obs::{AttrCollector, AttrKind};
#[cfg(feature = "obs")]
use placesim_obs::{EventKind, TimelineEvent};

/// Absent-event marker in the engine's slot queue (mirrors the engine's
/// private `NO_EVENT`). Only the `obs`-gated hook bodies and the tests
/// read it.
#[cfg_attr(not(any(test, feature = "obs")), allow(dead_code))]
const NO_EVENT: u64 = u64::MAX;

#[cfg(feature = "obs")]
#[derive(Debug, Default)]
struct ObsInner {
    events: u64,
    queue_depth: Histogram,
    hit_run_hits: Histogram,
    invalidation_fanout: Histogram,
    context_switches: u64,
    switch_stall_cycles: u64,
    /// Cycle-stamped event ring, present only for traced runs.
    timeline: Option<EventTrace>,
    /// Coherence-attribution collector, present only for attributed
    /// runs.
    attr: Option<AttrCollector>,
}

/// The engine's hook collector. A zero-cost stub unless the crate is
/// built with the `obs` feature *and* the run was started through
/// [`crate::simulate_observed`].
#[derive(Debug, Default)]
pub(crate) struct EngineObs {
    #[cfg(feature = "obs")]
    inner: Option<ObsInner>,
}

impl EngineObs {
    /// A collector that records nothing (plain `simulate` runs).
    pub(crate) fn disabled() -> Self {
        Self::default()
    }

    /// A recording collector. Falls back to a no-op stub when the `obs`
    /// feature is off.
    pub(crate) fn enabled() -> Self {
        #[cfg(feature = "obs")]
        {
            EngineObs {
                inner: Some(ObsInner::default()),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            Self::default()
        }
    }

    /// A recording collector that additionally keeps a cycle-stamped
    /// event timeline retaining up to `capacity` events. Falls back to
    /// a no-op stub when the `obs` feature is off.
    pub(crate) fn traced(capacity: usize) -> Self {
        let _ = capacity;
        #[cfg(feature = "obs")]
        {
            EngineObs {
                inner: Some(ObsInner {
                    timeline: Some(EventTrace::new(capacity)),
                    ..ObsInner::default()
                }),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            Self::default()
        }
    }

    /// A collector that attributes coherence events (invalidations,
    /// updates, coherence misses) to (address, writer, victim) online.
    /// Falls back to a no-op stub when the `obs` feature is off.
    pub(crate) fn attributed(cfg: AttributionConfig) -> Self {
        let _ = cfg;
        #[cfg(feature = "obs")]
        {
            EngineObs {
                inner: Some(ObsInner {
                    attr: Some(AttrCollector::new(cfg)),
                    ..ObsInner::default()
                }),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            Self::default()
        }
    }

    /// `true` when this collector is recording attribution. The engines
    /// use this to skip the victim-owner lookups that only attribution
    /// needs; with the `obs` feature off it is a constant `false` and
    /// the guarded code compiles away.
    #[inline]
    pub(crate) fn wants_attribution(&self) -> bool {
        #[cfg(feature = "obs")]
        {
            self.inner
                .as_ref()
                .is_some_and(|inner| inner.attr.is_some())
        }
        #[cfg(not(feature = "obs"))]
        {
            false
        }
    }

    /// An event was popped; `events` is the slot queue *before* the
    /// popped slot is cleared, so the recorded depth includes it.
    #[inline]
    pub(crate) fn on_pop(&mut self, events: &[u64]) {
        let _ = events;
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.events += 1;
            let depth = events.iter().filter(|&&e| e != NO_EVENT).count();
            inner.queue_depth.record(depth as u64);
        }
    }

    /// A hit run ended after `hits` consecutive cache hits (possibly
    /// zero, when the dispatched reference immediately missed).
    #[inline]
    pub(crate) fn on_hit_run(&mut self, hits: u64) {
        let _ = hits;
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.hit_run_hits.record(hits);
        }
    }

    /// A directory write transaction invalidated `fanout` remote caches.
    #[inline]
    pub(crate) fn on_invalidation_fanout(&mut self, fanout: u64) {
        let _ = fanout;
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.invalidation_fanout.record(fanout);
        }
    }

    /// A miss forced a context switch costing `stall_cycles` of drain.
    #[inline]
    pub(crate) fn on_switch(&mut self, stall_cycles: u64) {
        let _ = stall_cycles;
        #[cfg(feature = "obs")]
        if let Some(inner) = &mut self.inner {
            inner.context_switches += 1;
            inner.switch_stall_cycles += stall_cycles;
        }
    }

    /// Records a timeline event, if this collector keeps a timeline.
    #[cfg(feature = "obs")]
    #[inline]
    fn record(&mut self, ev: TimelineEvent) {
        if let Some(timeline) = self.inner.as_mut().and_then(|i| i.timeline.as_mut()) {
            timeline.record(ev);
        }
    }

    /// A hit run completed on processor `pi`: `thread` executed `hits`
    /// consecutive hits over cycles `[start, end)`. Zero-length slices
    /// (a dispatch that immediately missed) are not recorded.
    #[inline]
    pub(crate) fn on_run_slice(&mut self, pi: usize, thread: u32, start: u64, end: u64, hits: u64) {
        let _ = (pi, thread, start, end, hits);
        #[cfg(feature = "obs")]
        if end > start {
            self.record(TimelineEvent {
                cycle: start,
                dur: end - start,
                processor: pi as u32,
                thread,
                kind: EventKind::RunSlice,
                line: u64::MAX,
                detail: hits,
            });
        }
    }

    /// A miss-induced context switch started at `at` on processor `pi`,
    /// draining for `stall` cycles away from `thread`. Always paired
    /// with an [`EngineObs::on_switch`] call at the same site.
    #[inline]
    pub(crate) fn on_switch_slice(&mut self, pi: usize, thread: u32, at: u64, stall: u64) {
        let _ = (pi, thread, at, stall);
        #[cfg(feature = "obs")]
        self.record(TimelineEvent {
            cycle: at,
            dur: stall,
            processor: pi as u32,
            thread,
            kind: EventKind::ContextSwitch,
            line: u64::MAX,
            detail: stall,
        });
    }

    /// `thread` on processor `pi` missed on `line` at `cycle`;
    /// `kind_idx` is the [`crate::MissKind`] discriminant.
    #[inline]
    pub(crate) fn on_miss(&mut self, pi: usize, thread: u32, cycle: u64, line: u64, kind_idx: u64) {
        let _ = (pi, thread, cycle, line, kind_idx);
        #[cfg(feature = "obs")]
        self.record(TimelineEvent {
            cycle,
            dur: 0,
            processor: pi as u32,
            thread,
            kind: EventKind::MissIssue,
            line,
            detail: kind_idx,
        });
    }

    /// The fill for `thread`'s miss on `line` completes at `ready_at`
    /// (a future cycle: fills are recorded at issue, so the trace is
    /// emission-ordered rather than timestamp-sorted).
    #[inline]
    pub(crate) fn on_fill(&mut self, pi: usize, thread: u32, ready_at: u64, line: u64) {
        let _ = (pi, thread, ready_at, line);
        #[cfg(feature = "obs")]
        self.record(TimelineEvent {
            cycle: ready_at,
            dur: 0,
            processor: pi as u32,
            thread,
            kind: EventKind::MissFill,
            line,
            detail: 0,
        });
    }

    /// A directory write transaction by processor `sender` invalidated
    /// `line` in processor `victim`'s cache at `cycle`. Emits the send
    /// on the sender's track and the receive on the victim's.
    #[inline]
    pub(crate) fn on_invalidation_pair(
        &mut self,
        sender: usize,
        victim: usize,
        line: u64,
        cycle: u64,
    ) {
        let _ = (sender, victim, line, cycle);
        #[cfg(feature = "obs")]
        {
            self.record(TimelineEvent {
                cycle,
                dur: 0,
                processor: sender as u32,
                thread: NO_THREAD,
                kind: EventKind::InvalidationSend,
                line,
                detail: victim as u64,
            });
            self.record(TimelineEvent {
                cycle,
                dur: 0,
                processor: victim as u32,
                thread: NO_THREAD,
                kind: EventKind::InvalidationReceive,
                line,
                detail: sender as u64,
            });
        }
    }

    /// A Dragon write by processor `sender` pushed an update for `line`
    /// to processor `victim`'s cache at `cycle`. Emits the send on the
    /// sender's track and the receive on the victim's (the update
    /// analogue of [`EngineObs::on_invalidation_pair`]).
    #[inline]
    pub(crate) fn on_update_pair(&mut self, sender: usize, victim: usize, line: u64, cycle: u64) {
        let _ = (sender, victim, line, cycle);
        #[cfg(feature = "obs")]
        {
            self.record(TimelineEvent {
                cycle,
                dur: 0,
                processor: sender as u32,
                thread: NO_THREAD,
                kind: EventKind::UpdateSend,
                line,
                detail: victim as u64,
            });
            self.record(TimelineEvent {
                cycle,
                dur: 0,
                processor: victim as u32,
                thread: NO_THREAD,
                kind: EventKind::UpdateReceive,
                line,
                detail: sender as u64,
            });
        }
    }

    /// Routes one attributed coherence event to the attribution
    /// collector, if this run keeps one.
    #[cfg(feature = "obs")]
    #[inline]
    fn record_attr(&mut self, kind: AttrKind, line: u64, writer: u32, victim: u32) {
        if let Some(attr) = self.inner.as_mut().and_then(|i| i.attr.as_mut()) {
            attr.record(kind, line, writer, victim);
        }
    }

    /// A write by `writer` invalidated `line` in a remote cache whose
    /// slot was last touched by `victim`.
    #[inline]
    pub(crate) fn on_attr_invalidation(&mut self, line: u64, writer: u32, victim: u32) {
        let _ = (line, writer, victim);
        #[cfg(feature = "obs")]
        self.record_attr(AttrKind::Invalidation, line, writer, victim);
    }

    /// A Dragon write by `writer` updated `line` in a remote cache
    /// whose slot was last touched by `victim`.
    #[inline]
    pub(crate) fn on_attr_update(&mut self, line: u64, writer: u32, victim: u32) {
        let _ = (line, writer, victim);
        #[cfg(feature = "obs")]
        self.record_attr(AttrKind::Update, line, writer, victim);
    }

    /// `victim` missed on `line` because an earlier write by `writer`
    /// invalidated its copy (a coherence miss).
    #[inline]
    pub(crate) fn on_attr_coherence_miss(&mut self, line: u64, writer: u32, victim: u32) {
        let _ = (line, writer, victim);
        #[cfg(feature = "obs")]
        self.record_attr(AttrKind::CoherenceMiss, line, writer, victim);
    }

    /// A directory transaction (fill or upgrade) on `line` by `thread`
    /// on processor `pi` at `cycle`; `fanout` remote caches were
    /// invalidated, `is_write` for write transactions.
    #[inline]
    pub(crate) fn on_directory(
        &mut self,
        pi: usize,
        thread: u32,
        cycle: u64,
        line: u64,
        fanout: u64,
        is_write: bool,
    ) {
        let _ = (pi, thread, cycle, line, fanout, is_write);
        #[cfg(feature = "obs")]
        self.record(TimelineEvent {
            cycle,
            dur: 0,
            processor: pi as u32,
            thread,
            kind: EventKind::DirectoryTransition,
            line,
            detail: (fanout << 1) | u64::from(is_write),
        });
    }

    /// Finalizes the collector into its report.
    pub(crate) fn report(self) -> EngineObsReport {
        self.finish().0
    }

    /// Finalizes the collector into its report plus the event timeline,
    /// if this run kept one.
    pub(crate) fn finish(self) -> (EngineObsReport, Option<EventTrace>) {
        let (report, timeline, _) = self.finish_all();
        (report, timeline)
    }

    /// Finalizes the collector into its report, the event timeline and
    /// the attribution collector, whichever of those this run kept.
    #[cfg_attr(not(feature = "obs"), allow(clippy::unused_self))]
    pub(crate) fn finish_all(
        self,
    ) -> (
        EngineObsReport,
        Option<EventTrace>,
        Option<placesim_obs::AttrCollector>,
    ) {
        #[cfg(feature = "obs")]
        if let Some(inner) = self.inner {
            return (
                EngineObsReport {
                    enabled: true,
                    events: inner.events,
                    queue_depth: inner.queue_depth,
                    hit_run_hits: inner.hit_run_hits,
                    invalidation_fanout: inner.invalidation_fanout,
                    context_switches: inner.context_switches,
                    switch_stall_cycles: inner.switch_stall_cycles,
                },
                inner.timeline,
                inner.attr,
            );
        }
        (EngineObsReport::default(), None, None)
    }
}

/// Distributions recorded by an instrumented simulation run.
///
/// Always available as a type; `enabled` is `false` (and every
/// histogram empty) when the crate was built without the `obs` feature.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineObsReport {
    /// Whether the run actually recorded (feature `obs` on).
    pub enabled: bool,
    /// Event-queue pops (batched dispatches, not references).
    pub events: u64,
    /// Pending-event count at each pop (including the popped event).
    pub queue_depth: Histogram,
    /// Consecutive cache hits per dispatch (the batching win: mean ≫ 1
    /// means the slot queue is touched far less than once per
    /// reference).
    pub hit_run_hits: Histogram,
    /// Remote caches invalidated per directory write transaction.
    pub invalidation_fanout: Histogram,
    /// Miss-induced context switches.
    pub context_switches: u64,
    /// Total pipeline-drain cycles paid for those switches.
    pub switch_stall_cycles: u64,
}

impl EngineObsReport {
    /// Writes the report as a JSON object value onto `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_bool("enabled", self.enabled);
        w.field_u64("events", self.events);
        w.field_u64("context_switches", self.context_switches);
        w.field_u64("switch_stall_cycles", self.switch_stall_cycles);
        w.key("queue_depth");
        self.queue_depth.write_json(w);
        w.key("hit_run_hits");
        self.hit_run_hits.write_json(w);
        w.key("invalidation_fanout");
        self.invalidation_fanout.write_json(w);
        w.end_object();
    }

    /// The report as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_obs::json;

    #[test]
    fn disabled_collector_reports_disabled() {
        let mut obs = EngineObs::disabled();
        obs.on_pop(&[1, NO_EVENT]);
        obs.on_hit_run(5);
        obs.on_invalidation_fanout(2);
        obs.on_switch(6);
        let report = obs.report();
        assert!(!report.enabled);
        assert_eq!(report, EngineObsReport::default());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn enabled_collector_records() {
        let mut obs = EngineObs::enabled();
        obs.on_pop(&[3, NO_EVENT, 7]);
        obs.on_pop(&[3, NO_EVENT, NO_EVENT]);
        obs.on_hit_run(0);
        obs.on_hit_run(12);
        obs.on_invalidation_fanout(2);
        obs.on_switch(6);
        obs.on_switch(6);
        let report = obs.report();
        assert!(report.enabled);
        assert_eq!(report.events, 2);
        assert_eq!(report.queue_depth.max(), Some(2));
        assert_eq!(report.queue_depth.min(), Some(1));
        assert_eq!(report.hit_run_hits.count(), 2);
        assert_eq!(report.hit_run_hits.sum(), 12);
        assert_eq!(report.invalidation_fanout.sum(), 2);
        assert_eq!(report.context_switches, 2);
        assert_eq!(report.switch_stall_cycles, 12);
    }

    #[test]
    fn report_json_shape() {
        let report = EngineObsReport::default();
        let s = report.to_json();
        assert!(json::balanced(&s));
        json::require_keys(
            &s,
            &[
                "enabled",
                "events",
                "context_switches",
                "switch_stall_cycles",
                "queue_depth",
                "hit_run_hits",
                "invalidation_fanout",
            ],
        )
        .unwrap();
        assert!(s.contains("\"enabled\": false"));
    }
}
