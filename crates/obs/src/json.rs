//! Hand-rolled JSON writing and validation.
//!
//! The workspace's vendored `serde` is an API stand-in with no real
//! serialization, so every JSON artifact (bench results, run manifests,
//! `--metrics` output) is built with [`JsonWriter`] and sanity-checked
//! with the validators here before it is written to disk.

use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal
/// (without the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A minimal streaming JSON writer producing human-readable output
/// (single-space separators, no indentation).
///
/// The writer tracks nesting only to place commas; it does not try to
/// prevent structurally invalid call sequences — callers pair their
/// `begin_*`/`end_*` calls and run the result through [`balanced`] /
/// [`require_keys`] in tests.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once a value has been
    /// written inside it (so the next value needs a comma).
    stack: Vec<bool>,
    /// Set by [`JsonWriter::key`]: the next value belongs to the key
    /// just written and must not emit its own comma.
    pending_key: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(needs_comma) = self.stack.last_mut() {
            if *needs_comma {
                self.out.push_str(", ");
            }
            *needs_comma = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next write supplies its value.
    pub fn key(&mut self, k: &str) {
        self.before_value();
        let _ = write!(self.out, "\"{}\": ", escape(k));
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) {
        self.before_value();
        let _ = write!(self.out, "\"{}\"", escape(v));
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value (`null` if non-finite).
    pub fn value_f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a `null` value.
    pub fn value_null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Key + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
    }

    /// Key + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
    }

    /// Key + float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.value_f64(v);
    }

    /// Key + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.value_bool(v);
    }

    /// Consumes the writer and returns the JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Checks that braces and brackets nest and balance, ignoring anything
/// inside string literals. A cheap structural sanity check for JSON the
/// workspace emits (mirrors the validator the bench harness uses).
pub fn balanced(json: &str) -> bool {
    let mut stack = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for ch in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
            continue;
        }
        match ch {
            '"' => in_string = true,
            '{' | '[' => stack.push(ch),
            '}' if stack.pop() != Some('{') => return false,
            ']' if stack.pop() != Some('[') => return false,
            _ => {}
        }
    }
    stack.is_empty() && !in_string
}

/// Checks that every key in `keys` appears (as `"key":`) in `json`.
///
/// # Errors
///
/// Returns the first missing key.
pub fn require_keys(json: &str, keys: &[&str]) -> Result<(), String> {
    for key in keys {
        let needle = format!("\"{key}\":");
        if !json.contains(&needle) {
            return Err(format!("missing required key {key:?}"));
        }
    }
    Ok(())
}

/// Extracts every numeric value stored under `"key":` in `json`.
/// Non-numeric values under the key are skipped.
pub fn field_values(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let value = rest.trim_start();
        let end = value
            .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
            .unwrap_or(value.len());
        if let Ok(v) = value[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn writer_builds_object() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "water");
        w.field_u64("threads", 16);
        w.field_f64("scale", 0.25);
        w.field_bool("ok", true);
        w.key("list");
        w.begin_array();
        w.value_u64(1);
        w.value_u64(2);
        w.end_array();
        w.key("none");
        w.value_null();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            "{\"name\": \"water\", \"threads\": 16, \"scale\": 0.25, \
             \"ok\": true, \"list\": [1, 2], \"none\": null}"
        );
        assert!(balanced(&s));
    }

    #[test]
    fn writer_nested_objects() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("inner");
        w.begin_object();
        w.field_u64("x", 1);
        w.end_object();
        w.field_u64("y", 2);
        w.end_object();
        let s = w.finish();
        assert_eq!(s, "{\"inner\": {\"x\": 1}, \"y\": 2}");
        assert!(balanced(&s));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("bad", f64::NAN);
        w.end_object();
        assert_eq!(w.finish(), "{\"bad\": null}");
    }

    #[test]
    fn balanced_rejects_mismatches() {
        assert!(balanced("{\"a\": [1, 2]}"));
        assert!(!balanced("{\"a\": [1, 2}"));
        assert!(!balanced("{"));
        assert!(balanced("{\"brace in string\": \"}}}\"}"));
        assert!(!balanced("\"unterminated"));
    }

    #[test]
    fn require_keys_reports_missing() {
        let json = "{\"a\": 1, \"b\": 2}";
        assert!(require_keys(json, &["a", "b"]).is_ok());
        let err = require_keys(json, &["a", "c"]).unwrap_err();
        assert!(err.contains("\"c\""));
    }

    #[test]
    fn field_values_extracts_numbers() {
        let json = "{\"t\": 1.5, \"x\": {\"t\": 2}, \"t\": \"str\"}";
        assert_eq!(field_values(json, "t"), vec![1.5, 2.0]);
    }
}
