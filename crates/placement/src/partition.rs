//! Cluster partitions and the thread-balance constraint.

use serde::{Deserialize, Serialize};

/// The thread-balance shape for `t` threads on `p` processors: final
/// cluster sizes must be ⌊t/p⌋ or ⌈t/p⌉, with exactly `t mod p` clusters
/// of the larger size (paper §2: "each cluster must have t/p threads if p
/// divides evenly into t; otherwise some processors will have ⌊t/p⌋
/// threads and others ⌈t/p⌉").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BalanceSpec {
    threads: usize,
    processors: usize,
}

impl BalanceSpec {
    /// Creates the spec. `processors` may not exceed `threads` (callers
    /// validate; this type only describes the shape).
    pub fn new(threads: usize, processors: usize) -> Self {
        BalanceSpec {
            threads,
            processors,
        }
    }

    /// ⌊t/p⌋.
    pub fn floor_size(&self) -> usize {
        self.threads / self.processors.max(1)
    }

    /// ⌈t/p⌉ — also the maximum legal cluster size.
    pub fn ceil_size(&self) -> usize {
        self.threads.div_ceil(self.processors.max(1))
    }

    /// Number of clusters that must have the ⌈t/p⌉ size (0 when `p | t`).
    pub fn big_clusters(&self) -> usize {
        if self.floor_size() == self.ceil_size() {
            0
        } else {
            self.threads % self.processors
        }
    }

    /// Target processor count.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Whether a combine producing `new_size`, in a partition currently
    /// holding `big_count` clusters of the ceiling size, keeps a balanced
    /// completion possible.
    ///
    /// Necessary conditions: the new cluster fits under the ceiling, and
    /// — when sizes are uneven — the count of ceiling-sized clusters never
    /// exceeds `t mod p`. (Sufficiency is restored by the engine's
    /// backtracking.)
    pub fn combine_allowed(&self, new_size: usize, big_count_after: usize) -> bool {
        let ceil = self.ceil_size();
        if new_size > ceil {
            return false;
        }
        if self.floor_size() != ceil && new_size == ceil && big_count_after > self.big_clusters() {
            return false;
        }
        true
    }
}

/// A working partition of threads into clusters during cluster combining.
///
/// Clusters are lists of thread indices. Combining removes the
/// higher-indexed cluster and appends its members to the lower-indexed
/// one, so an undo log of `(kept, merged_members)` supports the engine's
/// backtracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    clusters: Vec<Vec<usize>>,
}

impl Partition {
    /// The initial partition: each of `t` threads in its own cluster.
    pub fn singletons(t: usize) -> Self {
        Partition {
            clusters: (0..t).map(|i| vec![i]).collect(),
        }
    }

    /// Builds a partition from explicit clusters (used in tests).
    pub fn from_clusters(clusters: Vec<Vec<usize>>) -> Self {
        Partition { clusters }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` if there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Members of cluster `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cluster(&self, i: usize) -> &[usize] {
        &self.clusters[i]
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Number of clusters whose size equals `size`.
    pub fn count_of_size(&self, size: usize) -> usize {
        self.clusters.iter().filter(|c| c.len() == size).count()
    }

    /// Combines clusters `a` and `b` (`a != b`), keeping the smaller
    /// index. Returns an undo token for [`Partition::undo`].
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn combine(&mut self, a: usize, b: usize) -> UndoToken {
        assert!(a != b, "cannot combine a cluster with itself");
        let (keep, remove) = if a < b { (a, b) } else { (b, a) };
        let moved = self.clusters.remove(remove);
        let moved_len = moved.len();
        self.clusters[keep].extend(moved);
        UndoToken {
            keep,
            removed_at: remove,
            moved_len,
        }
    }

    /// Reverts the most recent [`Partition::combine`] described by `token`.
    ///
    /// Tokens must be undone in LIFO order.
    pub fn undo(&mut self, token: UndoToken) {
        let keep_cluster = &mut self.clusters[token.keep];
        let split = keep_cluster.len() - token.moved_len;
        let moved: Vec<usize> = keep_cluster.split_off(split);
        self.clusters.insert(token.removed_at, moved);
    }

    /// Consumes the partition, returning its clusters.
    pub fn into_clusters(self) -> Vec<Vec<usize>> {
        self.clusters
    }
}

/// Undo record for one combine step (LIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoToken {
    keep: usize,
    removed_at: usize,
    moved_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_spec_even() {
        let s = BalanceSpec::new(8, 4);
        assert_eq!(s.floor_size(), 2);
        assert_eq!(s.ceil_size(), 2);
        assert_eq!(s.big_clusters(), 0);
        assert!(s.combine_allowed(2, 99)); // big count irrelevant when even
        assert!(!s.combine_allowed(3, 0));
    }

    #[test]
    fn balance_spec_uneven() {
        let s = BalanceSpec::new(5, 2);
        assert_eq!(s.floor_size(), 2);
        assert_eq!(s.ceil_size(), 3);
        assert_eq!(s.big_clusters(), 1);
        assert!(s.combine_allowed(3, 1));
        assert!(!s.combine_allowed(3, 2)); // a second ceil-sized cluster
        assert!(!s.combine_allowed(4, 1));
    }

    #[test]
    fn combine_and_undo_roundtrip() {
        let mut p = Partition::singletons(4);
        let before = p.clone();
        let tok = p.combine(1, 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.cluster(1), &[1, 3]);
        p.undo(tok);
        assert_eq!(p, before);
    }

    #[test]
    fn combine_keeps_lower_index() {
        let mut p = Partition::singletons(3);
        p.combine(2, 0);
        assert_eq!(p.cluster(0), &[0, 2]);
        assert_eq!(p.cluster(1), &[1]);
    }

    #[test]
    fn nested_undo_lifo() {
        let mut p = Partition::singletons(5);
        let before = p.clone();
        let t1 = p.combine(0, 1);
        let t2 = p.combine(0, 2); // cluster 2 is thread 3 after first merge
        p.undo(t2);
        p.undo(t1);
        assert_eq!(p, before);
    }

    #[test]
    fn count_of_size() {
        let p = Partition::from_clusters(vec![vec![0, 1], vec![2], vec![3, 4]]);
        assert_eq!(p.count_of_size(2), 2);
        assert_eq!(p.count_of_size(1), 1);
        assert_eq!(p.count_of_size(3), 0);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_combine_panics() {
        let mut p = Partition::singletons(2);
        p.combine(1, 1);
    }
}
