//! Post-drain invariant auditor (feature `audit`).
//!
//! The paper's results are only as trustworthy as the simulator's cycle
//! accounting and miss taxonomy, and both engines have been through
//! aggressive hot-path rewrites. With the `audit` feature on, every
//! simulation re-derives the laws those rewrites must preserve after
//! the event queue drains and aborts with a structured diagnostic if
//! any fails:
//!
//! 1. **Cycle conservation** — per processor,
//!    `busy + switching + idle == finish_time`.
//! 2. **Reference conservation** — per processor,
//!    `hits + misses + barrier_ops` equals the references its placed
//!    threads dispatched.
//! 3. **Taxonomy vs. cache counts** — per processor, the four-way miss
//!    breakdown sums to the cache's fill count (every miss fills
//!    exactly once).
//! 4. **Owner-state consistency** — every resident cache line agrees
//!    with the directory in both directions: residents are tracked
//!    sharers, exclusively-held residents are the directory's sole
//!    owner, and every directory entry points at caches that actually
//!    hold the line in a state the active protocol allows.
//!
//! Plus the global symmetries `invalidations sent == received` and
//! `updates sent == received`, and per-protocol laws:
//!
//! * **Write-invalidate** — only Shared/Modified states appear and the
//!   update counters are structurally zero.
//! * **MESI** — update counters are zero, and E-state exclusivity: a
//!   cache holding a line Exclusive or Modified is the directory's sole
//!   owner, and a directory owner's cache holds E or M.
//! * **Dragon** — no invalidations exist anywhere (counters and the
//!   invalidation-miss taxonomy bucket are zero), upgrades are zero
//!   (shared writes update instead), and no-stale-sharer: every sharer
//!   of a shared line holds it Shared or SharedDirty with at most one
//!   SharedDirty owner per line.

use crate::cache::{LineState, ProcessorCache};
use crate::directory::Directory;
use crate::protocol::Protocol;
use crate::stats::ProcStats;
use placesim_placement::{PlacementMap, ProcessorId};
use placesim_trace::ProgramTrace;

/// Validates the post-drain machine state against the conservation
/// laws.
///
/// # Panics
///
/// Panics with a diagnostic listing every violated invariant; a clean
/// machine returns silently.
pub(crate) fn check_drained(
    prog: &ProgramTrace,
    map: &PlacementMap,
    stats: &[ProcStats],
    caches: &[ProcessorCache],
    directory: &Directory,
) {
    let mut violations: Vec<String> = Vec::new();

    for (pi, st) in stats.iter().enumerate() {
        if st.accounted_cycles() != st.finish_time {
            violations.push(format!(
                "processor {pi}: busy {} + switching {} + idle {} = {} != finish_time {}",
                st.busy,
                st.switching,
                st.idle,
                st.accounted_cycles(),
                st.finish_time
            ));
        }
        let dispatched: u64 = map
            .threads_on(ProcessorId::from_index(pi))
            .iter()
            .map(|&tid| prog.thread(tid).len() as u64)
            .sum();
        if st.refs() != dispatched {
            violations.push(format!(
                "processor {pi}: hits {} + misses {} + barrier_ops {} = {} != {} refs dispatched",
                st.hits,
                st.misses.total(),
                st.barrier_ops,
                st.refs(),
                dispatched
            ));
        }
        if st.misses.total() != caches[pi].fill_count() {
            violations.push(format!(
                "processor {pi}: miss taxonomy totals {} but the cache performed {} fills",
                st.misses.total(),
                caches[pi].fill_count()
            ));
        }
    }

    let sent: u64 = stats.iter().map(|s| s.invalidations_sent).sum();
    let received: u64 = stats.iter().map(|s| s.invalidations_received).sum();
    if sent != received {
        violations.push(format!(
            "machine: {sent} invalidations sent but {received} received"
        ));
    }
    let upd_sent: u64 = stats.iter().map(|s| s.updates_sent).sum();
    let upd_received: u64 = stats.iter().map(|s| s.updates_received).sum();
    if upd_sent != upd_received {
        violations.push(format!(
            "machine: {upd_sent} updates sent but {upd_received} received"
        ));
    }

    // Every cache in one machine runs the same protocol.
    let protocol = caches
        .first()
        .map_or(Protocol::Wi, ProcessorCache::protocol);
    debug_assert!(caches.iter().all(|c| c.protocol() == protocol));

    // Per-protocol traffic laws.
    match protocol {
        Protocol::Wi | Protocol::Mesi => {
            if upd_sent != 0 {
                violations.push(format!(
                    "machine: {upd_sent} updates sent under {protocol}, which never updates"
                ));
            }
        }
        Protocol::Dragon => {
            if sent != 0 {
                violations.push(format!(
                    "machine: {sent} invalidations sent under dragon, which never invalidates"
                ));
            }
            let inv_misses: u64 = stats.iter().map(|s| s.misses.invalidation).sum();
            if inv_misses != 0 {
                violations.push(format!(
                    "machine: {inv_misses} invalidation misses under dragon, which never \
                     invalidates"
                ));
            }
            let upgrades: u64 = stats.iter().map(|s| s.upgrades).sum();
            if upgrades != 0 {
                violations.push(format!(
                    "machine: {upgrades} upgrades under dragon, whose shared writes update \
                     instead"
                ));
            }
        }
    }

    // Cache → directory: every resident line must be a tracked sharer;
    // exclusive states (M, and E under MESI/Dragon) require sole
    // directory ownership; a SharedDirty resident must *not* be an
    // exclusive owner (it shares the line by definition). States outside
    // the protocol's lattice are violations outright.
    let lattice = protocol.semantics().lattice();
    for (pi, cache) in caches.iter().enumerate() {
        let me = ProcessorId::from_index(pi);
        for (line, state) in cache.iter_resident() {
            if !lattice.contains(&state) {
                violations.push(format!(
                    "processor {pi}: line {line:#x} resident {state:?}, outside the {protocol} \
                     lattice"
                ));
            }
            if !directory.holds(me, line) {
                violations.push(format!(
                    "processor {pi}: line {line:#x} resident {state:?} but untracked by the \
                     directory"
                ));
            } else {
                match state {
                    LineState::Modified | LineState::Exclusive => {
                        if directory.owner(line) != Some(me) {
                            violations.push(format!(
                                "processor {pi}: line {line:#x} resident {state:?} but directory \
                                 owner is {:?}",
                                directory.owner(line)
                            ));
                        }
                    }
                    LineState::SharedDirty => {
                        if directory.owner(line).is_some() {
                            violations.push(format!(
                                "processor {pi}: line {line:#x} resident SharedDirty but the \
                                 directory records an exclusive owner"
                            ));
                        }
                    }
                    LineState::Shared => {}
                }
            }
        }
    }

    // Directory → caches: every tracked sharer must hold the line in a
    // state the protocol allows for its directory role.
    for (line, sharers, owner) in directory.iter_lines() {
        match owner {
            Some(o) => {
                if sharers.len() != 1 || !sharers.contains(o) {
                    violations.push(format!(
                        "directory: exclusive line {line:#x} owned by {} has sharer set of {}",
                        o.index(),
                        sharers.len()
                    ));
                }
                // WI has no clean-exclusive state; MESI/Dragon owners may
                // hold E (clean) or M (dirty) — the silent E→M upgrade is
                // invisible to the directory.
                let held = caches[o.index()].state_of(line);
                let ok = match protocol {
                    Protocol::Wi => held == Some(LineState::Modified),
                    Protocol::Mesi | Protocol::Dragon => {
                        matches!(held, Some(LineState::Modified | LineState::Exclusive))
                    }
                };
                if !ok {
                    violations.push(format!(
                        "directory: line {line:#x} exclusively owned by {} but its cache holds \
                         {held:?}",
                        o.index()
                    ));
                }
            }
            None => {
                let mut dirty_sharers = 0u32;
                for q in sharers.iter() {
                    let held = caches[q.index()].state_of(line);
                    if held == Some(LineState::SharedDirty) {
                        dirty_sharers += 1;
                    }
                    let ok = match protocol {
                        Protocol::Wi | Protocol::Mesi => held == Some(LineState::Shared),
                        Protocol::Dragon => {
                            matches!(held, Some(LineState::Shared | LineState::SharedDirty))
                        }
                    };
                    if !ok {
                        violations.push(format!(
                            "directory: line {line:#x} shared by {} but its cache holds {held:?}",
                            q.index()
                        ));
                    }
                }
                // Dragon no-stale-sharer: one dirty owner at most; every
                // other copy was refreshed by its updates.
                if dirty_sharers > 1 {
                    violations.push(format!(
                        "directory: line {line:#x} has {dirty_sharers} SharedDirty holders \
                         (at most one dirty owner is legal)"
                    ));
                }
            }
        }
    }

    assert!(
        violations.is_empty(),
        "invariant audit failed after drain ({} violation{}):\n  - {}",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" },
        violations.join("\n  - ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use crate::engine::simulate;
    use placesim_trace::{Address, MemRef, ThreadTrace};

    fn prog_and_map() -> (ProgramTrace, PlacementMap) {
        let mk = |base: u64| -> ThreadTrace {
            (0..40)
                .map(|i| MemRef::instr(Address::new(base + 4 * (i % 8))))
                .collect()
        };
        let prog = ProgramTrace::new("audited", vec![mk(0), mk(0x4000), mk(0x8000), mk(0)]);
        let map = PlacementMap::from_clusters(vec![vec![0, 3], vec![1, 2]]).unwrap();
        (prog, map)
    }

    #[test]
    fn clean_run_passes_the_auditor() {
        // `simulate` itself runs the auditor when this module is
        // compiled; this pins that a normal run does not trip it.
        let (prog, map) = prog_and_map();
        let stats = simulate(&prog, &map, &ArchConfig::paper_default()).unwrap();
        assert_eq!(stats.total_refs(), prog.total_refs());
    }

    #[test]
    fn mesi_and_dragon_clean_runs_pass_the_auditor() {
        // A read/write mix over a shared region so every protocol path
        // (exclusive fills, silent upgrades, updates) is exercised under
        // the auditor.
        let mk = |base: u64| -> ThreadTrace {
            (0..60)
                .map(|i| {
                    let addr = Address::new(base + 4 * (i % 16));
                    if i % 5 == 0 {
                        MemRef::write(addr)
                    } else {
                        MemRef::read(addr)
                    }
                })
                .collect()
        };
        let prog = ProgramTrace::new("audited", vec![mk(0), mk(0x4000), mk(0), mk(0x100)]);
        let map = PlacementMap::from_clusters(vec![vec![0, 1], vec![2, 3]]).unwrap();
        for protocol in Protocol::ALL {
            let mut builder = ArchConfig::builder();
            builder.protocol(protocol);
            let config = builder.build().unwrap();
            let stats = simulate(&prog, &map, &config).unwrap();
            assert_eq!(stats.total_refs(), prog.total_refs(), "{protocol}");
            if protocol == Protocol::Dragon {
                assert_eq!(stats.total_invalidations(), 0, "dragon invalidated");
            } else {
                assert_eq!(stats.total_updates(), 0, "{protocol} sent updates");
            }
        }
    }

    #[test]
    fn corrupt_stats_are_caught() {
        let (prog, map) = prog_and_map();
        let config = ArchConfig::paper_default();
        let stats = simulate(&prog, &map, &config).unwrap();
        let mut forged: Vec<ProcStats> = stats.per_proc().to_vec();
        forged[0].busy += 1; // break cycle conservation
        forged[1].hits += 1; // break reference conservation
        let caches: Vec<ProcessorCache> = (0..2)
            .map(|_| ProcessorCache::new(config.num_sets()))
            .collect();
        let directory = Directory::new();
        let err = std::panic::catch_unwind(|| {
            check_drained(&prog, &map, &forged, &caches, &directory);
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("invariant audit failed"), "got: {msg}");
        assert!(msg.contains("finish_time"), "got: {msg}");
        assert!(msg.contains("refs dispatched"), "got: {msg}");
    }

    #[test]
    fn owner_state_divergence_is_caught() {
        let (prog, map) = prog_and_map();
        let config = ArchConfig::paper_default();
        let mut caches: Vec<ProcessorCache> = (0..2)
            .map(|_| ProcessorCache::new(config.num_sets()))
            .collect();
        let mut directory = Directory::new();
        // Cache 0 holds line 7 Modified, directory thinks 1 owns it.
        caches[0].fill(7, LineState::Modified, placesim_trace::ThreadId::new(0));
        directory.write_fill(ProcessorId::from_index(1), 7);
        // Zeroed stats for the empty "machine", with refs forged to match
        // dispatch so only the owner-state checks fire.
        let mut stats = vec![ProcStats::default(); 2];
        for (pi, st) in stats.iter_mut().enumerate() {
            st.hits = map
                .threads_on(ProcessorId::from_index(pi))
                .iter()
                .map(|&tid| prog.thread(tid).len() as u64)
                .sum();
        }
        stats[0].misses.compulsory = caches[0].fill_count();
        stats[0].hits -= caches[0].fill_count();
        let err = std::panic::catch_unwind(|| {
            check_drained(&prog, &map, &stats, &caches, &directory);
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("line 0x7"), "got: {msg}");
    }
}
