//! Admission-control proof for the placement service: a submission
//! storm at several times the queue capacity draws typed `overload`
//! rejections, never a hang, and — measured under a tracking global
//! allocator — peak memory bounded by the queue capacity, not by the
//! storm size. A daemon under attack sheds load; it does not grow.

use placesim::service::{PlacementService, ServiceConfig};
use placesim_obs::json::{self, JsonValue};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator, tracking current and peak live bytes.
struct TrackingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

// SAFETY: delegates allocation verbatim to `System`; the bookkeeping is
// plain atomic arithmetic on the side.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = self.current.fetch_add(layout.size(), Ordering::SeqCst) + layout.size();
            self.peak.fetch_max(live, Ordering::SeqCst);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.current.fetch_sub(layout.size(), Ordering::SeqCst);
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc {
    current: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "placesim-service-overload-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn submit_line(seed: u64) -> String {
    format!(
        "{{\"schema\": \"placesim-service-v1\", \"op\": \"submit\", \"job\": \
         {{\"op\": \"simulate\", \"app\": \"water\", \"scale\": 0.002, \"seed\": {seed}, \
         \"algorithms\": [\"LOAD-BAL\"], \"processors\": [4]}}}}"
    )
}

const QUEUE_CAPACITY: usize = 8;
/// Storm size: well past the acceptance bar of 2× capacity.
const STORM: u64 = 4 * QUEUE_CAPACITY as u64;

#[test]
fn overload_storm_is_shed_with_bounded_memory() {
    let dir = tmp_dir("storm");
    // Zero workers: the queue never drains, so capacity is reached
    // deterministically and every later submit must be shed.
    let cfg = ServiceConfig {
        workers: 0,
        queue_capacity: QUEUE_CAPACITY,
        job_timeout: None,
        max_attempts: 1,
        backoff: None,
        cache_capacity: QUEUE_CAPACITY,
    };
    let (svc, _) = PlacementService::start(&dir, cfg).unwrap();

    // Measure the storm itself: baseline is the live size after the
    // daemon is up, so the peak reflects admission control, not setup.
    let base = ALLOC.current.load(Ordering::SeqCst);
    ALLOC.peak.store(base, Ordering::SeqCst);

    let mut accepted = 0u64;
    let mut overloaded = 0u64;
    for seed in 0..STORM {
        // Distinct seeds defeat the result cache: every submit is a
        // genuinely new job.
        let resp = svc.handle_request(&submit_line(seed));
        let doc = json::parse(&resp).expect("responses are strict JSON");
        match doc.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => accepted += 1,
            _ => {
                assert_eq!(
                    doc.get("error").and_then(JsonValue::as_str),
                    Some("overload"),
                    "rejection must be typed: {resp}"
                );
                overloaded += 1;
            }
        }
    }
    let peak = ALLOC.peak.load(Ordering::SeqCst).saturating_sub(base);

    assert_eq!(accepted, QUEUE_CAPACITY as u64, "queue fills exactly once");
    assert_eq!(overloaded, STORM - QUEUE_CAPACITY as u64);

    // Memory bound: capacity-many queued specs plus fixed service
    // overhead. Crucially this does NOT scale with the storm size —
    // 24 shed submissions cost only their transient response strings.
    let bound = QUEUE_CAPACITY * 64 * 1024 + 512 * 1024;
    assert!(
        peak <= bound,
        "storm of {STORM} peaked at {peak} bytes (bound {bound})"
    );

    // The status counters agree with what the client observed.
    let resp = svc.handle_request("{\"schema\": \"placesim-service-v1\", \"op\": \"status\"}");
    let doc = json::parse(&resp).unwrap();
    let metrics = doc.get("metrics").expect("status carries metrics");
    assert_eq!(
        metrics.get("accepted").and_then(JsonValue::as_u64),
        Some(accepted)
    );
    assert_eq!(
        metrics.get("rejected_overload").and_then(JsonValue::as_u64),
        Some(overloaded)
    );
    // The queue-depth histogram sampled every submit in the storm.
    let samples = metrics
        .get("queue_depth")
        .and_then(|h| h.get("count"))
        .and_then(JsonValue::as_u64);
    assert_eq!(samples, Some(STORM));

    svc.drain_and_join();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn sustained_overload_does_not_grow_per_round() {
    let dir = tmp_dir("sustained");
    let cfg = ServiceConfig {
        workers: 0,
        queue_capacity: 4,
        job_timeout: None,
        max_attempts: 1,
        backoff: None,
        cache_capacity: 4,
    };
    let (svc, _) = PlacementService::start(&dir, cfg).unwrap();

    // Fill the queue, then hammer it in rounds. Peak live growth per
    // round must be flat: rejections allocate transient response
    // strings only, nothing that accumulates.
    for seed in 0..4u64 {
        let resp = svc.handle_request(&submit_line(seed));
        assert!(resp.contains("\"ok\": true"), "{resp}");
    }
    let mut round_peaks = Vec::new();
    for round in 0..4u64 {
        let base = ALLOC.current.load(Ordering::SeqCst);
        ALLOC.peak.store(base, Ordering::SeqCst);
        for i in 0..64u64 {
            let resp = svc.handle_request(&submit_line(1000 + round * 64 + i));
            assert!(resp.contains("\"error\": \"overload\""), "{resp}");
        }
        round_peaks.push(ALLOC.peak.load(Ordering::SeqCst).saturating_sub(base));
    }
    // Every round of 64 rejections fits in a small fixed budget; no
    // round may cost materially more than the first (no leak trend).
    for (i, &peak) in round_peaks.iter().enumerate() {
        assert!(peak <= 256 * 1024, "round {i} peaked at {peak} bytes");
    }

    svc.drain_and_join();
    fs::remove_dir_all(&dir).ok();
}
