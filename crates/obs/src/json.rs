//! Hand-rolled JSON writing and validation.
//!
//! The workspace's vendored `serde` is an API stand-in with no real
//! serialization, so every JSON artifact (bench results, run manifests,
//! `--metrics` output) is built with [`JsonWriter`] and sanity-checked
//! with the validators here before it is written to disk.

use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal
/// (without the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A minimal streaming JSON writer producing human-readable output
/// (single-space separators, no indentation).
///
/// The writer tracks nesting only to place commas; it does not try to
/// prevent structurally invalid call sequences — callers pair their
/// `begin_*`/`end_*` calls and run the result through [`balanced`] /
/// [`require_keys`] in tests.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once a value has been
    /// written inside it (so the next value needs a comma).
    stack: Vec<bool>,
    /// Set by [`JsonWriter::key`]: the next value belongs to the key
    /// just written and must not emit its own comma.
    pending_key: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(needs_comma) = self.stack.last_mut() {
            if *needs_comma {
                self.out.push_str(", ");
            }
            *needs_comma = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next write supplies its value.
    pub fn key(&mut self, k: &str) {
        self.before_value();
        let _ = write!(self.out, "\"{}\": ", escape(k));
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) {
        self.before_value();
        let _ = write!(self.out, "\"{}\"", escape(v));
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value (`null` if non-finite).
    pub fn value_f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a `null` value.
    pub fn value_null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Key + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
    }

    /// Key + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
    }

    /// Key + float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.value_f64(v);
    }

    /// Key + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.value_bool(v);
    }

    /// Consumes the writer and returns the JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Checks that braces and brackets nest and balance, ignoring anything
/// inside string literals. A cheap structural sanity check for JSON the
/// workspace emits (mirrors the validator the bench harness uses).
pub fn balanced(json: &str) -> bool {
    let mut stack = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for ch in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
            continue;
        }
        match ch {
            '"' => in_string = true,
            '{' | '[' => stack.push(ch),
            '}' if stack.pop() != Some('{') => return false,
            ']' if stack.pop() != Some('[') => return false,
            _ => {}
        }
    }
    stack.is_empty() && !in_string
}

/// Checks that every key in `keys` appears (as `"key":`) in `json`.
///
/// # Errors
///
/// Returns the first missing key.
pub fn require_keys(json: &str, keys: &[&str]) -> Result<(), String> {
    for key in keys {
        let needle = format!("\"{key}\":");
        if !json.contains(&needle) {
            return Err(format!("missing required key {key:?}"));
        }
    }
    Ok(())
}

/// Extracts every numeric value stored under `"key":` in `json`.
/// Non-numeric values under the key are skipped.
pub fn field_values(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let value = rest.trim_start();
        let end = value
            .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
            .unwrap_or(value.len());
        if let Ok(v) = value[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// A parsed JSON value.
///
/// Object members keep their document order in a `Vec` (the workspace's
/// documents are small, and order preservation makes diffs and error
/// messages stable). Numbers are stored as `f64`; integers are exact up
/// to 2^53, far beyond any counter this workspace emits.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number within exact `f64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Maximum container nesting [`parse`] accepts.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document strictly: exactly one value, no
/// trailing garbage, no duplicate object keys, nesting bounded by a
/// fixed depth. This is the reader side of [`JsonWriter`] — every
/// manifest and report the workspace ingests goes through it.
///
/// # Errors
///
/// Returns a description (with byte offset) of the first problem found.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(input, bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(
    input: &str,
    bytes: &[u8],
    pos: &mut usize,
    depth: usize,
) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members: Vec<(String, JsonValue)> = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(input, bytes, pos)?;
                if members.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate key {key:?} at byte {pos}"));
                }
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(input, bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(input, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(input, bytes, pos)?)),
        Some(b't') if input[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if input[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if input[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && (bytes[*pos].is_ascii_digit() || b".-+eE".contains(&bytes[*pos]))
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(format!("unexpected character at byte {start}"));
            }
            input[start..*pos]
                .parse::<f64>()
                .ok()
                .filter(|n| n.is_finite())
                .map(JsonValue::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let rest = &input[*pos..];
        let mut chars = rest.char_indices();
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some((_, '"')) => {
                *pos += 1;
                return Ok(out);
            }
            Some((_, '\\')) => match chars.next() {
                Some((i, esc)) => {
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let hex = rest.get(2..6).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                            // Surrogates map to the replacement character;
                            // the writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        other => return Err(format!("unknown escape \\{other} at byte {pos}")),
                    }
                    *pos += i + esc.len_utf8();
                }
                None => return Err("unterminated escape".into()),
            },
            Some((i, c)) => {
                out.push(c);
                *pos += i + c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn writer_builds_object() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "water");
        w.field_u64("threads", 16);
        w.field_f64("scale", 0.25);
        w.field_bool("ok", true);
        w.key("list");
        w.begin_array();
        w.value_u64(1);
        w.value_u64(2);
        w.end_array();
        w.key("none");
        w.value_null();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            "{\"name\": \"water\", \"threads\": 16, \"scale\": 0.25, \
             \"ok\": true, \"list\": [1, 2], \"none\": null}"
        );
        assert!(balanced(&s));
    }

    #[test]
    fn writer_nested_objects() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("inner");
        w.begin_object();
        w.field_u64("x", 1);
        w.end_object();
        w.field_u64("y", 2);
        w.end_object();
        let s = w.finish();
        assert_eq!(s, "{\"inner\": {\"x\": 1}, \"y\": 2}");
        assert!(balanced(&s));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("bad", f64::NAN);
        w.end_object();
        assert_eq!(w.finish(), "{\"bad\": null}");
    }

    #[test]
    fn balanced_rejects_mismatches() {
        assert!(balanced("{\"a\": [1, 2]}"));
        assert!(!balanced("{\"a\": [1, 2}"));
        assert!(!balanced("{"));
        assert!(balanced("{\"brace in string\": \"}}}\"}"));
        assert!(!balanced("\"unterminated"));
    }

    #[test]
    fn require_keys_reports_missing() {
        let json = "{\"a\": 1, \"b\": 2}";
        assert!(require_keys(json, &["a", "b"]).is_ok());
        let err = require_keys(json, &["a", "c"]).unwrap_err();
        assert!(err.contains("\"c\""));
    }

    #[test]
    fn field_values_extracts_numbers() {
        let json = "{\"t\": 1.5, \"x\": {\"t\": 2}, \"t\": \"str\"}";
        assert_eq!(field_values(json, "t"), vec![1.5, 2.0]);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "wa\"ter\n");
        w.field_u64("n", 42);
        w.field_f64("x", 1.5);
        w.field_bool("ok", true);
        w.key("xs");
        w.begin_array();
        w.value_u64(1);
        w.value_u64(2);
        w.end_array();
        w.key("none");
        w.value_null();
        w.end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("wa\"ter\n"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let xs: Vec<u64> = v
            .get("xs")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.as_u64().unwrap())
            .collect();
        assert_eq!(xs, vec![1, 2]);
        assert!(v.get("none").unwrap().is_null());
        assert!(v.get("absent").is_none());
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("{} {}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\": 1}").is_ok());
    }

    #[test]
    fn parse_rejects_duplicate_keys() {
        let err = parse("{\"a\": 1, \"a\": 2}").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        // Duplicates in nested objects are caught too.
        assert!(parse("{\"o\": {\"k\": 1, \"k\": 1}}").is_err());
        // Same key in sibling objects is fine.
        assert!(parse("[{\"k\": 1}, {\"k\": 2}]").is_ok());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\"}",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2,]",
            "\"unterminated",
            "truth",
            "nul",
            "1e",
            "--3",
            "{\"a\": 01x}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_enforces_depth_limit() {
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e30").unwrap().as_u64(), None);
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        let v = parse("\"a\\u0041\\u00e9b\"").unwrap();
        assert_eq!(v.as_str(), Some("aAéb"));
    }
}
