//! Criterion benchmarks: front-end throughput — sharing-profile build
//! and clustering — for the fused paths against the retained reference
//! paths. `bench_pipeline` measures the same stages end-to-end at paper
//! scale; these microbenchmarks isolate each stage for regression
//! tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use placesim_analysis::SharingAnalysis;
use placesim_placement::{thread_lengths, PlacementAlgorithm, PlacementInputs, ScoreMode};
use placesim_workloads::{generate_with_access, spec, GenOptions};

const ALGOS: [PlacementAlgorithm; 12] = [
    PlacementAlgorithm::ShareRefs,
    PlacementAlgorithm::ShareRefsLb,
    PlacementAlgorithm::ShareAddr,
    PlacementAlgorithm::ShareAddrLb,
    PlacementAlgorithm::MinPriv,
    PlacementAlgorithm::MinPrivLb,
    PlacementAlgorithm::MinInvs,
    PlacementAlgorithm::MinInvsLb,
    PlacementAlgorithm::MaxWrites,
    PlacementAlgorithm::MaxWritesLb,
    PlacementAlgorithm::MinShare,
    PlacementAlgorithm::MinShareLb,
];

fn bench_frontend(c: &mut Criterion) {
    let opts = GenOptions {
        scale: 0.02,
        seed: 1994,
    };
    let s = spec("gauss").expect("suite app");
    let (prog, access) = generate_with_access(&s, &opts);
    let refs = prog.total_refs();

    // Profile build: the emitter's free access profile vs. rescanning
    // the packed trace words.
    let mut group = c.benchmark_group("profile");
    group.throughput(Throughput::Elements(refs));
    group.bench_function("fused-access", |b| {
        b.iter(|| SharingAnalysis::measure_access(&access))
    });
    group.bench_function("reference-rescan", |b| {
        b.iter(|| SharingAnalysis::measure_reference(&prog))
    });
    group.finish();

    // Clustering: the full twelve-algorithm sweep with the incremental
    // score cache vs. fresh rescoring on every merge. Cost depends on
    // thread count (127), not trace scale.
    let sharing = SharingAnalysis::measure_access(&access);
    let lengths = thread_lengths(&prog);
    let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(opts.seed);
    let mut group = c.benchmark_group("clustering");
    for (name, mode) in [("cached", ScoreMode::Cached), ("fresh", ScoreMode::Fresh)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| {
                for algo in ALGOS {
                    algo.place_with_mode(&inputs, 16, mode).expect("placement");
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_frontend
}
criterion_main!(benches);
