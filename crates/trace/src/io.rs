//! Compact binary (de)serialization of [`ProgramTrace`]s.
//!
//! The format mirrors what a tracing tool like MPtrace would emit after
//! post-processing: a small header followed by each thread's packed
//! reference words, little-endian.
//!
//! ```text
//! magic   b"PSIM"            4 bytes
//! version u32 LE             currently 1
//! name    u32 LE length + UTF-8 bytes
//! threads u32 LE count
//! per thread: u64 LE reference count, then count packed u64 LE words
//! ```
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), placesim_trace::TraceError> {
//! use placesim_trace::{io, Address, MemRef, ProgramTrace, ThreadTrace};
//!
//! let t: ThreadTrace = [MemRef::read(Address::new(0x40))].into_iter().collect();
//! let prog = ProgramTrace::new("roundtrip", vec![t]);
//!
//! let mut buf = Vec::new();
//! io::write_program(&prog, &mut buf)?;
//! let back = io::read_program(&mut buf.as_slice())?;
//! assert_eq!(back, prog);
//! # Ok(())
//! # }
//! ```

use crate::{ProgramTrace, ThreadTrace, TraceError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// File magic, `b"PSIM"`.
pub const MAGIC: [u8; 4] = *b"PSIM";
/// Current format version.
pub const VERSION: u32 = 1;

/// Serializes a program trace to any [`Write`] sink.
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the sink fails.
pub fn write_program<W: Write>(prog: &ProgramTrace, mut w: W) -> Result<(), TraceError> {
    let mut header = BytesMut::with_capacity(64);
    header.put_slice(&MAGIC);
    header.put_u32_le(VERSION);
    let name = prog.name().as_bytes();
    header.put_u32_le(u32::try_from(name.len()).map_err(|_| TraceError::Format {
        reason: "program name longer than u32::MAX bytes".into(),
    })?);
    header.put_slice(name);
    header.put_u32_le(
        u32::try_from(prog.thread_count()).map_err(|_| TraceError::Format {
            reason: "more than u32::MAX threads".into(),
        })?,
    );
    w.write_all(&header)?;

    let mut body = BytesMut::new();
    for (_, thread) in prog.iter() {
        body.clear();
        body.reserve(8 + thread.len() * 8);
        body.put_u64_le(thread.len() as u64);
        for &word in thread.packed() {
            body.put_u64_le(word);
        }
        w.write_all(&body)?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes a program trace into an owned byte buffer.
///
/// # Errors
///
/// Returns [`TraceError::Format`] only for pathological inputs (names or
/// thread counts exceeding `u32::MAX`).
pub fn to_bytes(prog: &ProgramTrace) -> Result<Bytes, TraceError> {
    let mut buf = Vec::new();
    write_program(prog, &mut buf)?;
    Ok(Bytes::from(buf))
}

/// Deserializes a program trace from any [`Read`] source.
///
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`TraceError::Format`] on a malformed stream,
/// [`TraceError::Version`] on a version mismatch and [`TraceError::Io`] on
/// read failures.
pub fn read_program<R: Read>(mut r: R) -> Result<ProgramTrace, TraceError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    from_bytes(&raw)
}

/// Deserializes a program trace from an in-memory buffer.
///
/// # Errors
///
/// Same as [`read_program`].
pub fn from_bytes(raw: &[u8]) -> Result<ProgramTrace, TraceError> {
    let mut buf = raw;

    let mut magic = [0u8; 4];
    take(&mut buf, 4, "magic")?.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(TraceError::Format {
            reason: format!("bad magic {magic:?}, expected {MAGIC:?}"),
        });
    }

    let version = take(&mut buf, 4, "version")?.get_u32_le();
    if version != VERSION {
        return Err(TraceError::Version {
            found: version,
            supported: VERSION,
        });
    }

    let name_len = take(&mut buf, 4, "name length")?.get_u32_le() as usize;
    let name_bytes = take(&mut buf, name_len, "name")?;
    let name = std::str::from_utf8(name_bytes)
        .map_err(|_| TraceError::Format {
            reason: "program name is not UTF-8".into(),
        })?
        .to_owned();

    let thread_count = take(&mut buf, 4, "thread count")?.get_u32_le() as usize;
    // The count is attacker-controlled and precedes the body: a 16-byte
    // file can claim 4 billion threads. Cap the pre-allocation by what
    // the remaining bytes could possibly encode (every thread needs at
    // least its 8-byte length word); a count above the cap either errors
    // below or grows the vec amortized like any push.
    let mut threads = Vec::with_capacity(thread_count.min(buf.len() / 8));
    for tid in 0..thread_count {
        let len = take(&mut buf, 8, "thread length")?.get_u64_le() as usize;
        let need = len.checked_mul(8).ok_or_else(|| TraceError::Format {
            reason: format!("thread {tid} length overflows"),
        })?;
        let mut words = take(&mut buf, need, "thread body")?;
        let mut packed = Vec::with_capacity(len);
        for _ in 0..len {
            packed.push(words.get_u64_le());
        }
        threads.push(ThreadTrace::from_packed(packed)?);
    }

    if !buf.is_empty() {
        return Err(TraceError::Format {
            reason: format!("{} trailing bytes after last thread", buf.len()),
        });
    }

    Ok(ProgramTrace::new(name, threads))
}

/// Splits `need` bytes off the front of `buf`, or errors naming `what`.
fn take<'a>(buf: &mut &'a [u8], need: usize, what: &str) -> Result<&'a [u8], TraceError> {
    if buf.len() < need {
        return Err(TraceError::Format {
            reason: format!(
                "truncated while reading {what}: need {need}, have {}",
                buf.len()
            ),
        });
    }
    let (head, tail) = buf.split_at(need);
    *buf = tail;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, MemRef};

    fn sample() -> ProgramTrace {
        let t0: ThreadTrace = [
            MemRef::instr(Address::new(0x100)),
            MemRef::read(Address::new(0x8000)),
            MemRef::write(Address::new(0x8010)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [MemRef::read(Address::new(0x8000))].into_iter().collect();
        ProgramTrace::new("sample-app", vec![t0, t1])
    }

    #[test]
    fn roundtrip() {
        let prog = sample();
        let bytes = to_bytes(&prog).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn roundtrip_empty_program() {
        let prog = ProgramTrace::new("", vec![]);
        let bytes = to_bytes(&prog).unwrap();
        assert_eq!(from_bytes(&bytes).unwrap(), prog);
    }

    /// Empty threads at every boundary position (first, middle, last)
    /// and a zero-thread program with a non-empty name: the writer must
    /// emit them and the reader restore them exactly — an empty thread
    /// is a zero length word, not an omitted one.
    #[test]
    fn empty_threads_roundtrip_at_boundaries() {
        let empty = ThreadTrace::new();
        let busy: ThreadTrace = (0..10u64)
            .map(|i| MemRef::read(Address::new(0x100 + 8 * i)))
            .collect();
        for threads in [
            vec![empty.clone()],
            vec![empty.clone(), busy.clone()],
            vec![busy.clone(), empty.clone()],
            vec![empty.clone(), busy.clone(), empty.clone()],
        ] {
            let prog = ProgramTrace::new("holes", threads);
            let back = from_bytes(&to_bytes(&prog).unwrap()).unwrap();
            assert_eq!(back, prog);
        }
        let named_zero = ProgramTrace::new("nothing", vec![]);
        let back = from_bytes(&to_bytes(&named_zero).unwrap()).unwrap();
        assert_eq!(back, named_zero);
        assert_eq!(back.name(), "nothing");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&sample()).unwrap().to_vec();
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(TraceError::Format { .. })));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&sample()).unwrap().to_vec();
        bytes[4] = 99;
        assert!(matches!(
            from_bytes(&bytes),
            Err(TraceError::Version { found: 99, .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&sample()).unwrap();
        for cut in [3, 7, 11, bytes.len() - 1] {
            assert!(
                matches!(from_bytes(&bytes[..cut]), Err(TraceError::Format { .. })),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&sample()).unwrap().to_vec();
        bytes.push(0);
        assert!(matches!(from_bytes(&bytes), Err(TraceError::Format { .. })));
    }

    #[test]
    fn read_write_via_traits() {
        let prog = sample();
        let mut sink = Vec::new();
        write_program(&prog, &mut sink).unwrap();
        let back = read_program(&mut sink.as_slice()).unwrap();
        assert_eq!(back, prog);
    }
}
