//! Property-based tests for the trace data model and its serialization.

use placesim_trace::{compress, io, stream, Address, MemRef, ProgramTrace, RefKind, ThreadTrace};
use proptest::prelude::*;

fn arb_ref() -> impl Strategy<Value = MemRef> {
    (0u64..(1u64 << 40), 0u8..4).prop_map(|(addr, kind)| {
        let kind = match kind {
            0 => RefKind::Instr,
            1 => RefKind::Read,
            2 => RefKind::Write,
            _ => RefKind::Barrier,
        };
        MemRef::new(kind, Address::new(addr))
    })
}

fn arb_thread() -> impl Strategy<Value = ThreadTrace> {
    proptest::collection::vec(arb_ref(), 0..200).prop_map(|refs| refs.into_iter().collect())
}

fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    (
        "[a-z0-9-]{0,16}",
        proptest::collection::vec(arb_thread(), 0..8),
    )
        .prop_map(|(name, threads)| ProgramTrace::new(name, threads))
}

proptest! {
    #[test]
    fn pack_unpack_roundtrip(r in arb_ref()) {
        prop_assert_eq!(MemRef::unpack(r.pack()), Some(r));
    }

    #[test]
    fn thread_counts_are_consistent(t in arb_thread()) {
        prop_assert_eq!(
            t.instr_len() + t.read_len() + t.write_len() + t.barrier_len(),
            t.len() as u64
        );
        prop_assert_eq!(t.data_len(), t.read_len() + t.write_len());
        // Recount via iteration.
        let instrs = t.iter().filter(|r| r.kind == RefKind::Instr).count() as u64;
        prop_assert_eq!(instrs, t.instr_len());
    }

    #[test]
    fn io_roundtrip(prog in arb_program()) {
        let bytes = io::to_bytes(&prog).unwrap();
        let back = io::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, prog);
    }

    #[test]
    fn compressed_roundtrip(prog in arb_program()) {
        let bytes = compress::to_bytes(&prog).unwrap();
        prop_assert_eq!(compress::from_bytes(&bytes).unwrap(), prog.clone());
        // read_any dispatches on version for both formats.
        prop_assert_eq!(compress::read_any(&bytes).unwrap(), prog.clone());
        let v1 = io::to_bytes(&prog).unwrap();
        prop_assert_eq!(compress::read_any(&v1).unwrap(), prog);
    }

    /// Differential: the streaming v3 format round-trips every program
    /// exactly, at any chunk size (forcing single- and many-chunk
    /// threads alike), and the writer's summary matches the totals.
    #[test]
    fn streaming_v3_roundtrip(prog in arb_program(), chunk in 16usize..512) {
        let mut buf = Vec::new();
        let mut w = stream::StreamWriter::with_chunk_bytes(
            &mut buf,
            prog.name(),
            prog.thread_count(),
            chunk,
        )
        .unwrap();
        for (tid, t) in prog.iter() {
            w.append_thread(tid, t.iter()).unwrap();
        }
        let summary = w.finish().unwrap();
        prop_assert_eq!(summary.total_refs, prog.total_refs());
        prop_assert_eq!(summary.bytes_written as usize, buf.len());
        prop_assert_eq!(stream::from_bytes(&buf).unwrap(), prog.clone());
        // read_any dispatches v3 like the other versions.
        prop_assert_eq!(compress::read_any(&buf).unwrap(), prog.clone());

        // The zero-copy per-thread readers see exactly each thread's
        // reference stream, independent of the other threads.
        let file = stream::TraceFile::parse(&buf).unwrap();
        for (tid, t) in prog.iter() {
            let decoded: Vec<MemRef> = file
                .chunk_reader(tid)
                .collect::<Result<_, _>>()
                .unwrap();
            let expect: Vec<MemRef> = t.iter().collect();
            prop_assert_eq!(decoded, expect, "thread {}", tid);
        }
    }

    #[test]
    fn compressed_truncations_never_panic(prog in arb_program(), cut in 0usize..64) {
        let bytes = compress::to_bytes(&prog).unwrap();
        if cut < bytes.len() {
            prop_assert!(compress::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn truncated_streams_never_panic(prog in arb_program(), cut in 0usize..64) {
        let bytes = io::to_bytes(&prog).unwrap();
        if cut < bytes.len() {
            // Any truncation must produce an error, never a panic or bogus value.
            prop_assert!(io::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
