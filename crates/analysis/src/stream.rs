//! Out-of-core sharded address scanning over streaming (v3) trace
//! files: the engine behind [`crate::AddressProfile::build_parallel_streamed`]
//! and [`crate::SharingAnalysis::measure_streamed`].
//!
//! The in-memory pipeline in [`crate::shard`] folds each thread's data
//! references into a sorted distinct-address run list, then k-way merges
//! those lists per address shard. This module keeps the same three
//! stages but bounds stage 1's memory: each thread's fold reads chunk
//! iterators from a [`FileReader`] instead of a `&ThreadTrace`, and
//! whenever the thread's distinct-address map exceeds the
//! [`SpillBudget`], the sorted entries are flushed as one *segment* of a
//! per-thread spill file and the map restarts empty. Stage 3's merge
//! then treats every segment (file-backed, buffered, sequentially read)
//! like one more sorted run list; entries for the same `(thread,
//! address)` split across segments are summed back together before the
//! visitor sees them.
//!
//! Every accumulated quantity downstream is a commutative integer sum,
//! and the merge delivers exactly the same per-address, per-thread
//! totals in the same `(addr, thread)` order as the in-memory pipeline
//! — so results are bit-identical to `build_parallel` / `measure`
//! regardless of the budget (the differential proptests force tiny,
//! many-segment budgets to pin this down).
//!
//! Peak memory per worker is `O(budget)` for stage 1 and `O(segments ×
//! read-buffer)` for stage 3, independent of trace length.

use crate::profile::PerThreadCount;
use placesim_trace::hash::FastMap;
use placesim_trace::par::{max_workers, try_parallel_map};
use placesim_trace::stream::FileReader;
use placesim_trace::{AddrCounts, ThreadId, TraceError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-thread addresses sampled per sorted segment for splitter
/// selection (mirrors `shard::SAMPLES_PER_THREAD`).
const SAMPLES_PER_SEGMENT: usize = 32;

/// Entries per file-cursor read buffer. 512 × 16 B = 8 KiB per cursor:
/// large enough for sequential read throughput, small enough that a
/// shard merge over many segments stays within a few MiB.
const CURSOR_BUF_ENTRIES: usize = 512;

/// Bytes of one spill-file entry: `addr u64 · reads u32 · writes u32`,
/// little-endian.
const ENTRY_BYTES: u64 = 16;

/// Process-unique suffix for spill file names.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Memory budget for the out-of-core scan.
///
/// `max_resident_addrs` caps the number of distinct addresses one
/// thread's stage-1 fold keeps resident before spilling a sorted
/// segment to disk. Spill files live in `dir` (the system temp
/// directory by default) and are deleted when the scan finishes.
#[derive(Debug, Clone)]
pub struct SpillBudget {
    max_resident_addrs: usize,
    dir: PathBuf,
}

impl SpillBudget {
    /// Default distinct-address cap per thread: 1 Mi entries, ≈ 40 MiB
    /// of fold state per stage-1 worker.
    pub const DEFAULT_RESIDENT_ADDRS: usize = 1 << 20;

    /// Environment variable overriding the distinct-address cap.
    pub const ENV_VAR: &'static str = "PLACESIM_SPILL_ADDRS";

    /// A budget capping each thread's resident distinct addresses,
    /// spilling to the system temp directory.
    #[must_use]
    pub fn new(max_resident_addrs: usize) -> Self {
        SpillBudget {
            // A zero budget would spill before holding anything.
            max_resident_addrs: max_resident_addrs.max(1),
            dir: std::env::temp_dir(),
        }
    }

    /// Redirects spill files to `dir` (which must exist).
    #[must_use]
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = dir.into();
        self
    }

    /// Reads the cap from [`Self::ENV_VAR`], falling back to
    /// [`Self::DEFAULT_RESIDENT_ADDRS`] when unset or unparsable.
    #[must_use]
    pub fn from_env() -> Self {
        let cap = std::env::var(Self::ENV_VAR)
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(Self::DEFAULT_RESIDENT_ADDRS);
        Self::new(cap)
    }

    /// The distinct-address cap.
    #[must_use]
    pub fn max_resident_addrs(&self) -> usize {
        self.max_resident_addrs
    }
}

impl Default for SpillBudget {
    fn default() -> Self {
        Self::new(Self::DEFAULT_RESIDENT_ADDRS)
    }
}

/// A spill file opened for shared positioned reads.
#[derive(Debug)]
struct SharedFile(File);

impl SharedFile {
    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.0, buf, offset)
    }

    #[cfg(windows)]
    fn read_exact_at(&self, mut buf: &mut [u8], mut offset: u64) -> std::io::Result<()> {
        use std::os::windows::fs::FileExt;
        while !buf.is_empty() {
            let n = self.0.seek_read(buf, offset)?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            buf = &mut buf[n..];
            offset += n as u64;
        }
        Ok(())
    }
}

/// One sorted spilled segment: a contiguous entry range of the thread's
/// spill file plus evenly spaced address samples taken at spill time.
#[derive(Debug)]
struct Segment {
    /// First entry index in the spill file.
    start: u64,
    /// Entry count.
    len: u64,
    /// Up to [`SAMPLES_PER_SEGMENT`] evenly spaced addresses.
    samples: Vec<u64>,
}

/// Stage-1 output for one thread.
#[derive(Debug)]
enum ThreadRuns {
    /// The fold never exceeded the budget: plain sorted runs in memory.
    Mem(Vec<AddrCounts>),
    /// Sorted segments in a spill file (including the final residue).
    Spilled(SpilledRuns),
}

#[derive(Debug)]
struct SpilledRuns {
    file: SharedFile,
    path: PathBuf,
    segments: Vec<Segment>,
}

impl Drop for SpilledRuns {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Sorts the folded entries, appends them to the spill writer and
/// records the segment.
fn spill_segment(
    runs: &mut Vec<AddrCounts>,
    w: &mut BufWriter<File>,
    segments: &mut Vec<Segment>,
    next_entry: &mut u64,
) -> Result<(), TraceError> {
    runs.sort_unstable_by_key(|r| r.addr);
    let take = runs.len().min(SAMPLES_PER_SEGMENT);
    let mut samples = Vec::with_capacity(take);
    for k in 0..take {
        samples.push(runs[k * runs.len() / take].addr);
    }
    for r in runs.iter() {
        let mut entry = [0u8; ENTRY_BYTES as usize];
        entry[..8].copy_from_slice(&r.addr.to_le_bytes());
        entry[8..12].copy_from_slice(&r.reads.to_le_bytes());
        entry[12..].copy_from_slice(&r.writes.to_le_bytes());
        w.write_all(&entry)?;
    }
    segments.push(Segment {
        start: *next_entry,
        len: runs.len() as u64,
        samples,
    });
    *next_entry += runs.len() as u64;
    runs.clear();
    Ok(())
}

/// Stage 1 for one thread: fold chunk iterators into distinct-address
/// runs, spilling a sorted segment whenever the budget is exceeded.
fn extract_runs_streamed(
    reader: &FileReader,
    tid: ThreadId,
    budget: &SpillBudget,
) -> Result<ThreadRuns, TraceError> {
    let mut chunks = reader.chunks(tid)?;
    let mut runs: Vec<AddrCounts> = Vec::new();
    let mut index: FastMap<u64, u32> = FastMap::default();
    let mut last: Option<(u64, usize)> = None;
    let mut spill: Option<(BufWriter<File>, PathBuf, Vec<Segment>, u64)> = None;

    while let Some(refs) = chunks.next_chunk()? {
        for r in refs {
            if !r.kind.is_data() {
                continue;
            }
            let addr = r.addr.raw();
            let slot = match last {
                Some((a, slot)) if a == addr => slot,
                _ => {
                    let slot = *index.entry(addr).or_insert_with(|| {
                        runs.push(AddrCounts::new(addr));
                        (runs.len() - 1) as u32
                    }) as usize;
                    last = Some((addr, slot));
                    slot
                }
            };
            runs[slot].bump(r.kind.is_write());
        }
        // Budget check at chunk granularity: the overshoot is bounded by
        // one chunk's worth of distinct addresses.
        if runs.len() >= budget.max_resident_addrs {
            let (w, _, segments, next_entry) = match &mut spill {
                Some(s) => (&mut s.0, &s.1, &mut s.2, &mut s.3),
                None => {
                    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
                    let path = budget.dir.join(format!(
                        "placesim-spill-{}-{seq}-t{}.run",
                        std::process::id(),
                        tid.index()
                    ));
                    let file = File::create(&path)?;
                    spill = Some((BufWriter::new(file), path, Vec::new(), 0));
                    let s = spill.as_mut().expect("just set");
                    (&mut s.0, &s.1, &mut s.2, &mut s.3)
                }
            };
            spill_segment(&mut runs, w, segments, next_entry)?;
            index.clear();
            last = None;
        }
    }

    match spill {
        None => {
            runs.sort_unstable_by_key(|r| r.addr);
            Ok(ThreadRuns::Mem(runs))
        }
        Some((mut w, path, mut segments, mut next_entry)) => {
            // Spill the residue too, so the merge sees only segments.
            if !runs.is_empty() {
                spill_segment(&mut runs, &mut w, &mut segments, &mut next_entry)?;
            }
            w.flush()?;
            drop(w);
            let file = SharedFile(File::open(&path)?);
            Ok(ThreadRuns::Spilled(SpilledRuns {
                file,
                path,
                segments,
            }))
        }
    }
}

/// Splitter selection over the stage-1 outputs, mirroring
/// `shard::splitters`: evenly spaced samples, then quantile cuts.
fn splitters_streamed(sources: &[ThreadRuns], shards: usize) -> Vec<u64> {
    if shards <= 1 {
        return Vec::new();
    }
    let mut samples: Vec<u64> = Vec::new();
    for src in sources {
        match src {
            ThreadRuns::Mem(runs) => {
                let take = runs.len().min(SAMPLES_PER_SEGMENT);
                for k in 0..take {
                    samples.push(runs[k * runs.len() / take].addr);
                }
            }
            ThreadRuns::Spilled(s) => {
                for seg in &s.segments {
                    samples.extend_from_slice(&seg.samples);
                }
            }
        }
    }
    samples.sort_unstable();
    samples.dedup();
    if samples.is_empty() {
        return Vec::new();
    }
    let mut cuts: Vec<u64> = (1..shards)
        .map(|s| samples[(s * samples.len() / shards).min(samples.len() - 1)])
        .collect();
    cuts.dedup();
    cuts
}

/// A sorted entry stream for the merge: either a slice of in-memory
/// runs or a buffered window over one spill-file segment.
enum Cursor<'a> {
    Mem {
        entries: &'a [AddrCounts],
        pos: usize,
        end: usize,
    },
    File {
        file: &'a SharedFile,
        next: u64,
        end: u64,
        buf: Vec<AddrCounts>,
        buf_pos: usize,
    },
}

impl Cursor<'_> {
    /// The entry the cursor currently points at (must not be exhausted).
    fn current(&self) -> AddrCounts {
        match self {
            Cursor::Mem { entries, pos, .. } => entries[*pos],
            Cursor::File { buf, buf_pos, .. } => buf[*buf_pos],
        }
    }

    /// Steps past the current entry; returns the next entry's address,
    /// or `None` when exhausted.
    fn advance(&mut self) -> Result<Option<u64>, TraceError> {
        match self {
            Cursor::Mem { entries, pos, end } => {
                *pos += 1;
                Ok((*pos < *end).then(|| entries[*pos].addr))
            }
            Cursor::File {
                file,
                next,
                end,
                buf,
                buf_pos,
            } => {
                *buf_pos += 1;
                *next += 1;
                if *buf_pos >= buf.len() {
                    if *next >= *end {
                        return Ok(None);
                    }
                    refill(file, *next, *end, buf)?;
                    *buf_pos = 0;
                }
                Ok(Some(buf[*buf_pos].addr))
            }
        }
    }
}

/// Reads the next buffer-full of entries starting at entry `next`.
fn refill(
    file: &SharedFile,
    next: u64,
    end: u64,
    buf: &mut Vec<AddrCounts>,
) -> Result<(), TraceError> {
    let want = ((end - next) as usize).min(CURSOR_BUF_ENTRIES);
    let mut raw = vec![0u8; want * ENTRY_BYTES as usize];
    file.read_exact_at(&mut raw, next * ENTRY_BYTES)?;
    buf.clear();
    for e in raw.chunks_exact(ENTRY_BYTES as usize) {
        buf.push(AddrCounts {
            addr: u64::from_le_bytes(e[..8].try_into().expect("8 bytes")),
            reads: u32::from_le_bytes(e[8..12].try_into().expect("4 bytes")),
            writes: u32::from_le_bytes(e[12..].try_into().expect("4 bytes")),
        });
    }
    Ok(())
}

/// First entry index in `[seg.start, seg.start + seg.len)` whose address
/// is `>= bound` (binary search over the fixed-size file records).
fn segment_lower_bound(
    file: &SharedFile,
    seg: &Segment,
    bound: Option<u64>,
) -> Result<u64, TraceError> {
    let Some(bound) = bound else {
        return Ok(seg.start);
    };
    let (mut lo, mut hi) = (0u64, seg.len);
    let mut word = [0u8; 8];
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        file.read_exact_at(&mut word, (seg.start + mid) * ENTRY_BYTES)?;
        if u64::from_le_bytes(word) < bound {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(seg.start + lo)
}

/// Merges every thread's sorted streams within `[lo, hi)` in ascending
/// address order, summing same-`(addr, thread)` entries split across
/// segments, and invokes `visit` once per address with per-thread
/// counts in thread-id order — exactly like `shard::merge_shard`.
fn merge_shard_streamed<A>(
    sources: &[ThreadRuns],
    lo: Option<u64>,
    hi: Option<u64>,
    acc: &mut A,
    visit: &impl Fn(&mut A, u64, &[PerThreadCount]),
) -> Result<(), TraceError> {
    // One cursor per in-memory run list or file segment; heap keys are
    // (addr, thread, cursor index), so ties on addr pop in thread order
    // and same-thread duplicates pop adjacently.
    let mut cursors: Vec<(usize, Cursor<'_>)> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    for (t, src) in sources.iter().enumerate() {
        match src {
            ThreadRuns::Mem(runs) => {
                let start = lo.map_or(0, |l| runs.partition_point(|r| r.addr < l));
                let end = hi.map_or(runs.len(), |h| runs.partition_point(|r| r.addr < h));
                if start < end {
                    let ci = cursors.len();
                    heap.push(Reverse((runs[start].addr, t, ci)));
                    cursors.push((
                        t,
                        Cursor::Mem {
                            entries: runs,
                            pos: start,
                            end,
                        },
                    ));
                }
            }
            ThreadRuns::Spilled(s) => {
                for seg in &s.segments {
                    let start = segment_lower_bound(&s.file, seg, lo)?;
                    let end = segment_lower_bound(&s.file, seg, hi)?
                        .max(start)
                        .min(seg.start + seg.len);
                    let end = if hi.is_none() {
                        seg.start + seg.len
                    } else {
                        end
                    };
                    if start < end {
                        let mut buf = Vec::with_capacity(CURSOR_BUF_ENTRIES);
                        refill(&s.file, start, end, &mut buf)?;
                        let ci = cursors.len();
                        heap.push(Reverse((buf[0].addr, t, ci)));
                        cursors.push((
                            t,
                            Cursor::File {
                                file: &s.file,
                                next: start,
                                end,
                                buf,
                                buf_pos: 0,
                            },
                        ));
                    }
                }
            }
        }
    }

    let mut counts: Vec<PerThreadCount> = Vec::new();
    while let Some(&Reverse((addr, _, _))) = heap.peek() {
        counts.clear();
        while let Some(&Reverse((a, t, ci))) = heap.peek() {
            if a != addr {
                break;
            }
            heap.pop();
            let entry = cursors[ci].1.current();
            // Entries for one (addr, thread) split across segments pop
            // adjacently; sum them back into a single count.
            match counts.last_mut() {
                Some(last) if last.thread.index() == t => {
                    last.reads += entry.reads;
                    last.writes += entry.writes;
                }
                _ => counts.push(PerThreadCount {
                    thread: ThreadId::from_index(t),
                    reads: entry.reads,
                    writes: entry.writes,
                }),
            }
            if let Some(next_addr) = cursors[ci].1.advance()? {
                heap.push(Reverse((next_addr, t, ci)));
            }
        }
        visit(acc, addr, &counts);
    }
    Ok(())
}

/// Out-of-core analogue of `shard::sharded_scan`: scans every distinct
/// data address of the v3 trace behind `reader` exactly once, in
/// parallel over disjoint address shards, with stage-1 memory bounded
/// by `budget`.
pub(crate) fn sharded_scan_streamed<A, I, V>(
    reader: &FileReader,
    budget: &SpillBudget,
    init: I,
    visit: V,
) -> Result<Vec<A>, TraceError>
where
    A: Send + Sync,
    I: Fn() -> A + Sync,
    V: Fn(&mut A, u64, &[PerThreadCount]) + Sync,
{
    let tids: Vec<ThreadId> = (0..reader.thread_count())
        .map(ThreadId::from_index)
        .collect();
    let sources = try_parallel_map(&tids, |&tid| extract_runs_streamed(reader, tid, budget))?;

    let cuts = splitters_streamed(&sources, max_workers().saturating_mul(2).max(1));
    let mut bounds: Vec<(Option<u64>, Option<u64>)> = Vec::with_capacity(cuts.len() + 1);
    let mut prev: Option<u64> = None;
    for &c in &cuts {
        bounds.push((prev, Some(c)));
        prev = Some(c);
    }
    bounds.push((prev, None));

    try_parallel_map(&bounds, |&(lo, hi)| {
        let mut acc = init();
        merge_shard_streamed(&sources, lo, hi, &mut acc, &visit)?;
        Ok(acc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddressProfile, SharingAnalysis};
    use placesim_trace::stream::StreamWriter;
    use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};

    fn write_v3(prog: &ProgramTrace, chunk_bytes: usize) -> PathBuf {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "placesim-stream-analysis-{}-{seq}.trace",
            std::process::id()
        ));
        let file = File::create(&path).unwrap();
        let mut w =
            StreamWriter::with_chunk_bytes(file, prog.name(), prog.thread_count(), chunk_bytes)
                .unwrap();
        for (tid, thread) in prog.iter() {
            w.append_thread(tid, thread.iter()).unwrap();
        }
        w.finish().unwrap();
        path
    }

    fn prog() -> ProgramTrace {
        // Enough distinct addresses per thread to force several spill
        // segments under a tiny budget, with heavy cross-thread sharing.
        let mut threads = Vec::new();
        for t in 0..4u64 {
            let mut tt = ThreadTrace::new();
            for i in 0..400u64 {
                tt.push(MemRef::instr(Address::new(4 * i)));
                tt.push(MemRef::read(Address::new(0x1_0000 + 8 * (i % 97))));
                if i % 3 == 0 {
                    tt.push(MemRef::write(Address::new(0x1_0000 + 8 * ((i + t) % 97))));
                }
                tt.push(MemRef::read(Address::new(
                    0x10_0000 + (t << 12) + 8 * (i % 51),
                )));
            }
            threads.push(tt);
        }
        ProgramTrace::new(
            "spilly",
            vec![
                threads.remove(0),
                threads.remove(0),
                threads.remove(0),
                threads.remove(0),
            ],
        )
    }

    #[test]
    fn streamed_profile_matches_in_memory_without_spill() {
        let p = prog();
        let path = write_v3(&p, 1 << 20);
        let reader = FileReader::open(&path).unwrap();
        let streamed =
            AddressProfile::build_parallel_streamed(&reader, &SpillBudget::default()).unwrap();
        assert_eq!(streamed, AddressProfile::build_parallel(&p));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streamed_profile_matches_with_forced_spills() {
        let p = prog();
        let path = write_v3(&p, 256); // many chunks
        let reader = FileReader::open(&path).unwrap();
        for budget in [1, 7, 50] {
            let streamed =
                AddressProfile::build_parallel_streamed(&reader, &SpillBudget::new(budget))
                    .unwrap();
            assert_eq!(
                streamed,
                AddressProfile::build_parallel(&p),
                "budget {budget}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streamed_measure_matches_in_memory() {
        let p = prog();
        let path = write_v3(&p, 512);
        let reader = FileReader::open(&path).unwrap();
        for budget in [3, 1000] {
            let streamed =
                SharingAnalysis::measure_streamed(&reader, &SpillBudget::new(budget)).unwrap();
            assert_eq!(streamed, SharingAnalysis::measure(&p), "budget {budget}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let p = prog();
        let trace = write_v3(&p, 256);
        let dir = std::env::temp_dir().join(format!(
            "placesim-spill-dir-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let reader = FileReader::open(&trace).unwrap();
        let budget = SpillBudget::new(5).with_dir(&dir);
        SharingAnalysis::measure_streamed(&reader, &budget).unwrap();
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "spill files must be deleted after the scan"
        );
        std::fs::remove_dir(&dir).unwrap();
        std::fs::remove_file(&trace).unwrap();
    }

    #[test]
    fn empty_threads_and_programs() {
        let p = ProgramTrace::new("holes", vec![ThreadTrace::new(), ThreadTrace::new()]);
        let path = write_v3(&p, 64);
        let reader = FileReader::open(&path).unwrap();
        let streamed = SharingAnalysis::measure_streamed(&reader, &SpillBudget::new(2)).unwrap();
        assert_eq!(streamed, SharingAnalysis::measure(&p));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn budget_env_parsing() {
        // from_env falls back to the default on junk; direct construction
        // clamps zero to one.
        assert_eq!(SpillBudget::new(0).max_resident_addrs(), 1);
        assert!(SpillBudget::default().max_resident_addrs() >= 1);
    }
}
