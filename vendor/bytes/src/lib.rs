//! Offline stand-in for `bytes` 1.x.
//!
//! `placesim-trace`'s codecs use only a small, copy-friendly slice of the
//! real crate's API: `BytesMut` as a growable little-endian scratch
//! buffer, `Bytes` as an owned immutable result, and `Buf` on `&[u8]`
//! for cursor-style decoding. This implements exactly that over
//! `Vec<u8>` — no refcounting, no split/freeze machinery — which is
//! sufficient because the codecs never share or split buffers.

use std::ops::{Deref, DerefMut};

/// Immutable owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Growable byte buffer with little-endian put helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Clears the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Cursor-style reading from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Appending writes to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xy");
        buf.put_u8(7);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 15);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut two = [0u8; 2];
        cursor.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }

    #[test]
    fn clear_and_reserve_keep_buffer_usable() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.clear();
        assert!(buf.is_empty());
        buf.reserve(64);
        buf.put_u8(9);
        assert_eq!(buf.len(), 1);
        assert_eq!(Bytes::from(vec![9u8]).as_ref(), &buf[..]);
    }
}
