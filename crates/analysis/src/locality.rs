//! Reuse-distance (LRU stack) and working-set analysis.
//!
//! The paper scales data-set size and cache size together (§3.2) to keep
//! a "realistic ratio between the two"; this module provides the tooling
//! to check that ratio on any trace: per-thread working sets and an LRU
//! reuse-distance histogram, from which the hit rate of any
//! fully-associative LRU cache can be estimated (the classic stack
//! algorithm of Mattson et al.).
//!
//! Distances are tracked exactly up to [`STACK_CAP`] and lumped into a
//! "far" bucket beyond it, bounding the cost to `O(refs · STACK_CAP)` in
//! the worst case (in practice reuse is near the stack top).

use placesim_trace::{ProgramTrace, ThreadTrace};
use serde::{Deserialize, Serialize};

/// Maximum exactly-tracked stack distance.
pub const STACK_CAP: usize = 4096;

/// Reuse-distance histogram of one reference stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalityProfile {
    /// References analyzed (data + instruction, as line accesses).
    pub refs: u64,
    /// First touches (infinite reuse distance).
    pub cold: u64,
    /// `histogram[k]` counts reuses at stack distance in
    /// `[2^k, 2^(k+1))`; distance 0 (immediate re-reference) is bucket 0.
    pub histogram: Vec<u64>,
    /// Reuses beyond [`STACK_CAP`].
    pub far: u64,
    /// Distinct lines touched (the working set, in lines).
    pub working_set: u64,
}

impl LocalityProfile {
    /// Measures one thread's line-granular reuse behavior.
    pub fn measure_thread(trace: &ThreadTrace, line_size: u64) -> Self {
        Self::measure(trace.iter().map(|r| r.addr.line(line_size).raw()))
    }

    /// Measures an arbitrary stream of line addresses.
    pub fn measure<I: IntoIterator<Item = u64>>(lines: I) -> Self {
        let mut stack: Vec<u64> = Vec::new(); // MRU first, capped
        let mut overflow: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut profile = LocalityProfile {
            refs: 0,
            cold: 0,
            histogram: vec![0; (usize::BITS - (STACK_CAP - 1).leading_zeros()) as usize + 1],
            far: 0,
            working_set: 0,
        };
        for line in lines {
            profile.refs += 1;
            if let Some(pos) = stack.iter().position(|&l| l == line) {
                // Bucket 0 holds distance 0; bucket b ≥ 1 holds
                // [2^(b−1), 2^b), i.e. b = ⌊log₂ pos⌋ + 1.
                let b = if pos == 0 {
                    0
                } else {
                    (usize::BITS - pos.leading_zeros()) as usize
                };
                let last = profile.histogram.len() - 1;
                profile.histogram[b.min(last)] += 1;
                stack.remove(pos);
                stack.insert(0, line);
            } else if overflow.contains(&line) {
                // Reuse beyond the tracked stack window.
                profile.far += 1;
                stack.insert(0, line);
                if stack.len() > STACK_CAP {
                    let spilled = stack.pop().expect("stack non-empty");
                    overflow.insert(spilled);
                }
            } else {
                profile.cold += 1;
                profile.working_set += 1;
                stack.insert(0, line);
                if stack.len() > STACK_CAP {
                    let spilled = stack.pop().expect("stack non-empty");
                    overflow.insert(spilled);
                }
            }
        }
        profile
    }

    /// Estimated hit rate of a fully-associative LRU cache with
    /// `capacity_lines` lines: every reuse at stack distance <
    /// capacity hits (Mattson's inclusion property).
    pub fn lru_hit_rate(&self, capacity_lines: u64) -> f64 {
        if self.refs == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (b, &count) in self.histogram.iter().enumerate() {
            // Bucket b covers distances [2^(b-1), 2^b) for b ≥ 1, {0} for 0.
            let max_distance = if b == 0 { 0 } else { (1u64 << b) - 1 };
            if max_distance < capacity_lines {
                hits += count;
            }
        }
        hits as f64 / self.refs as f64
    }

    /// Fraction of references that are first touches.
    pub fn cold_fraction(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.cold as f64 / self.refs as f64
        }
    }
}

/// Working-set summary of a whole program, per thread and combined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkingSetSummary {
    /// Per-thread distinct lines.
    pub per_thread: Vec<u64>,
    /// Distinct lines over all threads combined.
    pub combined: u64,
    /// The combined working set in bytes.
    pub combined_bytes: u64,
}

impl WorkingSetSummary {
    /// Measures line-granular working sets for every thread of `prog`.
    pub fn measure(prog: &ProgramTrace, line_size: u64) -> Self {
        let mut combined: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let per_thread = prog
            .threads()
            .iter()
            .map(|t| {
                let mut own: std::collections::HashSet<u64> = std::collections::HashSet::new();
                for r in t.iter() {
                    let line = r.addr.line(line_size).raw();
                    own.insert(line);
                    combined.insert(line);
                }
                own.len() as u64
            })
            .collect();
        WorkingSetSummary {
            per_thread,
            combined: combined.len() as u64,
            combined_bytes: combined.len() as u64 * line_size,
        }
    }

    /// Ratio of the combined working set to a cache of `cache_bytes` —
    /// the paper's "realistic ratio between the two".
    pub fn cache_pressure(&self, cache_bytes: u64) -> f64 {
        self.combined_bytes as f64 / cache_bytes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef};

    #[test]
    fn immediate_reuse_is_bucket_zero() {
        let p = LocalityProfile::measure([1u64, 1, 1]);
        assert_eq!(p.refs, 3);
        assert_eq!(p.cold, 1);
        assert_eq!(p.histogram[0], 2);
        assert_eq!(p.working_set, 1);
    }

    #[test]
    fn distances_bucketized() {
        // Stream 1 2 3 1: the reuse of 1 is at stack distance 2 → bucket 2
        // ([2,4)).
        let p = LocalityProfile::measure([1u64, 2, 3, 1]);
        assert_eq!(p.cold, 3);
        assert_eq!(p.histogram[2], 1);
    }

    #[test]
    fn lru_hit_rate_monotone_in_capacity() {
        let stream: Vec<u64> = (0..200u64).flat_map(|i| [i % 40, i % 7]).collect();
        let p = LocalityProfile::measure(stream);
        let mut last = 0.0;
        for cap in [1u64, 2, 8, 16, 64, 256] {
            let h = p.lru_hit_rate(cap);
            assert!(h >= last, "hit rate must grow with capacity");
            last = h;
        }
        assert!(last <= 1.0);
    }

    #[test]
    fn cyclic_sweep_defeats_small_lru() {
        // Cyclic sweep over 64 lines: distance is always 63 — hits only
        // when capacity > 63.
        let stream: Vec<u64> = (0..640u64).map(|i| i % 64).collect();
        let p = LocalityProfile::measure(stream);
        assert_eq!(p.cold, 64);
        assert_eq!(p.lru_hit_rate(32), 0.0);
        assert!(p.lru_hit_rate(64) > 0.85);
    }

    #[test]
    fn far_reuse_tracked_beyond_cap() {
        // Touch CAP+10 distinct lines, then re-touch the first.
        let n = (STACK_CAP + 10) as u64;
        let mut stream: Vec<u64> = (0..n).collect();
        stream.push(0);
        let p = LocalityProfile::measure(stream);
        assert_eq!(p.cold, n);
        assert_eq!(p.far, 1);
        assert_eq!(p.working_set, n);
    }

    #[test]
    fn measure_thread_uses_lines() {
        let t: ThreadTrace = [
            MemRef::read(Address::new(0x100)),
            MemRef::read(Address::new(0x104)), // same 32-byte line
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        let p = LocalityProfile::measure_thread(&t, 32);
        assert_eq!(p.working_set, 2);
        assert_eq!(p.histogram[0], 1);
    }

    #[test]
    fn working_set_summary() {
        let t0: ThreadTrace = [
            MemRef::read(Address::new(0x000)),
            MemRef::read(Address::new(0x100)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [
            MemRef::read(Address::new(0x100)),
            MemRef::read(Address::new(0x200)),
        ]
        .into_iter()
        .collect();
        let prog = ProgramTrace::new("ws", vec![t0, t1]);
        let ws = WorkingSetSummary::measure(&prog, 32);
        assert_eq!(ws.per_thread, vec![2, 2]);
        assert_eq!(ws.combined, 3);
        assert_eq!(ws.combined_bytes, 96);
        assert!((ws.cache_pressure(96) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream() {
        let p = LocalityProfile::measure(std::iter::empty());
        assert_eq!(p.refs, 0);
        assert_eq!(p.lru_hit_rate(1024), 0.0);
        assert_eq!(p.cold_fraction(), 0.0);
    }
}
