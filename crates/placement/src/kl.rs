//! Kernighan–Lin refinement: a stronger sharing optimizer than the
//! paper's greedy cluster combining.
//!
//! The paper's §2 algorithms combine clusters greedily. A natural
//! question (and a reviewer's favorite) is whether a *better* optimizer
//! of the same objective would change the conclusion. This module
//! answers it: starting from any thread-balanced placement, pairwise
//! Kernighan–Lin swap refinement maximizes in-cluster shared references
//! far more thoroughly — and, as the ablation shows, still does not beat
//! LOAD-BAL, because the objective itself is the wrong one.
//!
//! The implementation is the classic KL pass specialized to balanced
//! `p`-way partitions: repeatedly sweep all cluster pairs; for each
//! pair, greedily swap the thread pair with the best gain (allowing
//! negative-gain swaps within a pass, keeping the best prefix — the
//! hallmark of KL that lets it escape local minima), until a full sweep
//! yields no improvement.

use crate::error::PlacementError;
use crate::map::PlacementMap;
use placesim_analysis::SymMatrix;

/// Maximum full sweeps over all cluster pairs.
const MAX_SWEEPS: usize = 16;

/// Refines `initial` by Kernighan–Lin swaps to maximize the total
/// in-cluster weight of `graph` (e.g. the pairwise shared-references
/// matrix). Cluster sizes never change, so thread balance is preserved.
///
/// Returns the refined map and the final in-cluster weight.
///
/// # Errors
///
/// Returns [`PlacementError::DimensionMismatch`] if the graph dimension
/// differs from the map's thread count.
pub fn refine(
    initial: &PlacementMap,
    graph: &SymMatrix<u64>,
) -> Result<(PlacementMap, u64), PlacementError> {
    let t = initial.thread_count();
    if graph.dim() != t {
        return Err(PlacementError::DimensionMismatch {
            what: "sharing graph",
            expected: t,
            found: graph.dim(),
        });
    }

    let mut clusters: Vec<Vec<usize>> = initial
        .iter()
        .map(|(_, c)| c.iter().map(|tid| tid.index()).collect())
        .collect();

    for _sweep in 0..MAX_SWEEPS {
        let mut improved = false;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                if kl_pass(&mut clusters, a, b, graph) {
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let map = PlacementMap::from_clusters(clusters)?;
    let score = in_cluster_weight(&map, graph);
    Ok((map, score))
}

/// Total in-cluster weight of a placement under `graph`.
pub fn in_cluster_weight(map: &PlacementMap, graph: &SymMatrix<u64>) -> u64 {
    let mut total = 0;
    for (_, cluster) in map.iter() {
        for (k, &a) in cluster.iter().enumerate() {
            for &b in &cluster[k + 1..] {
                total += graph.get(a.index(), b.index());
            }
        }
    }
    total
}

/// One KL pass between clusters `a` and `b`. Returns `true` if the
/// clusters changed.
fn kl_pass(clusters: &mut [Vec<usize>], a: usize, b: usize, graph: &SymMatrix<u64>) -> bool {
    let ca = clusters[a].clone();
    let cb = clusters[b].clone();
    let n = ca.len().min(cb.len());
    if n == 0 {
        return false;
    }

    // External minus internal connection of a thread w.r.t. the two
    // clusters (the classic D-value), as i64 to allow negatives.
    let d_value = |thread: usize, own: &[usize], other: &[usize]| -> i64 {
        let internal: u64 = own
            .iter()
            .filter(|&&x| x != thread)
            .map(|&x| graph.get(thread, x))
            .sum();
        let external: u64 = other.iter().map(|&x| graph.get(thread, x)).sum();
        external as i64 - internal as i64
    };

    let mut wa = ca.clone();
    let mut wb = cb.clone();
    let mut sequence: Vec<(usize, usize, i64)> = Vec::new(); // (ia, ib, gain)

    let mut locked_a = vec![false; wa.len()];
    let mut locked_b = vec![false; wb.len()];
    for _ in 0..n {
        // Best unlocked swap by gain = D(x) + D(y) − 2·w(x,y).
        let mut best: Option<(usize, usize, i64)> = None;
        for (i, &x) in wa.iter().enumerate() {
            if locked_a[i] {
                continue;
            }
            let dx = d_value(x, &wa, &wb);
            for (j, &y) in wb.iter().enumerate() {
                if locked_b[j] {
                    continue;
                }
                let dy = d_value(y, &wb, &wa);
                let gain = dx + dy - 2 * graph.get(x, y) as i64;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((i, j, gain));
                }
            }
        }
        let Some((i, j, gain)) = best else { break };
        // Tentatively swap and lock.
        wa.swap_remove_hack(i, &mut wb, j);
        locked_a[i] = true;
        locked_b[j] = true;
        sequence.push((i, j, gain));
    }

    // Keep the best prefix of the tentative swap sequence.
    let mut best_prefix = 0;
    let mut best_total = 0i64;
    let mut running = 0i64;
    for (k, &(_, _, g)) in sequence.iter().enumerate() {
        running += g;
        if running > best_total {
            best_total = running;
            best_prefix = k + 1;
        }
    }
    if best_prefix == 0 {
        return false;
    }

    // Apply the kept prefix to the real clusters.
    let mut ra = ca;
    let mut rb = cb;
    for &(i, j, _) in &sequence[..best_prefix] {
        std::mem::swap(&mut ra[i], &mut rb[j]);
    }
    clusters[a] = ra;
    clusters[b] = rb;
    true
}

/// Helper trait: swap elements between two vectors in place.
trait SwapAcross {
    fn swap_remove_hack(&mut self, i: usize, other: &mut Self, j: usize);
}

impl SwapAcross for Vec<usize> {
    fn swap_remove_hack(&mut self, i: usize, other: &mut Vec<usize>, j: usize) {
        std::mem::swap(&mut self[i], &mut other[j]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize, u64)]) -> SymMatrix<u64> {
        let mut g = SymMatrix::new(n, 0);
        for &(i, j, w) in edges {
            g.set(i, j, w);
        }
        g
    }

    #[test]
    fn refine_recovers_planted_partition() {
        // Threads {0,1} and {2,3} are heavy pairs, planted in the wrong
        // clusters initially.
        let g = graph(4, &[(0, 1, 100), (2, 3, 100), (0, 2, 1), (1, 3, 1)]);
        let bad = PlacementMap::from_clusters(vec![vec![0, 2], vec![1, 3]]).unwrap();
        assert_eq!(in_cluster_weight(&bad, &g), 2);

        let (good, score) = refine(&bad, &g).unwrap();
        assert_eq!(score, 200);
        assert_eq!(in_cluster_weight(&good, &g), 200);
        assert!(good.is_thread_balanced());
        // The heavy pairs ended up together.
        let p0 = good.processor_of(placesim_trace::ThreadId::new(0));
        assert_eq!(p0, good.processor_of(placesim_trace::ThreadId::new(1)));
    }

    #[test]
    fn refine_never_decreases_score() {
        // Random-ish graph; refinement must be monotone overall.
        let mut g = SymMatrix::new(8, 0u64);
        for i in 0..8usize {
            for j in (i + 1)..8 {
                g.set(i, j, ((i * 7 + j * 13) % 23) as u64);
            }
        }
        let initial =
            PlacementMap::from_clusters(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]).unwrap();
        let before = in_cluster_weight(&initial, &g);
        let (refined, after) = refine(&initial, &g).unwrap();
        assert!(after >= before, "{after} < {before}");
        assert!(refined.is_thread_balanced());
        assert_eq!(refined.thread_count(), 8);
    }

    #[test]
    fn uneven_clusters_preserved() {
        // 5 threads over 2 clusters: sizes 3 and 2 stay 3 and 2.
        let g = graph(5, &[(0, 4, 50), (1, 2, 50)]);
        let initial = PlacementMap::from_clusters(vec![vec![0, 1, 2], vec![3, 4]]).unwrap();
        let (refined, _) = refine(&initial, &g).unwrap();
        let sizes: Vec<usize> = refined.iter().map(|(_, c)| c.len()).collect();
        assert_eq!(sizes, vec![3, 2]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = SymMatrix::new(3, 0u64);
        let map = PlacementMap::from_clusters(vec![vec![0, 1]]).unwrap();
        assert!(matches!(
            refine(&map, &g),
            Err(PlacementError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_and_singleton_clusters() {
        let g = SymMatrix::new(2, 0u64);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let (refined, score) = refine(&map, &g).unwrap();
        assert_eq!(score, 0);
        assert_eq!(refined.thread_count(), 2);
    }
}
