//! The fault-tolerant placement service behind `placesim-cli serve`.
//!
//! The service turns the batch pipeline (profile sharing → place
//! threads → simulate) into a long-lived daemon with a **specified**
//! failure story, composed from parts the repo already trusts:
//!
//! * **Durable queue** — every accepted job is appended to a
//!   [`RecordLog`] (the sweep journal's checksummed, fsync'd line
//!   format under the `placesim-service-v1` schema) *before* the
//!   submit is acknowledged, and its result (or permanent failure) is
//!   journaled on completion. A `SIGKILL`'d daemon restarts from the
//!   journal's longest valid prefix: finished jobs come back from the
//!   `done` records byte-identically, unfinished jobs re-enqueue and —
//!   because trace generation and simulation are deterministic in the
//!   spec — produce byte-identical results on the second run.
//! * **Admission control** — the queue is bounded; a submit beyond
//!   capacity gets a typed `overload` rejection instead of an
//!   allocation. Load is shed, memory stays bounded.
//! * **Supervised execution** — each job attempt runs on a detached
//!   thread behind `catch_unwind` and an optional wall-clock watchdog,
//!   with bounded retries spaced by the supervisor's [`BackoffPolicy`]
//!   (exponential, deterministically jittered). Panics and timeouts
//!   are transient (retried); domain errors are deterministic (failed
//!   immediately). Watchdog-abandoned threads are counted in
//!   [`FaultCounters::abandoned`].
//! * **Exclusive lockfile** — a second daemon on the same directory
//!   gets a typed [`ServiceError::Locked`]; a stale lock left by a
//!   dead PID is reclaimed.
//! * **Result cache** — completed results are retained under a
//!   fingerprint key (the canonical job spec, which pins the trace via
//!   its deterministic `(app, scale, seed)` generation; every result
//!   additionally embeds the trace's fnv1a64 fingerprint as the
//!   cross-restart identity check). Retention is a bounded LRU:
//!   evicted results drop their bytes but stay on disk in the journal.
//! * **Graceful drain** — `shutdown` (or `SIGTERM` in the CLI) stops
//!   admission with typed `draining` rejections, lets running jobs
//!   finish, and leaves queued jobs journaled for the next start.
//!
//! [`PlacementService::handle_request`] is the single entry point the
//! socket loop and the tests share: one request line in, one response
//! line out, never a panic.

use crate::journal::{JournalError, RecordLog};
use crate::manifest::ManifestEntry;
use crate::supervisor::BackoffPolicy;
use crate::{run_placement_with_config, PreparedApp};
use placesim_machine::Protocol;
use placesim_obs::json::{JsonValue, JsonWriter};
use placesim_obs::proto::{self, JobOp, JobSpec, ProtoError, Request, ServiceMetrics};
use placesim_obs::FaultCounters;
use placesim_placement::PlacementAlgorithm;
use placesim_trace::hash::{fnv1a64, program_fingerprint};
use placesim_workloads::GenOptions;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Journal file name inside the service directory.
pub const SERVICE_JOURNAL: &str = "service.journal";
/// Lockfile name inside the service directory.
pub const SERVICE_LOCK: &str = "service.lock";

/// Any failure starting or running the placement service.
#[derive(Debug)]
pub enum ServiceError {
    /// Another daemon holds the service directory's lockfile.
    Locked {
        /// The PID recorded in the lockfile, when readable.
        pid: Option<u32>,
    },
    /// The durable queue journal failed.
    Journal(JournalError),
    /// The filesystem or socket failed underneath the service.
    Io(io::Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Locked { pid: Some(pid) } => {
                write!(f, "service directory is locked by live pid {pid}")
            }
            ServiceError::Locked { pid: None } => {
                write!(f, "service directory is locked by another daemon")
            }
            ServiceError::Journal(e) => write!(f, "service journal error: {e}"),
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Journal(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            ServiceError::Locked { .. } => None,
        }
    }
}

impl From<JournalError> for ServiceError {
    fn from(e: JournalError) -> Self {
        ServiceError::Journal(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// Whether `pid` names a live process. Uses `/proc` where it exists;
/// on systems without it the answer is conservatively "alive", so a
/// stale lock is never reclaimed by mistake.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.is_dir() {
        proc_root.join(pid.to_string()).exists()
    } else {
        true
    }
}

/// An exclusive PID lockfile guarding a service directory. Created
/// with `create_new` (atomic on every real filesystem); removed on
/// drop. A lock whose recorded PID is provably dead is reclaimed.
#[derive(Debug)]
pub struct LockFile {
    path: PathBuf,
}

impl LockFile {
    /// Acquires the lock at `path`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Locked`] when a live daemon holds it;
    /// [`ServiceError::Io`] on filesystem failure.
    pub fn acquire(path: &Path) -> Result<Self, ServiceError> {
        // Two rounds: the second retries after reclaiming a stale lock.
        for _ in 0..2 {
            match File::options().write(true).create_new(true).open(path) {
                Ok(mut f) => {
                    writeln!(f, "{}", std::process::id())?;
                    f.sync_data()?;
                    return Ok(LockFile {
                        path: path.to_path_buf(),
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let pid = fs::read_to_string(path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match pid {
                        Some(pid) if !pid_alive(pid) => {
                            // Stale lock from a dead daemon: reclaim.
                            fs::remove_file(path)?;
                        }
                        other => return Err(ServiceError::Locked { pid: other }),
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(ServiceError::Locked { pid: None })
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Tunables for a [`PlacementService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs. Zero is legal (accept-only; jobs
    /// stay journaled until a worker-ful daemon picks them up).
    pub workers: usize,
    /// Admission bound: queued (not yet running) jobs beyond this are
    /// shed with a typed `overload` rejection.
    pub queue_capacity: usize,
    /// Per-attempt wall-clock watchdog; `None` disables it.
    pub job_timeout: Option<Duration>,
    /// Attempts per job before it fails permanently (minimum 1).
    /// Only transient faults (panics, timeouts) are retried.
    pub max_attempts: u32,
    /// Delay schedule between retries; `None` retries immediately.
    pub backoff: Option<BackoffPolicy>,
    /// Completed results retained in memory (LRU; older results are
    /// evicted from memory but survive in the journal).
    pub cache_capacity: usize,
}

impl ServiceConfig {
    /// Production-shaped defaults: 2 workers, a 64-deep queue, no
    /// watchdog, 3 attempts with a 50 ms-based capped backoff, 128
    /// cached results.
    pub fn new() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            job_timeout: None,
            max_attempts: 3,
            backoff: Some(BackoffPolicy::new(
                Duration::from_millis(50),
                Duration::from_secs(2),
                0x5e21_11ce,
            )),
            cache_capacity: 128,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// What the journal replay found at startup.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServiceRecovery {
    /// Unfinished jobs re-enqueued for execution, in submission order.
    pub resumed: Vec<u64>,
    /// Jobs restored as completed (results served from the journal).
    pub completed: u64,
    /// Jobs restored as permanently failed.
    pub failed: u64,
    /// Journal lines dropped during recovery (torn tail, foreign
    /// schema) plus records that replay could not apply.
    pub dropped: usize,
}

#[derive(Debug)]
enum JobState {
    Queued,
    Running,
    Done(String),
    /// Completed, result bytes evicted from memory (still journaled).
    Evicted,
    Failed(String),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Evicted => "evicted",
            JobState::Failed(_) => "failed",
        }
    }
}

#[derive(Debug)]
struct Job {
    spec: JobSpec,
    /// fnv1a64 of the canonical spec JSON: the dedup/cache key.
    spec_fp: u64,
    state: JobState,
}

#[derive(Debug)]
struct State {
    log: RecordLog,
    _lock: LockFile,
    /// Queued job ids in submission order.
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, Job>,
    /// LRU of in-memory results: `(spec_fp, job_id)`, newest at the
    /// back. Overflow evicts the front job's result bytes.
    cache: VecDeque<(u64, u64)>,
    metrics: ServiceMetrics,
    faults: FaultCounters,
    next_id: u64,
    draining: bool,
}

#[derive(Debug)]
struct Inner {
    config: ServiceConfig,
    state: Mutex<State>,
    /// Signalled when work is queued or drain begins.
    work: Condvar,
    /// Signalled when a job reaches a terminal state.
    done: Condvar,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running placement service: durable queue, worker pool, request
/// handler. Cheap to clone (shared handle); one instance per service
/// directory, enforced by the lockfile.
#[derive(Debug, Clone)]
pub struct PlacementService {
    inner: Arc<Inner>,
}

/// Locks a poisoned-or-not mutex: a panicking worker must not wedge
/// the daemon.
fn lock<'a>(m: &'a Mutex<State>) -> std::sync::MutexGuard<'a, State> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl PlacementService {
    /// Starts a service over `dir`: acquires the lockfile, opens (or
    /// creates) the journal, replays it, and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Locked`] when another live daemon owns `dir`;
    /// journal and filesystem errors otherwise.
    pub fn start(
        dir: &Path,
        config: ServiceConfig,
    ) -> Result<(Self, ServiceRecovery), ServiceError> {
        fs::create_dir_all(dir)?;
        let lockfile = LockFile::acquire(&dir.join(SERVICE_LOCK))?;
        let (log, raw) = RecordLog::open(&dir.join(SERVICE_JOURNAL), proto::SERVICE_SCHEMA)?;

        let mut state = State {
            log,
            _lock: lockfile,
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            cache: VecDeque::new(),
            metrics: ServiceMetrics::new(),
            faults: FaultCounters::new(),
            next_id: 1,
            draining: false,
        };
        let mut recovery = ServiceRecovery {
            dropped: raw.dropped.len(),
            ..ServiceRecovery::default()
        };
        for doc in &raw.records {
            if !replay_record(&mut state, doc, config.cache_capacity, &mut recovery) {
                recovery.dropped += 1;
            }
        }
        state.queue = state
            .jobs
            .iter()
            .filter(|(_, j)| matches!(j.state, JobState::Queued))
            .map(|(&id, _)| id)
            .collect();
        recovery.resumed = state.queue.iter().copied().collect();

        let inner = Arc::new(Inner {
            config,
            state: Mutex::new(state),
            work: Condvar::new(),
            done: Condvar::new(),
            workers: Mutex::new(Vec::new()),
        });
        let service = PlacementService {
            inner: Arc::clone(&inner),
        };
        let mut handles = inner.workers.lock().unwrap_or_else(|p| p.into_inner());
        for _ in 0..inner.config.workers {
            let worker = Arc::clone(&inner);
            handles.push(thread::spawn(move || worker_loop(&worker)));
        }
        drop(handles);
        Ok((service, recovery))
    }

    /// Handles one request line, returning one response line (no
    /// trailing newline). Total: every input produces a response,
    /// never a panic.
    pub fn handle_request(&self, line: &str) -> String {
        match proto::parse_request(line) {
            Err(e) => {
                lock(&self.inner.state).metrics.rejected_malformed += 1;
                reject(proto_error_kind(&e), &e.to_string())
            }
            Ok(Request::Submit(spec)) => self.submit(spec),
            Ok(Request::Status) => self.status(),
            Ok(Request::Result { id }) => self.result_of(id, Duration::ZERO),
            Ok(Request::Wait { id, timeout_ms }) => {
                self.result_of(id, Duration::from_millis(timeout_ms))
            }
            Ok(Request::Shutdown) => {
                self.begin_drain();
                let mut w = JsonWriter::new();
                w.begin_object();
                w.field_str("schema", proto::SERVICE_SCHEMA);
                w.field_bool("ok", true);
                w.field_str("op", "shutdown");
                w.field_bool("draining", true);
                w.end_object();
                w.finish()
            }
        }
    }

    fn submit(&self, spec: JobSpec) -> String {
        let fp = fnv1a64(spec.canonical_json().as_bytes());
        let mut st = lock(&self.inner.state);
        let depth = st.queue.len() as u64;
        st.metrics.queue_depth.record(depth);
        if st.draining {
            st.metrics.rejected_draining += 1;
            return reject(
                "draining",
                "service is draining; resubmit to the next daemon",
            );
        }
        // Dedup: an identical spec that is queued, running or done is
        // answered with the existing job id — the journal sees nothing.
        let existing = st.jobs.iter().find_map(|(&id, j)| {
            (j.spec_fp == fp && !matches!(j.state, JobState::Failed(_) | JobState::Evicted))
                .then_some(id)
        });
        if let Some(id) = existing {
            st.metrics.cache_hits += 1;
            return submit_ok(id, true);
        }
        if st.queue.len() >= self.inner.config.queue_capacity {
            st.metrics.rejected_overload += 1;
            return reject(
                "overload",
                &format!(
                    "queue is at capacity {}; shedding load",
                    self.inner.config.queue_capacity
                ),
            );
        }
        let id = st.next_id;
        // Journal BEFORE acknowledging: an acked job survives SIGKILL.
        let payload = job_record(id, &spec);
        let State { log, faults, .. } = &mut *st;
        if let Err(e) = log.append(&payload, faults) {
            return reject("journal", &format!("could not journal the job: {e}"));
        }
        st.next_id += 1;
        st.jobs.insert(
            id,
            Job {
                spec,
                spec_fp: fp,
                state: JobState::Queued,
            },
        );
        st.queue.push_back(id);
        st.metrics.accepted += 1;
        drop(st);
        self.inner.work.notify_one();
        submit_ok(id, false)
    }

    fn status(&self) -> String {
        let st = lock(&self.inner.state);
        let (mut queued, mut running) = (0u64, 0u64);
        for j in st.jobs.values() {
            match j.state {
                JobState::Queued => queued += 1,
                JobState::Running => running += 1,
                _ => {}
            }
        }
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", proto::SERVICE_SCHEMA);
        w.field_bool("ok", true);
        w.field_str("op", "status");
        w.field_u64("pid", u64::from(std::process::id()));
        w.field_bool("draining", st.draining);
        w.field_u64("queued", queued);
        w.field_u64("running", running);
        w.field_u64("workers", self.inner.config.workers as u64);
        w.field_u64("queue_capacity", self.inner.config.queue_capacity as u64);
        w.key("metrics");
        st.metrics.write_json(&mut w, &st.faults);
        w.end_object();
        w.finish()
    }

    fn result_of(&self, id: u64, wait: Duration) -> String {
        let deadline = Instant::now() + wait;
        let mut st = lock(&self.inner.state);
        loop {
            let Some(job) = st.jobs.get(&id) else {
                return reject("unknown_id", &format!("no job {id}"));
            };
            match &job.state {
                JobState::Done(result) => return result_resp(id, "done", Some(result), None),
                JobState::Evicted => return result_resp(id, "evicted", None, None),
                JobState::Failed(reason) => return result_resp(id, "failed", None, Some(reason)),
                JobState::Queued | JobState::Running => {
                    let now = Instant::now();
                    if now >= deadline {
                        return result_resp(id, job.state.name(), None, None);
                    }
                    let (guard, _) = self
                        .inner
                        .done
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(|p| p.into_inner());
                    st = guard;
                }
            }
        }
    }

    /// Begins a graceful drain: stop accepting, let running jobs
    /// finish; queued jobs stay journaled for the next start.
    pub fn begin_drain(&self) {
        lock(&self.inner.state).draining = true;
        self.inner.work.notify_all();
        self.inner.done.notify_all();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        lock(&self.inner.state).draining
    }

    /// Waits for every worker to exit (call after [`Self::begin_drain`];
    /// without a drain this blocks until the workers are told to stop).
    pub fn join(&self) {
        let handles: Vec<_> = self
            .inner
            .workers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// [`Self::begin_drain`] then [`Self::join`]: the graceful-stop
    /// sequence. The journal needs no separate flush — every append
    /// was fsync'd when it was made.
    pub fn drain_and_join(&self) {
        self.begin_drain();
        self.join();
    }

    /// Snapshot of the fault counters (test and report surface).
    pub fn fault_counters(&self) -> FaultCounters {
        lock(&self.inner.state).faults
    }
}

/// Applies one replayed journal record; `false` when it cannot apply.
fn replay_record(
    state: &mut State,
    doc: &JsonValue,
    cache_capacity: usize,
    recovery: &mut ServiceRecovery,
) -> bool {
    let id = match doc.get("id").and_then(JsonValue::as_u64) {
        Some(id) => id,
        None => return false,
    };
    match doc.get("kind").and_then(JsonValue::as_str) {
        Some("job") => {
            let Some(spec_doc) = doc.get("job") else {
                return false;
            };
            let Ok(spec) = JobSpec::from_doc(spec_doc) else {
                return false;
            };
            let fp = fnv1a64(spec.canonical_json().as_bytes());
            state.jobs.insert(
                id,
                Job {
                    spec,
                    spec_fp: fp,
                    state: JobState::Queued,
                },
            );
            state.next_id = state.next_id.max(id + 1);
            true
        }
        Some("done") => {
            let Some(result) = doc.get("result").and_then(JsonValue::as_str) else {
                return false;
            };
            let Some(job) = state.jobs.get_mut(&id) else {
                return false;
            };
            job.state = JobState::Done(result.to_owned());
            let fp = job.spec_fp;
            retain_result(state, fp, id, cache_capacity);
            recovery.completed += 1;
            true
        }
        Some("failed") => {
            let Some(reason) = doc.get("reason").and_then(JsonValue::as_str) else {
                return false;
            };
            let Some(job) = state.jobs.get_mut(&id) else {
                return false;
            };
            job.state = JobState::Failed(reason.to_owned());
            recovery.failed += 1;
            true
        }
        _ => false,
    }
}

/// Records a completed job in the LRU, evicting the oldest retained
/// result's bytes when over capacity.
fn retain_result(state: &mut State, spec_fp: u64, id: u64, capacity: usize) {
    state.cache.retain(|&(_, cached_id)| cached_id != id);
    state.cache.push_back((spec_fp, id));
    while state.cache.len() > capacity.max(1) {
        if let Some((_, old)) = state.cache.pop_front() {
            if let Some(job) = state.jobs.get_mut(&old) {
                if matches!(job.state, JobState::Done(_)) {
                    job.state = JobState::Evicted;
                }
            }
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (id, spec) = {
            let mut st = lock(&inner.state);
            loop {
                if st.draining {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("queued id has a job");
                    job.state = JobState::Running;
                    break (id, job.spec.clone());
                }
                st = inner.work.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };
        let started = Instant::now();
        let outcome = run_job_with_retries(inner, id, &spec);
        let wall_ms = started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        finish_job(inner, id, outcome, wall_ms);
    }
}

/// One attempt's outcome, as seen by the retry loop.
enum AttemptOutcome {
    Ok(String),
    /// Deterministic failure: retrying cannot help.
    Err(String),
    Panicked(String),
    TimedOut,
}

/// Runs one attempt on a detached thread: panic-isolated, watchdogged.
/// On timeout the thread is abandoned, not joined — it may still burn
/// a core, which is why the caller counts it in
/// [`FaultCounters::abandoned`].
fn run_attempt(spec: &JobSpec, timeout: Option<Duration>) -> AttemptOutcome {
    let (tx, rx) = mpsc::channel();
    let spec = spec.clone();
    thread::spawn(move || {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| execute_job(&spec)));
        let _ = tx.send(result);
    });
    let received = match timeout {
        Some(t) => match rx.recv_timeout(t) {
            Ok(r) => r,
            Err(mpsc::RecvTimeoutError::Timeout) => return AttemptOutcome::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return AttemptOutcome::Panicked("attempt thread died".into())
            }
        },
        None => match rx.recv() {
            Ok(r) => r,
            Err(_) => return AttemptOutcome::Panicked("attempt thread died".into()),
        },
    };
    match received {
        Ok(Ok(result)) => AttemptOutcome::Ok(result),
        Ok(Err(reason)) => AttemptOutcome::Err(reason),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            AttemptOutcome::Panicked(msg)
        }
    }
}

fn run_job_with_retries(inner: &Arc<Inner>, id: u64, spec: &JobSpec) -> Result<String, String> {
    let bound = inner.config.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        let reason = match run_attempt(spec, inner.config.job_timeout) {
            AttemptOutcome::Ok(result) => return Ok(result),
            AttemptOutcome::Err(reason) => {
                lock(&inner.state).faults.errors += 1;
                return Err(reason);
            }
            AttemptOutcome::Panicked(msg) => {
                lock(&inner.state).faults.panics += 1;
                format!("attempt panicked: {msg}")
            }
            AttemptOutcome::TimedOut => {
                let mut st = lock(&inner.state);
                st.faults.timeouts += 1;
                st.faults.abandoned += 1;
                format!(
                    "watchdog fired after {:?} (attempt thread abandoned)",
                    inner.config.job_timeout.unwrap_or_default()
                )
            }
        };
        attempt += 1;
        if attempt >= bound {
            return Err(format!("gave up after {attempt} attempts: {reason}"));
        }
        lock(&inner.state).faults.retries += 1;
        if let Some(backoff) = &inner.config.backoff {
            thread::sleep(backoff.delay(id, attempt));
        }
    }
}

/// Journals and applies a job's terminal state. A journal append
/// failure at this point degrades the result to an in-memory-only
/// failure (counted, reported) rather than tearing the daemon down.
fn finish_job(inner: &Arc<Inner>, id: u64, outcome: Result<String, String>, wall_ms: u64) {
    let mut st = lock(&inner.state);
    let payload = match &outcome {
        Ok(result) => done_record(id, result),
        Err(reason) => failed_record(id, reason),
    };
    let State { log, faults, .. } = &mut *st;
    let appended = log.append(&payload, faults);
    match (appended, outcome) {
        (Ok(()), Ok(result)) => {
            let fp = st.jobs.get(&id).map_or(0, |j| j.spec_fp);
            if let Some(job) = st.jobs.get_mut(&id) {
                job.state = JobState::Done(result);
            }
            retain_result(&mut st, fp, id, inner.config.cache_capacity);
            st.metrics.completed += 1;
            st.metrics.job_wall_ms.record(wall_ms);
        }
        (Ok(()), Err(reason)) => {
            if let Some(job) = st.jobs.get_mut(&id) {
                job.state = JobState::Failed(reason);
            }
            st.metrics.failed += 1;
        }
        (Err(je), _) => {
            // io_errors/retries were already counted by append().
            if let Some(job) = st.jobs.get_mut(&id) {
                job.state = JobState::Failed(format!("result could not be journaled: {je}"));
            }
            st.metrics.failed += 1;
        }
    }
    drop(st);
    inner.done.notify_all();
}

// ---- journal records ------------------------------------------------

fn job_record(id: u64, spec: &JobSpec) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", proto::SERVICE_SCHEMA);
    w.field_str("kind", "job");
    w.field_u64("id", id);
    w.key("job");
    spec.write_json(&mut w);
    w.end_object();
    w.finish()
}

fn done_record(id: u64, result: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", proto::SERVICE_SCHEMA);
    w.field_str("kind", "done");
    w.field_u64("id", id);
    // The result is stored as an escaped string so recovery hands back
    // the exact bytes the first run produced.
    w.field_str("result", result);
    w.end_object();
    w.finish()
}

fn failed_record(id: u64, reason: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", proto::SERVICE_SCHEMA);
    w.field_str("kind", "failed");
    w.field_u64("id", id);
    w.field_str("reason", reason);
    w.end_object();
    w.finish()
}

// ---- responses ------------------------------------------------------

fn proto_error_kind(e: &ProtoError) -> &'static str {
    match e {
        ProtoError::Oversized { .. } => "oversized",
        ProtoError::Truncated => "truncated",
        ProtoError::Syntax(_) => "malformed",
        ProtoError::Schema(_) => "schema",
        ProtoError::UnknownOp(_) => "unknown_op",
        ProtoError::BadField(_) => "bad_field",
    }
}

/// A typed rejection line: `ok: false` plus a machine-readable kind.
fn reject(kind: &str, detail: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", proto::SERVICE_SCHEMA);
    w.field_bool("ok", false);
    w.field_str("error", kind);
    w.field_str("detail", detail);
    w.end_object();
    w.finish()
}

fn submit_ok(id: u64, cached: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", proto::SERVICE_SCHEMA);
    w.field_bool("ok", true);
    w.field_str("op", "submit");
    w.field_u64("id", id);
    w.field_bool("cached", cached);
    w.end_object();
    w.finish()
}

fn result_resp(id: u64, state: &str, result: Option<&str>, reason: Option<&str>) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", proto::SERVICE_SCHEMA);
    w.field_bool("ok", true);
    w.field_str("op", "result");
    w.field_u64("id", id);
    w.field_str("state", state);
    if let Some(result) = result {
        w.field_str("result", result);
    }
    if let Some(reason) = reason {
        w.field_str("reason", reason);
    }
    w.end_object();
    w.finish()
}

// ---- job execution --------------------------------------------------

fn parse_algorithm(name: &str) -> Result<PlacementAlgorithm, String> {
    PlacementAlgorithm::ALL
        .into_iter()
        .find(|a| a.paper_name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown algorithm {name:?}"))
}

/// Writes a simulation's manifest-entry fields (shared by simulate
/// results and sweep cells; field order mirrors the sweep journal).
fn write_entry_fields(w: &mut JsonWriter, e: &ManifestEntry) {
    w.field_str("algorithm", &e.algorithm);
    w.field_u64("processors", e.processors as u64);
    w.field_u64("execution_time", e.execution_time);
    w.field_u64("total_refs", e.total_refs);
    w.field_u64("total_misses", e.total_misses);
    w.field_f64("miss_rate", e.miss_rate);
    w.field_u64("coherence_traffic", e.coherence_traffic);
    w.field_u64("update_traffic", e.update_traffic);
    w.field_u64("compulsory", e.misses.compulsory);
    w.field_u64("intra_thread_conflict", e.misses.intra_thread_conflict);
    w.field_u64("inter_thread_conflict", e.misses.inter_thread_conflict);
    w.field_u64("invalidation", e.misses.invalidation);
}

/// Executes one job to its canonical result JSON. Deterministic: the
/// trace is regenerated from `(app, scale, seed)` and the writer emits
/// a fixed field order, so the same spec always produces the same
/// bytes — the property the crash-resume proof and the result cache
/// both rest on. Any `Err` is a deterministic failure (bad spec, bad
/// grid): the service fails the job without retrying.
fn execute_job(spec: &JobSpec) -> Result<String, String> {
    let app_spec =
        placesim_workloads::spec(&spec.app).ok_or_else(|| format!("unknown app {:?}", spec.app))?;
    let protocol = match &spec.protocol {
        None => None,
        Some(name) => Some(name.parse::<Protocol>().map_err(|e| e.to_string())?),
    };
    let algorithms = spec
        .algorithms
        .iter()
        .map(|n| parse_algorithm(n))
        .collect::<Result<Vec<_>, _>>()?;
    let mut app = PreparedApp::prepare(
        &app_spec,
        &GenOptions {
            scale: spec.scale,
            seed: spec.seed,
        },
    );
    if let Some(p) = protocol {
        app.config = app.config.with_protocol(p);
    }
    if algorithms.contains(&PlacementAlgorithm::CoherenceTraffic) {
        app.run_probe().map_err(|e| e.to_string())?;
    }
    let trace_fp = format!("{:016x}", program_fingerprint(&app.prog));

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", proto::SERVICE_SCHEMA);
    w.field_str("kind", "job-result");
    w.field_str("op", spec.op.as_str());
    w.field_str("app", &spec.app);
    w.field_str("trace_fingerprint", &trace_fp);
    match spec.op {
        JobOp::Analyze => {
            w.field_u64("threads", app.threads() as u64);
            w.field_u64("total_refs", app.prog.total_refs());
            w.field_u64("shared_addresses", app.sharing.shared_address_count());
            w.field_u64("total_addresses", app.sharing.total_address_count());
        }
        JobOp::Place => {
            let algorithm = algorithms[0];
            let processors = spec.processors[0];
            let map = algorithm
                .place(&app.placement_inputs(), processors)
                .map_err(|e| e.to_string())?;
            w.field_str("algorithm", algorithm.paper_name());
            w.field_u64("processors", processors as u64);
            w.field_f64("load_imbalance", map.load_imbalance(&app.lengths));
            w.key("assignment");
            w.begin_array();
            for (_, threads) in map.iter() {
                w.begin_array();
                for &t in threads {
                    w.value_u64(t.index() as u64);
                }
                w.end_array();
            }
            w.end_array();
        }
        JobOp::Simulate => {
            let algorithm = algorithms[0];
            let processors = spec.processors[0];
            let result = run_placement_with_config(&app, algorithm, processors, &app.config)
                .map_err(|e| e.to_string())?;
            let entry =
                ManifestEntry::from_stats(algorithm.paper_name(), processors, &result.stats);
            write_entry_fields(&mut w, &entry);
        }
        JobOp::Sweep => {
            w.key("cells");
            w.begin_array();
            for &algorithm in &algorithms {
                for &processors in &spec.processors {
                    let result =
                        run_placement_with_config(&app, algorithm, processors, &app.config)
                            .map_err(|e| e.to_string())?;
                    let entry = ManifestEntry::from_stats(
                        algorithm.paper_name(),
                        processors,
                        &result.stats,
                    );
                    w.begin_object();
                    write_entry_fields(&mut w, &entry);
                    w.end_object();
                }
            }
            w.end_array();
        }
    }
    w.end_object();
    Ok(w.finish())
}

// ---- socket front end -----------------------------------------------

/// Connection threads the socket loop will run at once; excess
/// connections get a typed `overload` line and are closed.
#[cfg(unix)]
const MAX_CONNECTIONS: usize = 32;

/// Serves `service` on a Unix socket at `socket` until a drain begins
/// (via a `shutdown` request) or `stop` is raised (the CLI's SIGTERM
/// flag). Removes the socket file on the way out; the caller still
/// owns the drain-and-join.
///
/// # Errors
///
/// Socket bind/accept failures.
#[cfg(unix)]
pub fn serve_unix(
    service: &PlacementService,
    socket: &Path,
    stop: &AtomicBool,
) -> Result<(), ServiceError> {
    use std::os::unix::net::UnixListener;
    use std::sync::atomic::AtomicUsize;

    let _ = fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    listener.set_nonblocking(true)?;
    let live = Arc::new(AtomicUsize::new(0));
    while !stop.load(Ordering::SeqCst) && !service.is_draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                if live.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
                    let mut stream = stream;
                    let _ = writeln!(
                        stream,
                        "{}",
                        reject("overload", "too many concurrent connections")
                    );
                    continue;
                }
                live.fetch_add(1, Ordering::SeqCst);
                let svc = service.clone();
                let live_count = Arc::clone(&live);
                thread::spawn(move || {
                    handle_connection(&svc, stream);
                    live_count.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(15));
            }
            Err(e) => {
                let _ = fs::remove_file(socket);
                return Err(e.into());
            }
        }
    }
    let _ = fs::remove_file(socket);
    Ok(())
}

#[cfg(unix)]
fn handle_connection(service: &PlacementService, stream: std::os::unix::net::UnixStream) {
    use std::io::BufReader;
    let _ = stream.set_nonblocking(false);
    // An idle or wedged client must not pin a connection slot forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(600)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match proto::read_frame(&mut reader) {
            Ok(None) => return,
            Ok(Some(line)) => {
                let response = service.handle_request(&line);
                if writeln!(writer, "{response}").is_err() {
                    return;
                }
            }
            Err(e) => {
                // A framing error desynchronizes the stream: answer
                // once, then close.
                lock(&service.inner.state).metrics.rejected_malformed += 1;
                let _ = writeln!(writer, "{}", reject(proto_error_kind(&e), &e.to_string()));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_obs::json;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("placesim-service-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn submit_line(job: &str) -> String {
        format!(
            "{{\"schema\": \"{}\", \"op\": \"submit\", \"job\": {job}}}",
            proto::SERVICE_SCHEMA
        )
    }

    const ANALYZE_JOB: &str =
        "{\"op\": \"analyze\", \"app\": \"water\", \"scale\": 0.002, \"seed\": 3}";

    fn quick_config() -> ServiceConfig {
        ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            job_timeout: None,
            max_attempts: 2,
            backoff: None,
            cache_capacity: 8,
        }
    }

    #[test]
    fn submit_execute_and_fetch_result() {
        let dir = tmp_dir("roundtrip");
        let (svc, rec) = PlacementService::start(&dir, quick_config()).unwrap();
        assert_eq!(rec, ServiceRecovery::default());
        let resp = svc.handle_request(&submit_line(ANALYZE_JOB));
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        let id = doc.get("id").and_then(JsonValue::as_u64).unwrap();

        let wait = format!(
            "{{\"schema\": \"{}\", \"op\": \"wait\", \"id\": {id}, \"timeout_ms\": 30000}}",
            proto::SERVICE_SCHEMA
        );
        let resp = svc.handle_request(&wait);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"));
        let result = doc.get("result").and_then(JsonValue::as_str).unwrap();
        let result_doc = json::parse(result).expect("result is strict JSON");
        assert_eq!(
            result_doc.get("op").and_then(JsonValue::as_str),
            Some("analyze")
        );
        assert!(result_doc.get("trace_fingerprint").is_some());

        // An identical resubmit is a cache hit on the same id.
        let resp = svc.handle_request(&submit_line(ANALYZE_JOB));
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("cached").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(doc.get("id").and_then(JsonValue::as_u64), Some(id));

        svc.drain_and_join();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overload_is_typed_and_draining_rejects() {
        let dir = tmp_dir("overload");
        let mut cfg = quick_config();
        cfg.workers = 0; // nothing drains the queue
        cfg.queue_capacity = 2;
        let (svc, _) = PlacementService::start(&dir, cfg).unwrap();
        // Distinct specs (different seeds) so dedup doesn't absorb them.
        for seed in 0..2 {
            let job = ANALYZE_JOB.replace("\"seed\": 3", &format!("\"seed\": {seed}"));
            let doc = json::parse(&svc.handle_request(&submit_line(&job))).unwrap();
            assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        }
        let job = ANALYZE_JOB.replace("\"seed\": 3", "\"seed\": 99");
        let doc = json::parse(&svc.handle_request(&submit_line(&job))).unwrap();
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            doc.get("error").and_then(JsonValue::as_str),
            Some("overload")
        );

        svc.begin_drain();
        let doc = json::parse(&svc.handle_request(&submit_line(ANALYZE_JOB))).unwrap();
        assert_eq!(
            doc.get("error").and_then(JsonValue::as_str),
            Some("draining")
        );
        svc.join();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_requests_get_typed_rejections() {
        let dir = tmp_dir("malformed");
        let mut cfg = quick_config();
        cfg.workers = 0;
        let (svc, _) = PlacementService::start(&dir, cfg).unwrap();
        for (line, kind) in [
            ("not json at all", "malformed"),
            (
                "{\"schema\": \"placesim-service-v1\", \"op\": \"explode\"}",
                "unknown_op",
            ),
            ("{\"op\": \"status\"}", "schema"),
        ] {
            let doc = json::parse(&svc.handle_request(line)).unwrap();
            assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(false));
            assert_eq!(doc.get("error").and_then(JsonValue::as_str), Some(kind));
        }
        let status =
            svc.handle_request("{\"schema\": \"placesim-service-v1\", \"op\": \"status\"}");
        let doc = json::parse(&status).unwrap();
        let malformed = doc
            .get("metrics")
            .and_then(|m| m.get("rejected_malformed"))
            .and_then(JsonValue::as_u64);
        assert_eq!(malformed, Some(3));
        svc.drain_and_join();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_failures_do_not_retry() {
        let dir = tmp_dir("detfail");
        let (svc, _) = PlacementService::start(&dir, quick_config()).unwrap();
        let job = ANALYZE_JOB.replace("water", "no-such-app");
        let doc = json::parse(&svc.handle_request(&submit_line(&job))).unwrap();
        let id = doc.get("id").and_then(JsonValue::as_u64).unwrap();
        let wait = format!(
            "{{\"schema\": \"{}\", \"op\": \"wait\", \"id\": {id}, \"timeout_ms\": 30000}}",
            proto::SERVICE_SCHEMA
        );
        let doc = json::parse(&svc.handle_request(&wait)).unwrap();
        assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("failed"));
        assert!(doc
            .get("reason")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("unknown app"));
        let faults = svc.fault_counters();
        assert_eq!(faults.errors, 1);
        assert_eq!(faults.retries, 0);
        svc.drain_and_join();
        fs::remove_dir_all(&dir).ok();
    }
}
