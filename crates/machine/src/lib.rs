//! Event-driven simulator of a multithreaded shared-memory multiprocessor.
//!
//! This is the machine of Thekkath & Eggers (ISCA 1994) §3.2: processors
//! with multiple hardware contexts and a round-robin switch-on-miss
//! policy, per-processor direct-mapped caches, a full-map directory-based
//! write-invalidate coherence protocol, and a contention-free
//! interconnect modeled as a fixed memory latency. The simulator is
//! trace-driven: it consumes a [`placesim_trace::ProgramTrace`] and a
//! [`placesim_placement::PlacementMap`] and produces cycle and miss
//! statistics ([`SimStats`]).
//!
//! The coherence protocol is pluggable ([`Protocol`]): the paper's
//! write-invalidate machine is the default, with MESI (exclusive-clean
//! fills eliminating upgrade traffic on private lines) and Dragon
//! write-update (sharers refreshed in place, counted in the dedicated
//! update-traffic statistics) selectable through
//! [`ArchConfig`]'s builder.
//!
//! Cache misses are classified exactly as the paper requires
//! ([`MissKind`]): compulsory, intra-thread conflict, inter-thread
//! conflict, and invalidation misses.
//!
//! # Example
//!
//! ```
//! use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
//! use placesim_placement::PlacementMap;
//! use placesim_machine::{ArchConfig, simulate};
//!
//! let t0: ThreadTrace = (0..100).map(|i| MemRef::instr(Address::new(4 * i))).collect();
//! let t1: ThreadTrace = (0..50).map(|i| MemRef::instr(Address::new(0x8000 + 4 * i))).collect();
//! let prog = ProgramTrace::new("two-threads", vec![t0, t1]);
//! let map = PlacementMap::from_clusters(vec![vec![0], vec![1]])?;
//!
//! let stats = simulate(&prog, &map, &ArchConfig::paper_default())?;
//! assert!(stats.execution_time() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "audit")]
mod audit;
mod cache;
mod config;
mod directory;
mod engine;
pub mod model;
mod obs;
pub mod parallel;
pub mod probe;
mod protocol;
mod stats;

pub use cache::{Access, AccessOutcome, GoneReason, LineState, ProcessorCache};
pub use config::{ArchConfig, ArchConfigBuilder, ConfigError};
pub use directory::{Directory, SharerSet, MAX_PROCESSORS};
#[cfg(feature = "reference-engine")]
pub use engine::reference;
pub use engine::{
    attribution_enabled, simulate, simulate_attributed, simulate_observed,
    simulate_serial_with_traffic, simulate_traced, simulate_with_traffic, SimError,
};
pub use model::{simulated_efficiency, EfficiencyModel};
pub use obs::EngineObsReport;
pub use parallel::{
    simulate_attributed_configured, simulate_attributed_parallel, simulate_parallel,
    simulate_parallel_with_traffic, ParConfig,
};
pub use placesim_obs::{
    AttrCollector, AttrKind, AttributionConfig, EventKind, EventTrace, SharingRun, TimelineEvent,
};
pub use probe::{probe_coherence, ProbeResult};
pub use protocol::{
    CoherenceProtocol, Dragon, Mesi, Protocol, RemoteAction, UnknownProtocol, WriteHit,
    WriteInvalidate,
};
pub use stats::{MissBreakdown, MissKind, ProcStats, SimStats};
