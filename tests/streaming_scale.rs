//! Acceptance tests for the bounded-memory out-of-core pipeline: a v3
//! streaming trace is generated, profiled and placed without ever
//! materializing the program in memory, under a peak-heap cap enforced
//! by a tracking allocator.
//!
//! The always-run test exercises the full path at a small scale with a
//! spill-forcing budget. The `#[ignore]` test is the release-mode
//! headline: a ≥100M-reference trace profiled and placed inside a fixed
//! 512 MiB peak-heap budget, plus paper-scale (1.0) bit-identity of the
//! sharing analysis and the resulting placement against the in-memory
//! path. CI runs it with `cargo test --release -- --ignored` at a
//! reduced `PLACESIM_SCALE`.

use placesim_analysis::{SharingAnalysis, SpillBudget};
use placesim_placement::{PlacementAlgorithm, PlacementInputs};
use placesim_trace::stream::FileReader;
use placesim_workloads::{generate, generate_streamed, spec, GenOptions};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tracks live and peak heap bytes so the memory budget is a measured
/// number, not an estimate.
struct TrackingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let live = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Serializes peak measurements across tests in this binary (the test
/// harness runs them on parallel threads, and the watermark is global).
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` and returns the peak heap bytes live during the call.
fn measured_peak<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    let out = f();
    (PEAK.load(Ordering::Relaxed), out)
}

fn tmp_trace(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("placesim-scale-{}-{tag}.trace", std::process::id()))
}

/// Streams `gauss` at `scale` to `path` and returns the reference count.
fn gen_to_file(path: &std::path::Path, scale: f64, seed: u64) -> u64 {
    let app = spec("gauss").expect("known app");
    let opts = GenOptions { scale, seed };
    let file = std::fs::File::create(path).expect("create trace file");
    let summary = generate_streamed(&app, &opts, std::io::BufWriter::new(file)).expect("stream");
    summary.total_refs
}

/// Profiles and places the on-disk trace, returning the sharing
/// analysis and the ShareRefsLb placement.
fn profile_and_place(
    path: &std::path::Path,
    budget: &SpillBudget,
    seed: u64,
) -> (SharingAnalysis, placesim_placement::PlacementMap) {
    let reader = FileReader::open(path).expect("open trace");
    let sharing = SharingAnalysis::measure_streamed(&reader, budget).expect("streamed profile");
    let lengths = reader.instr_lengths();
    let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(seed);
    let map = PlacementAlgorithm::ShareRefsLb
        .place(&inputs, 16)
        .expect("placement");
    (sharing, map)
}

/// Small-scale, always-run: the streamed pipeline is bit-identical to
/// the in-memory one even with a budget tiny enough to force every
/// thread through spill files, and its peak heap stays under a cap far
/// below what the workload could legitimately need if it leaked the
/// whole trace into memory at larger scales.
#[test]
fn streamed_pipeline_is_bit_identical_and_bounded() {
    let app = spec("gauss").expect("known app");
    let opts = GenOptions {
        scale: 0.02,
        seed: 1994,
    };
    let path = tmp_trace("small");
    let refs = gen_to_file(&path, opts.scale, opts.seed);
    assert!(refs > 100_000, "small trace still needs real volume");

    let budget = SpillBudget::new(512); // ~forces spills on every thread
    let (peak, (streamed_sharing, streamed_map)) =
        measured_peak(|| profile_and_place(&path, &budget, opts.seed));
    std::fs::remove_file(&path).ok();

    const CAP: usize = 64 << 20;
    assert!(
        peak < CAP,
        "peak {peak} bytes exceeds the {CAP}-byte small-scale cap"
    );

    let prog = generate(&app, &opts);
    let sharing = SharingAnalysis::measure(&prog);
    assert_eq!(streamed_sharing, sharing, "sharing analysis must match");
    let lengths = placesim_placement::thread_lengths(&prog);
    let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(opts.seed);
    let map = PlacementAlgorithm::ShareRefsLb
        .place(&inputs, 16)
        .expect("placement");
    assert_eq!(streamed_map, map, "placement must match");
}

/// Release-mode headline: generate a ≥100M-reference trace straight to
/// disk, then profile and place it inside a fixed 512 MiB peak-heap
/// budget — the packed references alone would exceed that if the trace
/// were materialized. `PLACESIM_SCALE` scales the trace down so CI can
/// smoke the same path quickly (the reference floor scales with it).
#[test]
#[ignore = "release-scale: run with --release -- --ignored"]
fn hundred_million_refs_profile_within_fixed_budget() {
    let mult = placesim::scale_from_env(1.0);
    let scale = 4.0 * mult;
    let path = tmp_trace("large");
    let refs = gen_to_file(&path, scale, 1994);
    let floor = (100_000_000.0 * mult) as u64;
    assert!(
        refs >= floor,
        "expected at least {floor} references, generated {refs}"
    );

    let budget = SpillBudget::new(1 << 16); // out-of-core even at full scale
    const CAP: usize = 512 << 20;
    let (peak, (_, map)) = measured_peak(|| profile_and_place(&path, &budget, 1994));
    std::fs::remove_file(&path).ok();
    assert!(
        peak < CAP,
        "peak {peak} bytes exceeds the fixed {CAP}-byte budget"
    );
    assert_eq!(map.thread_count(), 127, "gauss places all 127 threads");
}

/// Paper-scale (1.0) bit-identity: the streamed analysis and placement
/// equal the in-memory path on the exact workload the paper's tables
/// use. `PLACESIM_SCALE` scales it down for CI smokes.
#[test]
#[ignore = "release-scale: run with --release -- --ignored"]
fn paper_scale_streamed_placement_matches_in_memory() {
    let mult = placesim::scale_from_env(1.0);
    let app = spec("gauss").expect("known app");
    let opts = GenOptions {
        scale: 1.0 * mult,
        seed: 1994,
    };
    let path = tmp_trace("paper");
    gen_to_file(&path, opts.scale, opts.seed);
    let (streamed_sharing, streamed_map) =
        profile_and_place(&path, &SpillBudget::new(1 << 16), opts.seed);
    std::fs::remove_file(&path).ok();

    let prog = generate(&app, &opts);
    let sharing = SharingAnalysis::measure(&prog);
    assert_eq!(streamed_sharing, sharing, "sharing analysis must match");
    let lengths = placesim_placement::thread_lengths(&prog);
    let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(opts.seed);
    let map = PlacementAlgorithm::ShareRefsLb
        .place(&inputs, 16)
        .expect("placement");
    assert_eq!(streamed_map, map, "placement must match");
}
