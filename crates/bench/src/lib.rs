//! Shared harness for the table/figure regeneration binaries.
//!
//! Each binary (`table1` … `table5`, `fig2` … `fig5`, `all`) regenerates
//! one table or figure of Thekkath & Eggers (ISCA 1994) and prints it in
//! the paper's layout. The global trace scale defaults to 0.1 (10% of
//! the paper's simulated thread lengths) and can be overridden with the
//! `PLACESIM_SCALE` environment variable; the workload *shapes* are
//! scale-invariant.

use placesim::figures::{
    default_processor_counts, exec_time_figure, miss_components_figure, ExecTimeFigure,
    MissComponentsFigure,
};
use placesim::report::{ascii_bar, fmt_f, TextTable};
use placesim::tables::{
    prepare_suite, table1, table2, table3, table4_row, table5_row, TABLE5_APPS,
};
use placesim::{scale_from_env, PreparedApp};
use placesim_machine::MissKind;
use placesim_placement::PlacementAlgorithm;
use placesim_workloads::{spec, suite, GenOptions};

/// Default seed for all harness runs (reproducible across binaries).
pub const HARNESS_SEED: u64 = 1994;

/// Generation options honoring `PLACESIM_SCALE` (default 0.1).
pub fn harness_opts() -> GenOptions {
    GenOptions {
        scale: scale_from_env(0.1),
        seed: HARNESS_SEED,
    }
}

/// Prepares one named application.
///
/// # Panics
///
/// Panics if the name is not in the suite.
pub fn prepare(name: &str) -> PreparedApp {
    let spec = spec(name).unwrap_or_else(|| panic!("unknown application {name}"));
    PreparedApp::prepare(&spec, &harness_opts())
}

/// Prints Table 1 (the application suite).
pub fn print_table1() {
    let opts = harness_opts();
    println!("Table 1: The application suite (scale {})\n", opts.scale);
    let apps = prepare_suite(&suite(), &opts);
    let mut t = TextTable::new([
        "Application",
        "Grain",
        "Threads",
        "Total instrs",
        "Mean thread len",
    ]);
    for row in table1(&apps) {
        t.row([
            row.app.clone(),
            format!("{:?}", row.granularity),
            row.threads.to_string(),
            row.total_instructions.to_string(),
            fmt_f(row.mean_thread_length, 0),
        ]);
    }
    println!("{t}");
}

/// Prints Table 2 (measured characteristics).
pub fn print_table2() {
    let opts = harness_opts();
    println!("Table 2: Measured characteristics (scale {})\n", opts.scale);
    let apps = prepare_suite(&suite(), &opts);
    let mut t = TextTable::new([
        "Application",
        "Pairwise mean(k)",
        "Dev%",
        "N-way mean(k)",
        "Dev%",
        "Refs/shared addr",
        "Dev%",
        "Shared refs %",
        "Thread len mean(k)",
        "Dev%",
    ]);
    for row in table2(&apps) {
        t.row([
            row.app.clone(),
            fmt_f(row.pairwise_sharing.mean / 1000.0, 1),
            fmt_f(row.pairwise_sharing.dev_percent(), 1),
            fmt_f(row.nway_sharing.mean / 1000.0, 1),
            fmt_f(row.nway_sharing.dev_percent(), 1),
            fmt_f(row.refs_per_shared_addr.mean, 1),
            fmt_f(row.refs_per_shared_addr.dev_percent(), 1),
            fmt_f(row.shared_refs_percent.mean, 1),
            fmt_f(row.thread_length.mean / 1000.0, 1),
            fmt_f(row.thread_length.dev_percent(), 1),
        ]);
    }
    println!("{t}");
}

/// Prints Table 3 (architectural inputs).
pub fn print_table3() {
    println!("Table 3: Architectural inputs to the simulator\n");
    let mut t = TextTable::new(["Parameter", "Value"]);
    for row in table3() {
        t.row([row.parameter.to_string(), row.value]);
    }
    println!("{t}");
}

/// Prints Table 4 (static sharing vs. measured coherence traffic).
pub fn print_table4() {
    let opts = harness_opts();
    println!(
        "Table 4: Statically counted sharing vs. dynamically measured\n\
         coherence traffic, one thread per processor (scale {})\n",
        opts.scale
    );
    let mut t = TextTable::new([
        "Application",
        "Static pairwise refs",
        "Static % of refs",
        "Dynamic traffic",
        "Dynamic % of refs",
        "Reduction (x)",
    ]);
    for s in suite() {
        let mut app = PreparedApp::prepare(&s, &opts);
        match table4_row(&mut app) {
            Ok(row) => {
                t.row([
                    row.app.clone(),
                    row.static_pairwise_refs.to_string(),
                    fmt_f(row.static_percent, 2),
                    row.dynamic_traffic.to_string(),
                    fmt_f(row.dynamic_percent, 3),
                    fmt_f(row.reduction_factor, 0),
                ]);
            }
            Err(e) => {
                t.row([s.name.to_string(), format!("error: {e}"), String::new()]);
            }
        }
    }
    println!("{t}");
}

/// Prints Table 5 (infinite-cache study, normalized to LOAD-BAL).
pub fn print_table5() {
    let opts = harness_opts();
    println!(
        "Table 5: Execution times normalized to LOAD-BAL with an 8 MB cache\n\
         (best sharing-based algorithm / coherence-traffic algorithm, scale {})\n",
        opts.scale
    );
    let mut t = TextTable::new([
        "Application",
        "p=2 best",
        "p=2 coh",
        "p=4 best",
        "p=4 coh",
        "p=8 best",
        "p=8 coh",
        "p=16 best",
        "p=16 coh",
    ]);
    for name in TABLE5_APPS {
        let mut app = prepare(name);
        app.run_probe().expect("probe");
        let procs = default_processor_counts(app.threads());
        let row = table5_row(&app, &procs).expect("table 5 row");
        let mut cells = vec![name.to_string()];
        for p in [2usize, 4, 8, 16] {
            match row.processor_counts.iter().position(|&x| x == p) {
                Some(i) => {
                    cells.push(fmt_f(row.best_static_normalized[i], 2));
                    cells.push(fmt_f(row.coherence_normalized[i], 2));
                }
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
        }
        t.row(cells);
    }
    println!("{t}");
}

/// Runs and prints one Figure 2/3/4-style execution-time chart.
pub fn print_exec_time_figure(app_name: &str, figure_label: &str) {
    let opts = harness_opts();
    let app = prepare(app_name);
    let procs = default_processor_counts(app.threads());
    println!(
        "{figure_label}: Execution time for {app_name}, normalized to RANDOM\n\
         (threads = {}, scale {})\n",
        app.threads(),
        opts.scale
    );
    let fig = exec_time_figure(&app, &procs).expect("figure");
    print_exec_figure(&fig);
}

/// Prints an [`ExecTimeFigure`] as an algorithms × processors table.
pub fn print_exec_figure(fig: &ExecTimeFigure) {
    let mut headers = vec!["Algorithm".to_string()];
    for &p in &fig.processor_counts {
        headers.push(format!("p={p}"));
    }
    let mut t = TextTable::new(headers);
    for (a, &algo) in fig.algorithms.iter().enumerate() {
        let mut cells = vec![algo.paper_name().to_string()];
        for v in &fig.normalized[a] {
            cells.push(fmt_f(*v, 3));
        }
        t.row(cells);
    }
    println!("{t}");

    // Bar view of the last processor-count column, like the paper's
    // figures (1.0 = RANDOM).
    if let Some(last) = fig.processor_counts.last() {
        println!("bars at p={last} (full bar = RANDOM):");
        for (a, &algo) in fig.algorithms.iter().enumerate() {
            let v = *fig.normalized[a].last().expect("non-empty row");
            println!(
                "  {:<14} {:<6} {}",
                algo.paper_name(),
                fmt_f(v, 3),
                ascii_bar(v, 1.0, 40)
            );
        }
        println!();
    }
}

/// Runs and prints the Figure 5 miss-component chart.
pub fn print_miss_components_figure(app_name: &str) {
    let opts = harness_opts();
    let app = prepare(app_name);
    let procs = default_processor_counts(app.threads());
    println!(
        "Figure 5: Cache-miss components for {app_name} across placement\n\
         algorithms and configurations (scale {})\n",
        opts.scale
    );
    let algos = [
        PlacementAlgorithm::Random,
        PlacementAlgorithm::LoadBal,
        PlacementAlgorithm::ShareRefs,
        PlacementAlgorithm::MaxWrites,
        PlacementAlgorithm::MinShare,
    ];
    let fig = miss_components_figure(&app, &procs, &algos).expect("figure");
    print_miss_figure(&fig);
}

/// Prints a [`MissComponentsFigure`], one block per processor count.
pub fn print_miss_figure(fig: &MissComponentsFigure) {
    for (p, &procs) in fig.processor_counts.iter().enumerate() {
        println!("-- {procs} processors --");
        let mut t = TextTable::new([
            "Algorithm",
            "Compulsory",
            "Intra-conflict",
            "Inter-conflict",
            "Invalidation",
            "Total",
        ]);
        for (a, &algo) in fig.algorithms.iter().enumerate() {
            let b = &fig.breakdown[a][p];
            t.row([
                algo.paper_name().to_string(),
                b.get(MissKind::Compulsory).to_string(),
                b.get(MissKind::IntraThreadConflict).to_string(),
                b.get(MissKind::InterThreadConflict).to_string(),
                b.get(MissKind::Invalidation).to_string(),
                b.total().to_string(),
            ]);
        }
        println!("{t}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_opts_default_scale() {
        // Without the env var the default is 0.1 (cannot assert exactly
        // if the environment sets it; assert positivity instead).
        assert!(harness_opts().scale > 0.0);
        assert_eq!(harness_opts().seed, HARNESS_SEED);
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn prepare_rejects_unknown() {
        let _ = prepare("quake");
    }
}
