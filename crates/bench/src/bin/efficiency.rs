//! Processor-efficiency study (related work, paper §5): sweep the number
//! of hardware contexts per processor and compare simulated efficiency
//! against the analytic Erlang/Markov model of Saavedra-Barrera et al.
//!
//! Reproduces the two related-work conclusions the paper cites: a
//! multithreaded architecture substantially improves processor
//! efficiency (Weber & Gupta), and a small number of contexts cannot
//! hide very long memory latencies (Saavedra-Barrera).

use placesim::report::{fmt_f, TextTable};
use placesim::run_placement;
use placesim_bench::{harness_opts, prepare};
use placesim_machine::{simulated_efficiency, EfficiencyModel};
use placesim_placement::PlacementAlgorithm;

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "mp3d".into());
    let app = prepare(&app_name);
    let threads = app.threads();
    println!(
        "Processor efficiency vs. hardware contexts — {app_name} ({} threads, scale {})\n",
        threads,
        harness_opts().scale
    );

    let mut t = TextTable::new([
        "processors",
        "contexts/proc",
        "simulated efficiency",
        "model efficiency",
        "model saturation",
    ]);
    for p in [16usize, 8, 4, 2] {
        if p > threads {
            continue;
        }
        let r = run_placement(&app, PlacementAlgorithm::Random, p).expect("experiment");
        let sim_eff = simulated_efficiency(&r.stats);
        let contexts = r.map.max_cluster_size();
        match EfficiencyModel::from_stats(&r.stats, &app.config) {
            Some(model) => t.row([
                p.to_string(),
                contexts.to_string(),
                fmt_f(sim_eff, 3),
                fmt_f(model.efficiency(contexts), 3),
                fmt_f(model.saturation_efficiency(), 3),
            ]),
            None => t.row([p.to_string(), contexts.to_string(), fmt_f(sim_eff, 3)]),
        };
    }
    println!("{t}");
    println!(
        "More contexts per processor push efficiency toward the R/(R+C)\n\
         saturation ceiling — multithreading hides the memory latency, at\n\
         the cost of the cache interference the main experiments measure."
    );
}
