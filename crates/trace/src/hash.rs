//! A fast, non-cryptographic hasher for address-keyed maps.
//!
//! Trace analysis and simulation perform tens of millions of hash-map
//! operations keyed by addresses; the standard SipHash dominates that
//! cost. [`FastHasher`] is the classic Fibonacci-multiply mixer (as used
//! by rustc's FxHash) specialized for integer keys. It is **not** DoS
//! resistant — keys here come from our own generators and simulators,
//! never from untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for integer keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for composite keys.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(SEED);
        self.0 ^= self.0 >> 29;
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// FNV-1a over a byte slice, the checksum used by the streaming trace
/// format and the sweep journal. Stable across platforms and releases:
/// checksums written by one build must verify under every other.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a: [`fnv1a64`] fed piecewise, for fingerprinting
/// data too large (or too structured) to flatten into one slice first.
/// Feeding the same bytes in any chunking yields the same digest.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh digest (the FNV-1a offset basis).
    #[must_use]
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` in (little-endian byte order, platform-stable).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// The FNV-1a fingerprint of a whole program trace: name, thread
/// structure and every packed record, in order. Two traces fingerprint
/// equal exactly when they are byte-for-byte the same workload —
/// generation is deterministic in `(app, scale, seed)`, so the
/// placement service uses this as the trace half of its result-cache
/// key and as the cross-restart identity check in job results.
#[must_use]
pub fn program_fingerprint(prog: &crate::ProgramTrace) -> u64 {
    let mut h = Fnv64::new();
    h.update(prog.name().as_bytes());
    h.update_u64(prog.thread_count() as u64);
    for (_, thread) in prog.iter() {
        h.update_u64(thread.len() as u64);
        for r in thread.iter() {
            h.update_u64(r.pack());
        }
    }
    h.finish()
}

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// A `HashSet` using [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let mut a = FastHasher::default();
        a.write_u64(1);
        let mut b = FastHasher::default();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn integer_widths_delegate() {
        let mut a = FastHasher::default();
        a.write_u32(7);
        let mut b = FastHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());

        let mut c = FastHasher::default();
        c.write_u16(7);
        assert_eq!(c.finish(), b.finish());

        let mut d = FastHasher::default();
        d.write_usize(7);
        assert_eq!(d.finish(), b.finish());
    }

    #[test]
    fn byte_fallback_mixes() {
        let mut h = FastHasher::default();
        h.write(&[1, 2, 3]);
        assert_ne!(h.finish(), 0);
    }

    #[test]
    fn incremental_fnv_matches_one_shot() {
        let data = b"placesim fingerprint bytes";
        let mut inc = Fnv64::new();
        inc.update(&data[..7]);
        inc.update(&data[7..]);
        assert_eq!(inc.finish(), fnv1a64(data));
        assert_eq!(Fnv64::default().finish(), fnv1a64(b""));
    }

    #[test]
    fn program_fingerprints_distinguish_traces() {
        use crate::{Address, MemRef, ProgramTrace, ThreadTrace};
        let t0: ThreadTrace = [MemRef::read(Address::new(0x10))].into_iter().collect();
        let t1: ThreadTrace = [MemRef::write(Address::new(0x10))].into_iter().collect();
        let a = ProgramTrace::new("demo", vec![t0.clone(), t1.clone()]);
        let b = ProgramTrace::new("demo", vec![t0.clone(), t1.clone()]);
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
        // Different name, different thread order: different identity.
        let renamed = ProgramTrace::new("omed", vec![t0.clone(), t1.clone()]);
        assert_ne!(program_fingerprint(&a), program_fingerprint(&renamed));
        let swapped = ProgramTrace::new("demo", vec![t1, t0]);
        assert_ne!(program_fingerprint(&a), program_fingerprint(&swapped));
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        m.insert(10, 1);
        assert_eq!(m.get(&10), Some(&1));
        let mut s: FastSet<u64> = FastSet::default();
        s.insert(10);
        assert!(s.contains(&10));
    }
}
