//! Criterion benchmarks: synthetic trace generation and static analysis
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use placesim_analysis::SharingAnalysis;
use placesim_workloads::{generate, spec, GenOptions};

fn bench_generation(c: &mut Criterion) {
    let opts = GenOptions {
        scale: 0.02,
        seed: 9,
    };

    let mut group = c.benchmark_group("generate");
    for name in ["water", "fft", "gauss"] {
        let s = spec(name).expect("suite app");
        let refs = generate(&s, &opts).total_refs();
        group.throughput(Throughput::Elements(refs));
        group.bench_with_input(BenchmarkId::from_parameter(name), &s, |b, s| {
            b.iter(|| generate(s, &opts));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("analyze");
    for name in ["water", "gauss"] {
        let s = spec(name).expect("suite app");
        let prog = generate(&s, &opts);
        group.throughput(Throughput::Elements(prog.total_refs()));
        group.bench_with_input(BenchmarkId::from_parameter(name), &prog, |b, prog| {
            b.iter(|| SharingAnalysis::measure(prog));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_generation
}
criterion_main!(benches);
