//! Placement shootout: run every placement algorithm of the paper on one
//! application — including the dynamic coherence-traffic oracle — and
//! rank them.
//!
//! ```sh
//! cargo run --release --example placement_shootout -- fft 8
//! ```
//!
//! Arguments: application name (default `fft`) and processor count
//! (default 8).

use placesim_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fft".into());
    let processors: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    let spec = spec(&name).ok_or_else(|| format!("unknown application {name}"))?;
    let opts = GenOptions {
        scale: 0.05,
        seed: 7,
    };
    let mut app = PreparedApp::prepare(&spec, &opts);

    // The coherence-traffic placement needs the paper's §4.2 probe: a
    // run with one thread per processor that measures which thread pairs
    // actually exchange cache lines.
    let probe = app.run_probe()?;
    println!(
        "{name}: {} threads on {processors} processors",
        app.threads()
    );
    println!(
        "probe: {} invalidations+invalidation-misses, {:.3}% of references\n",
        probe.total_traffic(),
        100.0 * probe.traffic_fraction()
    );

    let mut results = Vec::new();
    for algo in PlacementAlgorithm::ALL {
        let r = placesim::run_placement(&app, algo, processors)?;
        results.push((algo, r.execution_time(), r.map.load_imbalance(&app.lengths)));
    }
    results.sort_by_key(|&(_, t, _)| t);

    println!(
        "{:<16} {:>14} {:>12}",
        "algorithm", "exec (cycles)", "load imbal"
    );
    println!("{}", "-".repeat(44));
    let best = results[0].1 as f64;
    for (algo, time, imbalance) in &results {
        println!(
            "{:<16} {:>14} {:>11.3}  ({:+.1}%)",
            algo.paper_name(),
            time,
            imbalance,
            100.0 * (*time as f64 / best - 1.0),
        );
    }
    println!(
        "\nThe ranking tracks the load-imbalance column, not the sharing\n\
         metric — the paper's negative result."
    );
    Ok(())
}
