//! Shared-address assignment: which slots each thread touches, in what
//! order, and when it may write.
//!
//! Every pattern decorrelates threads in time (per-thread permutations
//! or rotation offsets), so that at any instant concurrent threads work
//! in different parts of the pool. Combined with the run-structured
//! emission this produces the *sequential sharing* the paper observed:
//! many references per address between ownership changes, hence very
//! little coherence traffic despite a huge fraction of shared
//! references.
//!
//! Patterns with structure (neighbor windows, channels, migration
//! windows) additionally take a `uniform_fraction`: the share of a
//! thread's accesses drawn from the global pool in per-thread-random
//! order. Mixing tunes the *pairwise-sharing deviation* to the values
//! the paper's Table 2 reports — the coarse applications are almost
//! perfectly uniform, the Presto programs range from mildly to extremely
//! skewed.

use crate::gen::GenOptions;
use crate::spec::{AppSpec, SharingPattern};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// When a shared access may be a write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WritePolicy {
    /// Each access writes independently with this probability.
    Bernoulli(f64),
    /// Writes happen only inside the thread's own slot range
    /// `[lo, hi)`, with the given probability (owner-computes style).
    OwnRange {
        /// First owned slot.
        lo: u64,
        /// One past the last owned slot.
        hi: u64,
        /// Write probability within the owned range.
        prob: f64,
    },
    /// Whole access runs are write runs with this probability
    /// (migratory data).
    RunLevel(f64),
}

/// One thread's shared-access plan: the slot sequence it sweeps and its
/// write policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedPlan {
    /// Shared-pool slot numbers in visit order.
    pub slots: Vec<u64>,
    /// Write policy.
    pub policy: WritePolicy,
    /// Target shared references for this thread.
    pub target_refs: u64,
}

/// Expected shared references for a thread of `n_instr` instructions.
fn shared_target(spec: &AppSpec, n_instr: u64) -> u64 {
    (n_instr as f64 * spec.data_ratio * spec.shared_percent / 100.0).round() as u64
}

/// Distinct shared slots a thread should visit to hit its
/// references-per-address target.
fn slot_count(spec: &AppSpec, n_instr: u64) -> u64 {
    (shared_target(spec, n_instr) as f64 / spec.refs_per_shared_addr)
        .round()
        .max(1.0) as u64
}

/// The global pool size, based on the *mean* thread length so all
/// threads of an app share one pool.
fn pool_size(spec: &AppSpec, opts: &GenOptions) -> u64 {
    let mean_instr = (spec.thread_length.mean * opts.scale).max(1.0) as u64;
    slot_count(spec, mean_instr).max(spec.threads as u64)
}

/// A per-thread pseudo-random permutation of `0..pool`.
fn permuted_pool(pool: u64, tid: usize, opts: &GenOptions) -> Vec<u64> {
    let mut order: Vec<u64> = (0..pool).collect();
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ (tid as u64).wrapping_mul(0x5851_F42D));
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order
}

/// The uniform-component fraction for one thread: `uniform_fraction` of
/// the *mean* slot budget, expressed as a fraction of this thread's own
/// budget. Long threads therefore get the same absolute uniform traffic
/// as everyone else and spend their surplus in their structured window —
/// if uniform traffic scaled with length, the reference-counting sharing
/// metrics would cluster long threads together, a length/sharing
/// correlation the real programs do not have (their pairwise-sharing
/// deviations are well below their length deviations).
fn effective_uniform_fraction(
    uniform_fraction: f64,
    spec: &AppSpec,
    opts: &GenOptions,
    count: usize,
) -> f64 {
    let mean_instr = (spec.thread_length.mean * opts.scale).max(1.0) as u64;
    let mean_count = slot_count(spec, mean_instr) as f64;
    (uniform_fraction * mean_count / count.max(1) as f64).min(1.0)
}

/// Interleaves a uniform slot source with a structured (local) source:
/// `uniform_fraction` of the `count` output slots come from `uniform`,
/// the rest from `local`, both consumed cyclically in order.
fn mix(uniform: &[u64], local: &[u64], uniform_fraction: f64, count: usize) -> Vec<u64> {
    let count = count.max(1);
    let mut out = Vec::with_capacity(count);
    let (mut iu, mut il) = (0usize, 0usize);
    let mut acc = 0.0f64;
    for _ in 0..count {
        acc += uniform_fraction.clamp(0.0, 1.0);
        let take_uniform = (acc >= 1.0 && !uniform.is_empty()) || local.is_empty();
        if take_uniform && !uniform.is_empty() {
            acc -= 1.0;
            out.push(uniform[iu % uniform.len()]);
            iu += 1;
        } else {
            out.push(local[il % local.len()]);
            il += 1;
        }
    }
    out
}

/// Builds every thread's shared plan.
pub fn assign_addresses(spec: &AppSpec, lengths: &[u64], opts: &GenOptions) -> Vec<SharedPlan> {
    let pool = pool_size(spec, opts);
    let t = spec.threads as u64;
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xA55E_55ED);

    match spec.pattern {
        SharingPattern::UniformAllShare { write_fraction } => lengths
            .iter()
            .enumerate()
            .map(|(tid, &len)| {
                // Whole pool in per-thread-random order: uniform sharing
                // with no phase structure a placement could exploit.
                let count = slot_count(spec, len) as usize;
                let order = permuted_pool(pool, tid, opts);
                let slots = order.iter().copied().cycle().take(count.max(1)).collect();
                SharedPlan {
                    slots,
                    policy: WritePolicy::Bernoulli(write_fraction),
                    target_refs: shared_target(spec, len),
                }
            })
            .collect(),

        SharingPattern::Migratory {
            write_fraction,
            uniform_fraction,
        } => lengths
            .iter()
            .enumerate()
            .map(|(tid, &len)| {
                // A rotation-offset window covering a quarter of the
                // pool: only rotation neighbors overlap, in proportion to
                // their distance, so the sharing graph mixes thread
                // lengths instead of correlating with them. Extra
                // accesses revisit the window (long write runs =
                // migration).
                let count = slot_count(spec, len) as usize;
                let window = (pool / 4).max(1);
                let start = tid as u64 * pool / t;
                let local: Vec<u64> = (0..window).map(|i| (start + i) % pool).collect();
                let uniform = permuted_pool(pool, tid, opts);
                let uf = effective_uniform_fraction(uniform_fraction, spec, opts, count);
                SharedPlan {
                    slots: mix(&uniform, &local, uf, count),
                    policy: WritePolicy::RunLevel(write_fraction),
                    target_refs: shared_target(spec, len),
                }
            })
            .collect(),

        SharingPattern::PartitionedReadShare { write_fraction } => {
            // Partition the pool into per-thread chunks; reads sweep the
            // whole pool starting at the owner's chunk, writes stay home.
            let chunk = (pool / t).max(1);
            lengths
                .iter()
                .enumerate()
                .map(|(tid, &len)| {
                    let count = slot_count(spec, len);
                    let lo = tid as u64 * chunk;
                    let slots = (0..count.max(1)).map(|i| (lo + i) % (chunk * t)).collect();
                    SharedPlan {
                        slots,
                        policy: WritePolicy::OwnRange {
                            lo,
                            hi: lo + chunk,
                            // Concentrate the write budget in the owned
                            // chunk: overall write fraction ≈
                            // write_fraction when chunk coverage ≈ 1/t.
                            prob: (write_fraction * t as f64).min(0.9),
                        },
                        target_refs: shared_target(spec, len),
                    }
                })
                .collect()
        }

        SharingPattern::NeighborExchange {
            write_fraction,
            reach,
            uniform_fraction,
        } => {
            let chunk = (pool / t).max(1);
            lengths
                .iter()
                .enumerate()
                .map(|(tid, &len)| {
                    let count = slot_count(spec, len) as usize;
                    // Own chunk then ±1, ±2, … neighbor chunks.
                    let mut local: Vec<u64> = Vec::new();
                    let mut offsets: Vec<i64> = vec![0];
                    for r in 1..=(reach as i64) {
                        offsets.push(r);
                        offsets.push(-r);
                    }
                    for &off in &offsets {
                        let n = ((tid as i64 + off).rem_euclid(t as i64)) as u64;
                        local.extend((n * chunk)..((n + 1) * chunk));
                    }
                    let uniform = permuted_pool(chunk * t, tid, opts);
                    let uf = effective_uniform_fraction(uniform_fraction, spec, opts, count);
                    SharedPlan {
                        slots: mix(&uniform, &local, uf, count),
                        policy: WritePolicy::Bernoulli(write_fraction),
                        target_refs: shared_target(spec, len),
                    }
                })
                .collect()
        }

        SharingPattern::RandomComm {
            write_fraction,
            partners,
            uniform_fraction,
        } => {
            // Each unordered pair that communicates gets a dedicated
            // channel region; a thread sweeps the channels it belongs to.
            let mut channels: Vec<(usize, usize)> = Vec::new();
            let mut member_channels: Vec<Vec<usize>> = vec![Vec::new(); spec.threads];
            for tid in 0..spec.threads {
                for _ in 0..partners.max(1) {
                    let other = loop {
                        let cand = rng.gen_range(0..spec.threads);
                        if cand != tid || spec.threads == 1 {
                            break cand;
                        }
                    };
                    let pair = (tid.min(other), tid.max(other));
                    let ch = match channels.iter().position(|&c| c == pair) {
                        Some(i) => i,
                        None => {
                            channels.push(pair);
                            channels.len() - 1
                        }
                    };
                    for member in [pair.0, pair.1] {
                        if !member_channels[member].contains(&ch) {
                            member_channels[member].push(ch);
                        }
                    }
                }
            }
            // Each channel is a dedicated slot range past the uniform
            // pool, sized to the *smaller* partner's slot budget so both
            // partners always cover it fully — a channel slot therefore
            // always has exactly its two sharers, and the pairwise metric
            // sees the strong partner skew the pattern models.
            let local_budget = |tid: usize| -> u64 {
                let count = slot_count(spec, lengths[tid]) as f64;
                (((1.0 - uniform_fraction).max(0.05) * count)
                    / member_channels[tid].len().max(1) as f64)
                    .ceil()
                    .max(1.0) as u64
            };
            let mut widths = Vec::with_capacity(channels.len());
            let mut bases = Vec::with_capacity(channels.len());
            let mut cursor = pool;
            for &(a, b) in &channels {
                let w = local_budget(a).min(local_budget(b)).max(1);
                widths.push(w);
                bases.push(cursor);
                cursor += w;
            }
            lengths
                .iter()
                .enumerate()
                .map(|(tid, &len)| {
                    let count = slot_count(spec, len) as usize;
                    let mut local: Vec<u64> = Vec::new();
                    for &ch in &member_channels[tid] {
                        local.extend(bases[ch]..bases[ch] + widths[ch]);
                    }
                    let uniform = permuted_pool(pool, tid, opts);
                    let uf = effective_uniform_fraction(uniform_fraction, spec, opts, count);
                    SharedPlan {
                        slots: mix(&uniform, &local, uf, count),
                        policy: WritePolicy::Bernoulli(write_fraction),
                        target_refs: shared_target(spec, len),
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use std::collections::HashSet;

    fn opts() -> GenOptions {
        GenOptions {
            scale: 0.1,
            seed: 5,
        }
    }

    fn slot_sets(spec: &AppSpec) -> Vec<HashSet<u64>> {
        let lengths = vec![(spec.thread_length.mean * 0.1) as u64; spec.threads];
        assign_addresses(spec, &lengths, &opts())
            .iter()
            .map(|p| p.slots.iter().copied().collect())
            .collect()
    }

    #[test]
    fn uniform_threads_overlap_heavily() {
        let sets = slot_sets(&suite::water());
        let inter = sets[0].intersection(&sets[1]).count();
        assert!(inter > 0, "uniform pattern must overlap");
        // Far-apart threads overlap just as much: uniformity.
        let far = sets[0].intersection(&sets[8]).count();
        assert!(far > 0);
    }

    #[test]
    fn partitioned_writes_stay_home() {
        let spec = suite::barnes_hut();
        let lengths = vec![(spec.thread_length.mean * 0.1) as u64; spec.threads];
        let plans = assign_addresses(&spec, &lengths, &opts());
        for (tid, plan) in plans.iter().enumerate() {
            match plan.policy {
                WritePolicy::OwnRange { lo, hi, prob } => {
                    assert!(hi > lo);
                    assert!(prob > 0.0 && prob <= 0.9);
                    if tid > 0 {
                        if let WritePolicy::OwnRange { hi: prev_hi, .. } = plans[tid - 1].policy {
                            assert!(lo >= prev_hi);
                        }
                    }
                }
                other => panic!("expected OwnRange, got {other:?}"),
            }
        }
    }

    #[test]
    fn migratory_uses_run_level_writes_and_graded_overlap() {
        let spec = suite::fft();
        let lengths = vec![(spec.thread_length.mean * 0.05) as u64; spec.threads];
        let plans = assign_addresses(&spec, &lengths, &opts());
        assert!(matches!(plans[0].policy, WritePolicy::RunLevel(_)));
        let sets: Vec<HashSet<u64>> = plans
            .iter()
            .map(|p| p.slots.iter().copied().collect())
            .collect();
        // Rotation neighbors overlap more than threads half a rotation
        // apart (windows cover half the pool).
        let near = sets[0].intersection(&sets[1]).count();
        let far = sets[0].intersection(&sets[sets.len() / 2]).count();
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn neighbor_mixing_shares_beyond_the_window() {
        let spec = suite::grav(); // NeighborExchange with uniform mixing
        let sets = slot_sets(&spec);
        let t = spec.threads;
        // Neighbors overlap strongly; distant threads still overlap a
        // little through the uniform component.
        let near = sets[0].intersection(&sets[1]).count();
        let far = sets[0].intersection(&sets[t / 2]).count();
        assert!(near > far, "near {near} far {far}");
        assert!(far > 0, "uniform mixing must create some distant overlap");
    }

    #[test]
    fn random_comm_produces_skew() {
        let spec = suite::vandermonde(); // 1 partner, tiny uniform mixing
        let sets = slot_sets(&spec);
        let mut counts: Vec<usize> = Vec::new();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                counts.push(sets[i].intersection(&sets[j]).count());
            }
        }
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        // A few heavy channel pairs, many light/empty pairs.
        assert!(max > 10, "max overlap {max}");
        assert!(nonzero < counts.len(), "some pairs share only channels");
    }

    #[test]
    fn slot_counts_follow_refs_per_addr() {
        let spec = suite::water();
        let n_instr = 100_000u64;
        let target = shared_target(&spec, n_instr);
        let slots = slot_count(&spec, n_instr);
        let implied_rpa = target as f64 / slots as f64;
        assert!(
            (implied_rpa / spec.refs_per_shared_addr - 1.0).abs() < 0.1,
            "implied {implied_rpa}"
        );
    }

    #[test]
    fn mix_respects_fraction() {
        let uniform: Vec<u64> = (0..100).collect();
        let local: Vec<u64> = (1000..1100).collect();
        let out = mix(&uniform, &local, 0.3, 1000);
        let from_uniform = out.iter().filter(|&&s| s < 100).count();
        assert!((from_uniform as f64 / 1000.0 - 0.3).abs() < 0.02);
        // Degenerate sources.
        assert_eq!(mix(&[], &local, 0.5, 4).len(), 4);
        assert_eq!(mix(&uniform, &[], 0.0, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn plans_are_deterministic() {
        let spec = suite::health();
        let lengths = vec![(spec.thread_length.mean * 0.1) as u64; spec.threads];
        let a = assign_addresses(&spec, &lengths, &opts());
        let b = assign_addresses(&spec, &lengths, &opts());
        assert_eq!(a, b);
    }
}
