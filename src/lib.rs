//! Umbrella crate for the reproduction of Thekkath & Eggers,
//! *Impact of Sharing-Based Thread Placement on Multithreaded
//! Architectures* (ISCA 1994).
//!
//! This crate re-exports the whole stack so examples and downstream
//! users can depend on one crate:
//!
//! * [`trace`] — memory-reference trace model,
//! * [`workloads`] — the synthetic 14-application suite,
//! * [`analysis`] — static sharing analysis,
//! * [`placement`] — the placement algorithms,
//! * [`machine`] — the multithreaded multiprocessor simulator,
//! * [`runner`] — the high-level experiment runner.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use placesim as runner;
pub use placesim_analysis as analysis;
pub use placesim_machine as machine;
pub use placesim_placement as placement;
pub use placesim_trace as trace;
pub use placesim_workloads as workloads;

/// Convenience re-exports of the most common entry points.
pub mod prelude {
    pub use placesim::{run_placement, ExperimentResult, PreparedApp};
    pub use placesim_machine::{simulate, ArchConfig, MissKind, SimStats};
    pub use placesim_placement::{PlacementAlgorithm, PlacementInputs, PlacementMap};
    pub use placesim_trace::{Address, MemRef, ProgramTrace, RefKind, ThreadId, ThreadTrace};
    pub use placesim_workloads::{generate, spec, suite, GenOptions};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let spec = spec("water").expect("suite app");
        let prog = generate(
            &spec,
            &GenOptions {
                scale: 0.001,
                seed: 1,
            },
        );
        assert_eq!(prog.thread_count(), 16);
    }
}
