//! Error type for placement construction.

use std::fmt;

/// Errors produced by the placement algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// `processors` was zero.
    ZeroProcessors,
    /// More processors than threads: every thread-balanced placement
    /// would leave a processor empty.
    TooManyProcessors {
        /// Threads available.
        threads: usize,
        /// Processors requested.
        processors: usize,
    },
    /// The clustering engine exhausted its search budget without finding
    /// a thread-balanced partition (does not occur for the paper's
    /// configurations; guards against adversarial inputs).
    SearchExhausted,
    /// The coherence-traffic algorithm was run without a traffic matrix.
    MissingTraffic,
    /// A supplied input had the wrong dimension.
    DimensionMismatch {
        /// What was mismatched.
        what: &'static str,
        /// Expected dimension (the thread count).
        expected: usize,
        /// Dimension found.
        found: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::ZeroProcessors => {
                write!(f, "placement requires at least one processor")
            }
            PlacementError::TooManyProcessors {
                threads,
                processors,
            } => write!(
                f,
                "cannot thread-balance {threads} threads over {processors} processors"
            ),
            PlacementError::SearchExhausted => {
                write!(
                    f,
                    "clustering search budget exhausted without a balanced partition"
                )
            }
            PlacementError::MissingTraffic => {
                write!(
                    f,
                    "coherence-traffic placement requires a measured traffic matrix"
                )
            }
            PlacementError::DimensionMismatch {
                what,
                expected,
                found,
            } => {
                write!(f, "{what} has dimension {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(PlacementError::ZeroProcessors
            .to_string()
            .contains("one processor"));
        let e = PlacementError::TooManyProcessors {
            threads: 2,
            processors: 4,
        };
        assert!(e.to_string().contains("2 threads"));
        let e = PlacementError::DimensionMismatch {
            what: "lengths",
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("lengths"));
    }
}
