//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never drives serde's data model (all on-disk formats are hand-rolled
//! in `placesim-trace::io`/`compress`, and reports are plain text). This
//! crate provides the two trait names plus no-op derive macros so the
//! annotations compile without network access. Blanket implementations
//! keep any future `T: Serialize` bound satisfiable.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(all(test, feature = "derive"))]
mod tests {
    #[test]
    fn derives_compile_and_bounds_hold() {
        #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
        struct Point {
            x: u32,
        }
        fn requires_serialize<T: crate::Serialize>(_: &T) {}
        requires_serialize(&Point { x: 1 });
    }
}
