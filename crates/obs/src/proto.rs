//! The `placesim-service-v1` wire protocol: hardened parsing for the
//! placement service's newline-delimited JSON requests, plus the
//! service-side metrics block.
//!
//! The placement daemon (`placesim-cli serve`) reads untrusted bytes
//! from a local socket, so every request passes through this module's
//! strict pipeline before any domain code sees it:
//!
//! 1. [`read_frame`] — bounded framing: at most [`MAX_FRAME_BYTES`]
//!    bytes are ever buffered per request; an oversized or truncated
//!    frame is a typed error, never an unbounded allocation.
//! 2. [`parse_request`] — the strict [`crate::json`] parser (duplicate
//!    keys, trailing garbage and deep nesting are rejected there),
//!    followed by schema/op dispatch and per-field validation with
//!    hard bounds on every count, length and list a request can claim.
//!
//! Parsing is total: any byte sequence produces either a [`Request`]
//! or a [`ProtoError`] — never a panic, never an allocation that is
//! not a small multiple of the input size (the hostile-input suite
//! enforces this under a tracking allocator).

use crate::json::{self, JsonValue, JsonWriter};
use crate::{FaultCounters, Histogram};
use std::fmt;
use std::io::BufRead;

/// Schema tag every request and response carries; bump on layout
/// changes.
pub const SERVICE_SCHEMA: &str = "placesim-service-v1";

/// Hard cap on one request frame (bytes, including the newline). A
/// legitimate request is a few hundred bytes; anything beyond this is
/// load-shedding territory.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Hard cap on the algorithm / processor-count lists a job may claim.
pub const MAX_LIST_ITEMS: usize = 64;

/// Hard cap on any string field (app, algorithm, protocol names).
pub const MAX_STRING_BYTES: usize = 128;

/// Hard cap on a `wait` request's timeout (ms); longer waits must poll.
pub const MAX_WAIT_MS: u64 = 600_000;

/// Largest processor count a job may request.
pub const MAX_PROCESSORS: u64 = 1024;

/// A typed request-parsing failure. Every variant maps to a rejection
/// response; none of them tears down the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame exceeded [`MAX_FRAME_BYTES`] before a newline arrived.
    Oversized {
        /// The enforced frame limit in bytes.
        limit: usize,
    },
    /// The stream ended mid-frame (no terminating newline).
    Truncated,
    /// The frame is not valid UTF-8 or not strict JSON.
    Syntax(String),
    /// The document does not carry `"schema": "placesim-service-v1"`.
    Schema(String),
    /// The `op` field is missing or names no known operation.
    UnknownOp(String),
    /// A field is missing, mistyped, out of bounds, or unknown.
    BadField(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            ProtoError::Truncated => write!(f, "truncated frame (stream ended mid-request)"),
            ProtoError::Syntax(msg) => write!(f, "malformed request: {msg}"),
            ProtoError::Schema(msg) => write!(f, "schema mismatch: {msg}"),
            ProtoError::UnknownOp(msg) => write!(f, "unknown op: {msg}"),
            ProtoError::BadField(msg) => write!(f, "bad field: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// What a submitted job asks the service to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOp {
    /// Static sharing analysis of the app's trace.
    Analyze,
    /// Placement only: one algorithm, one processor count.
    Place,
    /// Placement + full simulation: one algorithm, one processor count.
    Simulate,
    /// A full algorithms × processor-counts grid of simulations.
    Sweep,
}

impl JobOp {
    /// The wire name of the op.
    pub fn as_str(self) -> &'static str {
        match self {
            JobOp::Analyze => "analyze",
            JobOp::Place => "place",
            JobOp::Simulate => "simulate",
            JobOp::Sweep => "sweep",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "analyze" => Some(JobOp::Analyze),
            "place" => Some(JobOp::Place),
            "simulate" => Some(JobOp::Simulate),
            "sweep" => Some(JobOp::Sweep),
            _ => None,
        }
    }
}

/// A validated job description. Field bounds are enforced at parse
/// time, so downstream code can trust every count and length in here;
/// *semantic* validity (does the app exist, does the algorithm parse)
/// is the service's job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What to run.
    pub op: JobOp,
    /// Application (suite) name.
    pub app: String,
    /// Trace scale factor, in `(0, 10]`.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// Coherence protocol name, when overriding the paper default.
    pub protocol: Option<String>,
    /// Algorithm names: exactly one for place/simulate, at least one
    /// for sweep, empty for analyze.
    pub algorithms: Vec<String>,
    /// Processor counts: exactly one for place/simulate, at least one
    /// for sweep, empty for analyze.
    pub processors: Vec<usize>,
}

impl JobSpec {
    /// The canonical JSON of this spec: fixed field order, fixed
    /// spacing. Two identical jobs always canonicalize to identical
    /// bytes, which is what makes the fingerprint-keyed result cache
    /// and the crash-resume byte-identity proof work.
    pub fn canonical_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes the spec as a JSON object value onto `w` (canonical
    /// field order).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("op", self.op.as_str());
        w.field_str("app", &self.app);
        w.field_f64("scale", self.scale);
        w.field_u64("seed", self.seed);
        w.key("protocol");
        match &self.protocol {
            Some(p) => w.value_str(p),
            None => w.value_null(),
        }
        w.key("algorithms");
        w.begin_array();
        for a in &self.algorithms {
            w.value_str(a);
        }
        w.end_array();
        w.key("processors");
        w.begin_array();
        for &p in &self.processors {
            w.value_u64(p as u64);
        }
        w.end_array();
        w.end_object();
    }

    /// Parses and validates a job object. Strict: unknown keys are
    /// rejected, every bound above is enforced.
    pub fn from_doc(doc: &JsonValue) -> Result<Self, ProtoError> {
        let fields = doc
            .as_object()
            .ok_or_else(|| ProtoError::BadField("job must be an object".into()))?;
        for (key, _) in fields {
            if !matches!(
                key.as_str(),
                "op" | "app" | "scale" | "seed" | "protocol" | "algorithms" | "processors"
            ) {
                return Err(ProtoError::BadField(format!("unknown job field {key:?}")));
            }
        }
        let op_name = doc
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ProtoError::BadField("job field \"op\" is not a string".into()))?;
        let op = JobOp::parse(op_name)
            .ok_or_else(|| ProtoError::UnknownOp(format!("job op {op_name:?}")))?;
        let app = bounded_string(doc, "app")?
            .ok_or_else(|| ProtoError::BadField("job field \"app\" is not a string".into()))?;
        let scale = doc
            .get("scale")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| ProtoError::BadField("job field \"scale\" is not a number".into()))?;
        if !(scale > 0.0 && scale <= 10.0) {
            return Err(ProtoError::BadField(format!(
                "job scale {scale} is outside (0, 10]"
            )));
        }
        let seed = doc.get("seed").and_then(JsonValue::as_u64).ok_or_else(|| {
            ProtoError::BadField("job field \"seed\" is not an unsigned integer".into())
        })?;
        let protocol = match doc.get("protocol") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(_) => Some(bounded_string(doc, "protocol")?.ok_or_else(|| {
                ProtoError::BadField("job field \"protocol\" is not a string".into())
            })?),
        };
        let algorithms = string_list(doc, "algorithms")?;
        let processors = uint_list(doc, "processors")?;
        // Shape rules per op: analyze takes no grid; place/simulate
        // take exactly one cell; sweep takes a non-empty grid.
        let (na, np) = (algorithms.len(), processors.len());
        match op {
            JobOp::Analyze => {
                if na != 0 || np != 0 {
                    return Err(ProtoError::BadField(
                        "analyze jobs take no algorithms or processors".into(),
                    ));
                }
            }
            JobOp::Place | JobOp::Simulate => {
                if na != 1 || np != 1 {
                    return Err(ProtoError::BadField(format!(
                        "{} jobs need exactly one algorithm and one processor count \
                         (got {na} and {np})",
                        op.as_str()
                    )));
                }
            }
            JobOp::Sweep => {
                if na == 0 || np == 0 {
                    return Err(ProtoError::BadField(
                        "sweep jobs need at least one algorithm and one processor count".into(),
                    ));
                }
            }
        }
        Ok(JobSpec {
            op,
            app,
            scale,
            seed,
            protocol,
            algorithms,
            processors,
        })
    }
}

/// A string field with the [`MAX_STRING_BYTES`] bound applied; `None`
/// when absent or not a string.
fn bounded_string(doc: &JsonValue, key: &str) -> Result<Option<String>, ProtoError> {
    match doc.get(key).and_then(JsonValue::as_str) {
        None => Ok(None),
        Some("") => Err(ProtoError::BadField(format!("job {key} is empty"))),
        Some(s) if s.len() > MAX_STRING_BYTES => Err(ProtoError::BadField(format!(
            "job {key} is {} bytes; the limit is {MAX_STRING_BYTES}",
            s.len()
        ))),
        Some(s) => Ok(Some(s.to_owned())),
    }
}

/// A bounded list of bounded strings; absent means empty.
fn string_list(doc: &JsonValue, key: &str) -> Result<Vec<String>, ProtoError> {
    let Some(v) = doc.get(key) else {
        return Ok(Vec::new());
    };
    let items = v
        .as_array()
        .ok_or_else(|| ProtoError::BadField(format!("job field {key:?} is not an array")))?;
    if items.len() > MAX_LIST_ITEMS {
        return Err(ProtoError::BadField(format!(
            "job {key} claims {} entries; the limit is {MAX_LIST_ITEMS}",
            items.len()
        )));
    }
    items
        .iter()
        .map(|item| match item.as_str() {
            Some("") => Err(ProtoError::BadField(format!("{key} entry is empty"))),
            Some(s) if s.len() > MAX_STRING_BYTES => Err(ProtoError::BadField(format!(
                "{key} entry is {} bytes; the limit is {MAX_STRING_BYTES}",
                s.len()
            ))),
            Some(s) => Ok(s.to_owned()),
            None => Err(ProtoError::BadField(format!("{key} entry is not a string"))),
        })
        .collect()
}

/// A bounded list of processor counts; absent means empty.
fn uint_list(doc: &JsonValue, key: &str) -> Result<Vec<usize>, ProtoError> {
    let Some(v) = doc.get(key) else {
        return Ok(Vec::new());
    };
    let items = v
        .as_array()
        .ok_or_else(|| ProtoError::BadField(format!("job field {key:?} is not an array")))?;
    if items.len() > MAX_LIST_ITEMS {
        return Err(ProtoError::BadField(format!(
            "job {key} claims {} entries; the limit is {MAX_LIST_ITEMS}",
            items.len()
        )));
    }
    items
        .iter()
        .map(|item| match item.as_u64() {
            Some(n) if (1..=MAX_PROCESSORS).contains(&n) => Ok(n as usize),
            Some(n) => Err(ProtoError::BadField(format!(
                "{key} entry {n} is outside 1..={MAX_PROCESSORS}"
            ))),
            None => Err(ProtoError::BadField(format!(
                "{key} entry is not an unsigned integer"
            ))),
        })
        .collect()
}

/// One parsed service request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job (journaled before acknowledgment).
    Submit(JobSpec),
    /// Health/status snapshot: queue depth, metrics, fault counters.
    Status,
    /// Look up a job's current state and (if finished) result.
    Result {
        /// The job id returned by submit.
        id: u64,
    },
    /// Block until a job finishes or the timeout elapses.
    Wait {
        /// The job id returned by submit.
        id: u64,
        /// How long to wait, capped at [`MAX_WAIT_MS`].
        timeout_ms: u64,
    },
    /// Begin a graceful drain: stop accepting, finish in-flight work.
    Shutdown,
}

/// Parses one frame (without its newline) into a request.
///
/// # Errors
///
/// A typed [`ProtoError`]; never panics, never over-allocates.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized {
            limit: MAX_FRAME_BYTES,
        });
    }
    let body = line.trim_end_matches(['\r', '\n']);
    let doc = json::parse(body).map_err(ProtoError::Syntax)?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(SERVICE_SCHEMA) => {}
        Some(other) => {
            return Err(ProtoError::Schema(format!(
                "request is schema {other:?}, not {SERVICE_SCHEMA:?}"
            )))
        }
        None => return Err(ProtoError::Schema("request carries no schema field".into())),
    }
    let fields = doc
        .as_object()
        .ok_or_else(|| ProtoError::Syntax("request is not an object".into()))?;
    let op = doc
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ProtoError::UnknownOp("request has no op field".into()))?;
    let allowed: &[&str] = match op {
        "submit" => &["schema", "op", "job"],
        "wait" => &["schema", "op", "id", "timeout_ms"],
        "result" => &["schema", "op", "id"],
        "status" | "shutdown" => &["schema", "op"],
        other => return Err(ProtoError::UnknownOp(format!("{other:?}"))),
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(ProtoError::BadField(format!(
                "unknown field {key:?} for op {op:?}"
            )));
        }
    }
    let id = || {
        doc.get("id")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ProtoError::BadField("field \"id\" is not an unsigned integer".into()))
    };
    match op {
        "submit" => {
            let job = doc
                .get("job")
                .ok_or_else(|| ProtoError::BadField("submit needs a job object".into()))?;
            Ok(Request::Submit(JobSpec::from_doc(job)?))
        }
        "status" => Ok(Request::Status),
        "result" => Ok(Request::Result { id: id()? }),
        "wait" => {
            let timeout_ms = match doc.get("timeout_ms") {
                None => 0,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ProtoError::BadField("field \"timeout_ms\" is not an unsigned integer".into())
                })?,
            };
            if timeout_ms > MAX_WAIT_MS {
                return Err(ProtoError::BadField(format!(
                    "timeout_ms {timeout_ms} exceeds the {MAX_WAIT_MS} ms limit"
                )));
            }
            Ok(Request::Wait {
                id: id()?,
                timeout_ms,
            })
        }
        "shutdown" => Ok(Request::Shutdown),
        _ => unreachable!("op validated above"),
    }
}

/// Reads one newline-terminated frame from `reader` with the frame
/// bound enforced *during* the read — a hostile peer streaming
/// gigabytes without a newline costs at most [`MAX_FRAME_BYTES`] of
/// buffer before the typed error comes back.
///
/// Returns `Ok(None)` on a clean EOF before any frame bytes.
///
/// # Errors
///
/// [`ProtoError::Oversized`] past the bound, [`ProtoError::Truncated`]
/// on EOF mid-frame, [`ProtoError::Syntax`] on invalid UTF-8 or I/O
/// failure.
pub fn read_frame<R: BufRead>(reader: R) -> Result<Option<String>, ProtoError> {
    let mut buf = Vec::new();
    let mut limited = std::io::Read::take(reader, (MAX_FRAME_BYTES + 1) as u64);
    let n = limited
        .read_until(b'\n', &mut buf)
        .map_err(|e| ProtoError::Syntax(format!("read failed: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        // Either the limiter cut us off (oversized) or the stream
        // ended mid-frame (truncated).
        return Err(if buf.len() > MAX_FRAME_BYTES {
            ProtoError::Oversized {
                limit: MAX_FRAME_BYTES,
            }
        } else {
            ProtoError::Truncated
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ProtoError::Syntax("frame is not valid UTF-8".into()))
}

/// Counters and distributions the placement service exposes through
/// its `status` response. Plain data — the service owns the single
/// mutable copy behind its state lock.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue (journaled and acknowledged).
    pub accepted: u64,
    /// Submits shed because the queue was at capacity.
    pub rejected_overload: u64,
    /// Submits refused because the service was draining.
    pub rejected_draining: u64,
    /// Frames that failed protocol parsing.
    pub rejected_malformed: u64,
    /// Submits answered straight from the result cache.
    pub cache_hits: u64,
    /// Jobs that ran to a journaled result.
    pub completed: u64,
    /// Jobs that ended in a journaled permanent failure.
    pub failed: u64,
    /// Queue depth sampled at every submit (accepted or shed).
    pub queue_depth: Histogram,
    /// Wall-clock milliseconds per completed job.
    pub job_wall_ms: Histogram,
}

impl ServiceMetrics {
    /// All counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the metrics as a JSON object value onto `w`, including
    /// the fault counters the caller accumulated alongside.
    pub fn write_json(&self, w: &mut JsonWriter, faults: &FaultCounters) {
        w.begin_object();
        w.field_u64("accepted", self.accepted);
        w.field_u64("rejected_overload", self.rejected_overload);
        w.field_u64("rejected_draining", self.rejected_draining);
        w.field_u64("rejected_malformed", self.rejected_malformed);
        w.field_u64("cache_hits", self.cache_hits);
        w.field_u64("completed", self.completed);
        w.field_u64("failed", self.failed);
        w.key("queue_depth");
        self.queue_depth.write_json(w);
        w.key("job_wall_ms");
        self.job_wall_ms.write_json(w);
        w.key("faults");
        faults.write_json(w);
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn submit_line(job: &str) -> String {
        format!("{{\"schema\": \"{SERVICE_SCHEMA}\", \"op\": \"submit\", \"job\": {job}}}")
    }

    const SIM_JOB: &str = "{\"op\": \"simulate\", \"app\": \"water\", \"scale\": 0.002, \
                           \"seed\": 3, \"algorithms\": [\"LOAD-BAL\"], \"processors\": [4]}";

    #[test]
    fn submit_round_trips() {
        let req = parse_request(&submit_line(SIM_JOB)).unwrap();
        let Request::Submit(spec) = req else {
            panic!("not a submit")
        };
        assert_eq!(spec.op, JobOp::Simulate);
        assert_eq!(spec.app, "water");
        assert_eq!(spec.algorithms, vec!["LOAD-BAL".to_owned()]);
        assert_eq!(spec.processors, vec![4]);
        assert_eq!(spec.protocol, None);
        // Canonicalization is stable and itself strictly parseable.
        let canon = spec.canonical_json();
        assert!(json::parse(&canon).is_ok());
        let respec = JobSpec::from_doc(&json::parse(&canon).unwrap()).unwrap();
        assert_eq!(respec, spec);
        assert_eq!(respec.canonical_json(), canon);
    }

    #[test]
    fn control_ops_parse() {
        for (op, want) in [("status", Request::Status), ("shutdown", Request::Shutdown)] {
            let line = format!("{{\"schema\": \"{SERVICE_SCHEMA}\", \"op\": \"{op}\"}}");
            assert_eq!(parse_request(&line).unwrap(), want);
        }
        let line = format!("{{\"schema\": \"{SERVICE_SCHEMA}\", \"op\": \"result\", \"id\": 7}}");
        assert_eq!(parse_request(&line).unwrap(), Request::Result { id: 7 });
        let line = format!(
            "{{\"schema\": \"{SERVICE_SCHEMA}\", \"op\": \"wait\", \"id\": 7, \
             \"timeout_ms\": 100}}"
        );
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Wait {
                id: 7,
                timeout_ms: 100
            }
        );
    }

    #[test]
    fn schema_and_op_are_enforced() {
        assert!(matches!(
            parse_request("{\"schema\": \"placesim-service-v9\", \"op\": \"status\"}"),
            Err(ProtoError::Schema(_))
        ));
        assert!(matches!(
            parse_request("{\"op\": \"status\"}"),
            Err(ProtoError::Schema(_))
        ));
        let line = format!("{{\"schema\": \"{SERVICE_SCHEMA}\", \"op\": \"explode\"}}");
        assert!(matches!(
            parse_request(&line),
            Err(ProtoError::UnknownOp(_))
        ));
    }

    #[test]
    fn unknown_and_out_of_bound_fields_are_rejected() {
        // Unknown top-level field.
        let line = format!("{{\"schema\": \"{SERVICE_SCHEMA}\", \"op\": \"status\", \"x\": 1}}");
        assert!(matches!(parse_request(&line), Err(ProtoError::BadField(_))));
        // Unknown job field.
        let bad = SIM_JOB.replace("\"seed\": 3", "\"seed\": 3, \"nice\": true");
        assert!(matches!(
            parse_request(&submit_line(&bad)),
            Err(ProtoError::BadField(m)) if m.contains("nice")
        ));
        // Lying lengths: a processor count beyond the cap.
        let bad = SIM_JOB.replace("[4]", "[1048576]");
        assert!(matches!(
            parse_request(&submit_line(&bad)),
            Err(ProtoError::BadField(_))
        ));
        // Zero processors.
        let bad = SIM_JOB.replace("[4]", "[0]");
        assert!(matches!(
            parse_request(&submit_line(&bad)),
            Err(ProtoError::BadField(_))
        ));
        // Scale out of range.
        for bad_scale in ["0.0", "-1.0", "11.0"] {
            let bad = SIM_JOB.replace("0.002", bad_scale);
            assert!(
                matches!(
                    parse_request(&submit_line(&bad)),
                    Err(ProtoError::BadField(_))
                ),
                "scale {bad_scale} accepted"
            );
        }
        // Wait timeout beyond the cap.
        let line = format!(
            "{{\"schema\": \"{SERVICE_SCHEMA}\", \"op\": \"wait\", \"id\": 1, \
             \"timeout_ms\": 600001}}"
        );
        assert!(matches!(parse_request(&line), Err(ProtoError::BadField(_))));
    }

    #[test]
    fn op_shapes_are_enforced() {
        // analyze with a grid.
        let bad = SIM_JOB.replace("simulate", "analyze");
        assert!(parse_request(&submit_line(&bad)).is_err());
        // simulate with two algorithms.
        let bad = SIM_JOB.replace("[\"LOAD-BAL\"]", "[\"LOAD-BAL\", \"RANDOM\"]");
        assert!(parse_request(&submit_line(&bad)).is_err());
        // sweep with an empty grid.
        let bad = SIM_JOB
            .replace("simulate", "sweep")
            .replace("[\"LOAD-BAL\"]", "[]");
        assert!(parse_request(&submit_line(&bad)).is_err());
        // sweep with a proper grid parses.
        let good = SIM_JOB
            .replace("simulate", "sweep")
            .replace("[4]", "[2, 4]");
        assert!(parse_request(&submit_line(&good)).is_ok());
    }

    #[test]
    fn frames_are_bounded() {
        // Clean frame.
        let mut r = Cursor::new(b"hello\n".to_vec());
        assert_eq!(read_frame(&mut r).unwrap(), Some("hello".to_owned()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
        // CRLF tolerated.
        let mut r = Cursor::new(b"hi\r\n".to_vec());
        assert_eq!(read_frame(&mut r).unwrap(), Some("hi".to_owned()));
        // Truncated.
        let mut r = Cursor::new(b"no newline".to_vec());
        assert_eq!(read_frame(&mut r), Err(ProtoError::Truncated));
        // Oversized: a newline-free flood is cut at the limit.
        let mut r = Cursor::new(vec![b'x'; MAX_FRAME_BYTES + 100]);
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtoError::Oversized { .. })
        ));
        // Junk UTF-8.
        let mut r = Cursor::new(b"\xff\xfe\n".to_vec());
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Syntax(_))));
        // An oversized in-memory line is rejected by parse too.
        let huge = "x".repeat(MAX_FRAME_BYTES + 1);
        assert!(matches!(
            parse_request(&huge),
            Err(ProtoError::Oversized { .. })
        ));
    }

    #[test]
    fn metrics_serialize() {
        let mut m = ServiceMetrics::new();
        m.accepted = 3;
        m.queue_depth.record(1);
        m.queue_depth.record(2);
        let mut faults = FaultCounters::new();
        faults.timeouts = 1;
        faults.abandoned = 1;
        let mut w = JsonWriter::new();
        m.write_json(&mut w, &faults);
        let s = w.finish();
        assert!(json::balanced(&s), "{s}");
        let doc = json::parse(&s).unwrap();
        assert_eq!(doc.get("accepted").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            doc.get("faults")
                .and_then(|f| f.get("abandoned"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }
}
