//! Thread-length sampling.
//!
//! Thread lengths are drawn from a lognormal distribution matched to the
//! spec's mean and coefficient of variation. A lognormal is always
//! positive and reproduces both the near-constant lengths of MP3D/Topopt
//! (CV ≈ 0) and FFT's wild 187.6% deviation without clipping artifacts.

use crate::gen::GenOptions;
use crate::spec::AppSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Minimum thread length in instructions, regardless of scale.
pub const MIN_LENGTH: u64 = 64;

/// Samples one length per thread, deterministically from the options'
/// seed.
pub fn sample_lengths(spec: &AppSpec, opts: &GenOptions) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xD1CE_5EED);
    let mean = spec.thread_length.mean * opts.scale;
    let cv = spec.thread_length.dev_percent / 100.0;
    (0..spec.threads)
        .map(|_| {
            sample_lognormal(&mut rng, mean, cv)
                .round()
                .max(MIN_LENGTH as f64) as u64
        })
        .collect()
}

/// Draws from a lognormal with the given mean and coefficient of
/// variation (`std_dev / mean`). `cv == 0` returns the mean exactly.
fn sample_lognormal(rng: &mut SmallRng, mean: f64, cv: f64) -> f64 {
    if cv <= 0.0 || mean <= 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    let z = standard_normal(rng);
    (mu + sigma2.sqrt() * z).exp()
}

/// Box–Muller standard normal (rand 0.8 ships no normal distribution
/// without the `rand_distr` crate).
fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Granularity, SharingPattern, TargetStat};

    fn spec_with(mean: f64, dev: f64, threads: usize) -> AppSpec {
        AppSpec {
            name: "x",
            granularity: Granularity::Medium,
            threads,
            thread_length: TargetStat::new(mean, dev),
            shared_percent: 50.0,
            refs_per_shared_addr: 10.0,
            data_ratio: 0.3,
            pattern: SharingPattern::UniformAllShare {
                write_fraction: 0.2,
            },
            cache_kb: 64,
            phases: 1,
        }
    }

    #[test]
    fn zero_cv_is_constant() {
        let lens = sample_lengths(&spec_with(5000.0, 0.0, 8), &GenOptions::default());
        assert!(lens.iter().all(|&l| l == 5000), "{lens:?}");
    }

    #[test]
    fn mean_and_cv_are_roughly_matched() {
        let spec = spec_with(100_000.0, 80.0, 400);
        let lens = sample_lengths(&spec, &GenOptions::default());
        let n = lens.len() as f64;
        let mean = lens.iter().sum::<u64>() as f64 / n;
        let var = lens.iter().map(|&l| (l as f64 - mean).powi(2)).sum::<f64>() / n;
        let cv = var.sqrt() / mean;
        assert!((mean / 100_000.0 - 1.0).abs() < 0.25, "mean {mean}");
        assert!((cv / 0.8 - 1.0).abs() < 0.35, "cv {cv}");
    }

    #[test]
    fn scale_multiplies_mean() {
        let spec = spec_with(100_000.0, 0.0, 4);
        let lens = sample_lengths(
            &spec,
            &GenOptions {
                scale: 0.1,
                seed: 1,
            },
        );
        assert!(lens.iter().all(|&l| l == 10_000), "{lens:?}");
    }

    #[test]
    fn minimum_enforced() {
        let spec = spec_with(100.0, 300.0, 64);
        let lens = sample_lengths(
            &spec,
            &GenOptions {
                scale: 0.001,
                seed: 2,
            },
        );
        assert!(lens.iter().all(|&l| l >= MIN_LENGTH));
    }

    #[test]
    fn deterministic() {
        let spec = spec_with(50_000.0, 50.0, 16);
        let o = GenOptions {
            scale: 1.0,
            seed: 77,
        };
        assert_eq!(sample_lengths(&spec, &o), sample_lengths(&spec, &o));
    }
}
