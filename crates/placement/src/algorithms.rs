//! The paper's placement algorithms as a single dispatchable enum.

use crate::engine::{cluster, EngineOptions, LoadConstraint, ScoreMode};
use crate::error::PlacementError;
use crate::map::PlacementMap;
use crate::metrics::{
    CoherenceMetric, MaxWritesMetric, MinInvsMetric, MinPrivMetric, MinShareMetric,
    ShareAddrMetric, ShareRefsMetric,
};
use placesim_analysis::{SharingAnalysis, SymMatrix};
use placesim_trace::ProgramTrace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The `+LB` tolerance: combined cluster load may exceed the ideal
/// per-processor load by this fraction (the paper's "typically 10%").
pub const LB_TOLERANCE: f64 = 0.10;

/// Every thread-placement algorithm evaluated by the paper.
///
/// Names match the paper's §2 list; `*Lb` are the load-balancing variants
/// of item 8, and [`PlacementAlgorithm::CoherenceTraffic`] is the §4.2
/// "best possible" placement built from dynamically measured coherence
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // each variant is described by `description`
pub enum PlacementAlgorithm {
    ShareRefs,
    ShareAddr,
    MinPriv,
    MinInvs,
    MaxWrites,
    MinShare,
    ShareRefsLb,
    ShareAddrLb,
    MinPrivLb,
    MinInvsLb,
    MaxWritesLb,
    MinShareLb,
    LoadBal,
    Random,
    CoherenceTraffic,
}

impl PlacementAlgorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [PlacementAlgorithm; 15] = [
        PlacementAlgorithm::ShareRefs,
        PlacementAlgorithm::ShareAddr,
        PlacementAlgorithm::MinPriv,
        PlacementAlgorithm::MinInvs,
        PlacementAlgorithm::MaxWrites,
        PlacementAlgorithm::MinShare,
        PlacementAlgorithm::ShareRefsLb,
        PlacementAlgorithm::ShareAddrLb,
        PlacementAlgorithm::MinPrivLb,
        PlacementAlgorithm::MinInvsLb,
        PlacementAlgorithm::MaxWritesLb,
        PlacementAlgorithm::MinShareLb,
        PlacementAlgorithm::LoadBal,
        PlacementAlgorithm::Random,
        PlacementAlgorithm::CoherenceTraffic,
    ];

    /// The statically driven algorithms compared in Figures 2–4 (i.e.
    /// everything except the coherence-traffic oracle).
    pub const STATIC: [PlacementAlgorithm; 14] = [
        PlacementAlgorithm::ShareRefs,
        PlacementAlgorithm::ShareAddr,
        PlacementAlgorithm::MinPriv,
        PlacementAlgorithm::MinInvs,
        PlacementAlgorithm::MaxWrites,
        PlacementAlgorithm::MinShare,
        PlacementAlgorithm::ShareRefsLb,
        PlacementAlgorithm::ShareAddrLb,
        PlacementAlgorithm::MinPrivLb,
        PlacementAlgorithm::MinInvsLb,
        PlacementAlgorithm::MaxWritesLb,
        PlacementAlgorithm::MinShareLb,
        PlacementAlgorithm::LoadBal,
        PlacementAlgorithm::Random,
    ];

    /// The six sharing-based base algorithms (paper §2 items 1–6).
    pub const SHARING_BASED: [PlacementAlgorithm; 6] = [
        PlacementAlgorithm::ShareRefs,
        PlacementAlgorithm::ShareAddr,
        PlacementAlgorithm::MinPriv,
        PlacementAlgorithm::MinInvs,
        PlacementAlgorithm::MaxWrites,
        PlacementAlgorithm::MinShare,
    ];

    /// The paper's name for the algorithm (e.g. `"SHARE-REFS+LB"`).
    pub fn paper_name(self) -> &'static str {
        match self {
            PlacementAlgorithm::ShareRefs => "SHARE-REFS",
            PlacementAlgorithm::ShareAddr => "SHARE-ADDR",
            PlacementAlgorithm::MinPriv => "MIN-PRIV",
            PlacementAlgorithm::MinInvs => "MIN-INVS",
            PlacementAlgorithm::MaxWrites => "MAX-WRITES",
            PlacementAlgorithm::MinShare => "MIN-SHARE",
            PlacementAlgorithm::ShareRefsLb => "SHARE-REFS+LB",
            PlacementAlgorithm::ShareAddrLb => "SHARE-ADDR+LB",
            PlacementAlgorithm::MinPrivLb => "MIN-PRIV+LB",
            PlacementAlgorithm::MinInvsLb => "MIN-INVS+LB",
            PlacementAlgorithm::MaxWritesLb => "MAX-WRITES+LB",
            PlacementAlgorithm::MinShareLb => "MIN-SHARE+LB",
            PlacementAlgorithm::LoadBal => "LOAD-BAL",
            PlacementAlgorithm::Random => "RANDOM",
            PlacementAlgorithm::CoherenceTraffic => "COHERENCE",
        }
    }

    /// One-line description of the clustering criterion.
    pub fn description(self) -> &'static str {
        match self {
            PlacementAlgorithm::ShareRefs => "maximize shared references among co-located threads",
            PlacementAlgorithm::ShareAddr => "maximize shared references per shared address",
            PlacementAlgorithm::MinPriv => {
                "maximize shared references, minimize private addresses per processor"
            }
            PlacementAlgorithm::MinInvs => {
                "minimize cross-processor references that can cause invalidations"
            }
            PlacementAlgorithm::MaxWrites => {
                "maximize write-shared references among co-located threads"
            }
            PlacementAlgorithm::MinShare => "worst case: minimize shared references per processor",
            PlacementAlgorithm::ShareRefsLb
            | PlacementAlgorithm::ShareAddrLb
            | PlacementAlgorithm::MinPrivLb
            | PlacementAlgorithm::MinInvsLb
            | PlacementAlgorithm::MaxWritesLb
            | PlacementAlgorithm::MinShareLb => {
                "base sharing criterion filtered by a 10% load-balance bound"
            }
            PlacementAlgorithm::LoadBal => "perfect load balance by dynamic thread length (LPT)",
            PlacementAlgorithm::Random => "thread-balanced random placement (baseline)",
            PlacementAlgorithm::CoherenceTraffic => {
                "cluster by dynamically measured coherence traffic (oracle)"
            }
        }
    }

    /// `true` for the sharing-based algorithms and their `+LB` variants.
    pub fn is_sharing_based(self) -> bool {
        !matches!(
            self,
            PlacementAlgorithm::LoadBal | PlacementAlgorithm::Random
        )
    }

    /// `true` for the `+LB` variants.
    pub fn is_lb_variant(self) -> bool {
        matches!(
            self,
            PlacementAlgorithm::ShareRefsLb
                | PlacementAlgorithm::ShareAddrLb
                | PlacementAlgorithm::MinPrivLb
                | PlacementAlgorithm::MinInvsLb
                | PlacementAlgorithm::MaxWritesLb
                | PlacementAlgorithm::MinShareLb
        )
    }

    /// The base algorithm of a `+LB` variant (identity otherwise).
    pub fn base(self) -> PlacementAlgorithm {
        match self {
            PlacementAlgorithm::ShareRefsLb => PlacementAlgorithm::ShareRefs,
            PlacementAlgorithm::ShareAddrLb => PlacementAlgorithm::ShareAddr,
            PlacementAlgorithm::MinPrivLb => PlacementAlgorithm::MinPriv,
            PlacementAlgorithm::MinInvsLb => PlacementAlgorithm::MinInvs,
            PlacementAlgorithm::MaxWritesLb => PlacementAlgorithm::MaxWrites,
            PlacementAlgorithm::MinShareLb => PlacementAlgorithm::MinShare,
            other => other,
        }
    }

    /// Runs the algorithm: places `inputs`' threads onto `processors`.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::ZeroProcessors`] / [`PlacementError::TooManyProcessors`]
    ///   for impossible shapes,
    /// * [`PlacementError::MissingTraffic`] if
    ///   [`PlacementAlgorithm::CoherenceTraffic`] is run without a traffic
    ///   matrix,
    /// * [`PlacementError::DimensionMismatch`] if an input has the wrong
    ///   dimension.
    pub fn place(
        self,
        inputs: &PlacementInputs<'_>,
        processors: usize,
    ) -> Result<PlacementMap, PlacementError> {
        self.place_with_mode(inputs, processors, ScoreMode::Cached)
    }

    /// Like [`place`](Self::place) with an explicit engine
    /// [`ScoreMode`]. [`ScoreMode::Fresh`] recomputes every candidate
    /// score from the thread matrices — the reference the differential
    /// tests compare the cached default against.
    ///
    /// # Errors
    ///
    /// Same as [`place`](Self::place).
    pub fn place_with_mode(
        self,
        inputs: &PlacementInputs<'_>,
        processors: usize,
        score_mode: ScoreMode,
    ) -> Result<PlacementMap, PlacementError> {
        inputs.validate()?;
        let t = inputs.thread_count();
        if processors == 0 {
            return Err(PlacementError::ZeroProcessors);
        }
        if processors > t {
            return Err(PlacementError::TooManyProcessors {
                threads: t,
                processors,
            });
        }

        let load = self.is_lb_variant().then_some(LoadConstraint {
            lengths: inputs.lengths,
            tolerance: LB_TOLERANCE,
        });
        let options = EngineOptions {
            load,
            score_mode,
            ..EngineOptions::default()
        };
        let sharing = inputs.sharing;

        let clusters = match self.base() {
            PlacementAlgorithm::ShareRefs => cluster(
                &ShareRefsMetric {
                    refs: sharing.pair_refs_matrix(),
                },
                t,
                processors,
                options,
            )?,
            PlacementAlgorithm::ShareAddr => cluster(
                &ShareAddrMetric {
                    refs: sharing.pair_refs_matrix(),
                    addrs: sharing.pair_addrs_matrix(),
                },
                t,
                processors,
                options,
            )?,
            PlacementAlgorithm::MinPriv => {
                let private: Vec<u64> = sharing
                    .per_thread()
                    .iter()
                    .map(|s| s.private_addrs)
                    .collect();
                cluster(
                    &MinPrivMetric {
                        refs: sharing.pair_refs_matrix(),
                        private_addrs: &private,
                    },
                    t,
                    processors,
                    options,
                )?
            }
            PlacementAlgorithm::MinInvs => cluster(
                &MinInvsMetric {
                    write_refs: sharing.pair_write_refs_matrix(),
                },
                t,
                processors,
                options,
            )?,
            PlacementAlgorithm::MaxWrites => cluster(
                &MaxWritesMetric {
                    write_refs: sharing.pair_write_refs_matrix(),
                },
                t,
                processors,
                options,
            )?,
            PlacementAlgorithm::MinShare => cluster(
                &MinShareMetric {
                    refs: sharing.pair_refs_matrix(),
                },
                t,
                processors,
                options,
            )?,
            PlacementAlgorithm::LoadBal => lpt(inputs.lengths, processors),
            PlacementAlgorithm::Random => random_balanced(t, processors, inputs.seed),
            PlacementAlgorithm::CoherenceTraffic => {
                let traffic = inputs.traffic.ok_or(PlacementError::MissingTraffic)?;
                if traffic.dim() != t {
                    return Err(PlacementError::DimensionMismatch {
                        what: "traffic matrix",
                        expected: t,
                        found: traffic.dim(),
                    });
                }
                cluster(&CoherenceMetric { traffic }, t, processors, options)?
            }
            _ => unreachable!("base() never returns an Lb variant"),
        };
        PlacementMap::from_clusters(clusters)
    }
}

impl fmt::Display for PlacementAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The program characteristics a placement algorithm consumes.
#[derive(Debug, Clone, Copy)]
pub struct PlacementInputs<'a> {
    /// Static sharing analysis of the program.
    pub sharing: &'a SharingAnalysis,
    /// Per-thread dynamic lengths in instructions (for LOAD-BAL and `+LB`).
    pub lengths: &'a [u64],
    /// Measured coherence-traffic matrix (only for
    /// [`PlacementAlgorithm::CoherenceTraffic`]).
    pub traffic: Option<&'a SymMatrix<u64>>,
    /// Seed for [`PlacementAlgorithm::Random`].
    pub seed: u64,
}

impl<'a> PlacementInputs<'a> {
    /// Creates inputs with no traffic matrix and the default seed.
    pub fn new(sharing: &'a SharingAnalysis, lengths: &'a [u64]) -> Self {
        PlacementInputs {
            sharing,
            lengths,
            traffic: None,
            seed: 0x5EED,
        }
    }

    /// Sets the coherence-traffic matrix.
    pub fn with_traffic(mut self, traffic: &'a SymMatrix<u64>) -> Self {
        self.traffic = Some(traffic);
        self
    }

    /// Sets the seed used by RANDOM.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of threads described by these inputs.
    pub fn thread_count(&self) -> usize {
        self.sharing.thread_count()
    }

    fn validate(&self) -> Result<(), PlacementError> {
        if self.lengths.len() != self.sharing.thread_count() {
            return Err(PlacementError::DimensionMismatch {
                what: "thread lengths",
                expected: self.sharing.thread_count(),
                found: self.lengths.len(),
            });
        }
        Ok(())
    }
}

/// Extracts per-thread instruction lengths from a program trace, in the
/// form [`PlacementInputs`] expects.
pub fn thread_lengths(prog: &ProgramTrace) -> Vec<u64> {
    prog.threads().iter().map(|t| t.instr_len()).collect()
}

/// Longest-processing-time-first load balancing: threads sorted by
/// descending length, each assigned to the currently least-loaded
/// processor. This is the paper's LOAD-BAL — it balances *instructions*,
/// not thread counts.
fn lpt(lengths: &[u64], processors: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(lengths[i]), i));
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); processors];
    let mut loads = vec![0u64; processors];
    for i in order {
        let target = (0..processors)
            .min_by_key(|&p| (loads[p], p))
            .expect("processors > 0");
        clusters[target].push(i);
        loads[target] += lengths[i];
    }
    clusters
}

/// Thread-balanced random placement: shuffle thread ids with a
/// deterministic xorshift generator, deal them round-robin.
fn random_balanced(t: usize, processors: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut ids: Vec<usize> = (0..t).collect();
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for i in (1..ids.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        ids.swap(i, j);
    }
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); processors];
    for (k, id) in ids.into_iter().enumerate() {
        clusters[k % processors].push(id);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, MemRef, ThreadId, ThreadTrace};

    /// Four threads: 0,1 share address A heavily; 2,3 share address B.
    /// Thread lengths are skewed: 0 and 2 are long.
    fn inputs_fixture() -> (SharingAnalysis, Vec<u64>) {
        let mk = |addr: u64, instrs: usize| -> ThreadTrace {
            let mut t = ThreadTrace::new();
            for i in 0..instrs {
                t.push(MemRef::instr(Address::new(4 * i as u64)));
            }
            for _ in 0..10 {
                t.push(MemRef::write(Address::new(addr)));
            }
            t
        };
        let prog = ProgramTrace::new(
            "fixture",
            vec![mk(0xA0, 100), mk(0xA0, 10), mk(0xB0, 100), mk(0xB0, 10)],
        );
        let lengths = thread_lengths(&prog);
        (SharingAnalysis::measure(&prog), lengths)
    }

    #[test]
    fn share_refs_colocates_sharers() {
        let (sharing, lengths) = inputs_fixture();
        let inputs = PlacementInputs::new(&sharing, &lengths);
        let map = PlacementAlgorithm::ShareRefs.place(&inputs, 2).unwrap();
        assert_eq!(
            map.processor_of(ThreadId::new(0)),
            map.processor_of(ThreadId::new(1))
        );
        assert_eq!(
            map.processor_of(ThreadId::new(2)),
            map.processor_of(ThreadId::new(3))
        );
        assert!(map.is_thread_balanced());
    }

    #[test]
    fn min_share_separates_sharers() {
        let (sharing, lengths) = inputs_fixture();
        let inputs = PlacementInputs::new(&sharing, &lengths);
        let map = PlacementAlgorithm::MinShare.place(&inputs, 2).unwrap();
        assert_ne!(
            map.processor_of(ThreadId::new(0)),
            map.processor_of(ThreadId::new(1))
        );
    }

    #[test]
    fn load_bal_balances_lengths() {
        let (sharing, lengths) = inputs_fixture();
        let inputs = PlacementInputs::new(&sharing, &lengths);
        let map = PlacementAlgorithm::LoadBal.place(&inputs, 2).unwrap();
        // Lengths 100,10,100,10 → each processor gets one long + one short.
        let loads = map.loads(&lengths);
        assert_eq!(loads, vec![110, 110]);
    }

    #[test]
    fn lb_variant_sacrifices_sharing_for_load() {
        let (sharing, lengths) = inputs_fixture();
        let inputs = PlacementInputs::new(&sharing, &lengths);
        let map = PlacementAlgorithm::ShareRefsLb.place(&inputs, 2).unwrap();
        // Pure SHARE-REFS would pair (0,1): load 110 vs 110?? No: lengths
        // 100+10=110 on each — actually (0,1) is load-balanced here. Use
        // imbalance check instead: the +LB result must be within the
        // tolerance of ideal whenever possible.
        assert!(map.load_imbalance(&lengths) <= 1.10 + 1e-9);
    }

    #[test]
    fn random_is_thread_balanced_and_seeded() {
        let (sharing, lengths) = inputs_fixture();
        let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(7);
        let a = PlacementAlgorithm::Random.place(&inputs, 2).unwrap();
        let b = PlacementAlgorithm::Random.place(&inputs, 2).unwrap();
        assert_eq!(a, b, "same seed, same placement");
        assert!(a.is_thread_balanced());

        let c = PlacementAlgorithm::Random
            .place(&PlacementInputs::new(&sharing, &lengths).with_seed(8), 2)
            .unwrap();
        // Different seeds *may* coincide on 4 threads, but thread-balance
        // must always hold.
        assert!(c.is_thread_balanced());
    }

    #[test]
    fn coherence_requires_traffic() {
        let (sharing, lengths) = inputs_fixture();
        let inputs = PlacementInputs::new(&sharing, &lengths);
        assert_eq!(
            PlacementAlgorithm::CoherenceTraffic
                .place(&inputs, 2)
                .unwrap_err(),
            PlacementError::MissingTraffic
        );

        let mut traffic = SymMatrix::new(4, 0u64);
        traffic.set(0, 3, 100);
        traffic.set(1, 2, 100);
        let inputs = inputs.with_traffic(&traffic);
        let map = PlacementAlgorithm::CoherenceTraffic
            .place(&inputs, 2)
            .unwrap();
        assert_eq!(
            map.processor_of(ThreadId::new(0)),
            map.processor_of(ThreadId::new(3))
        );
    }

    #[test]
    fn traffic_dimension_checked() {
        let (sharing, lengths) = inputs_fixture();
        let bad = SymMatrix::new(3, 0u64);
        let inputs = PlacementInputs::new(&sharing, &lengths).with_traffic(&bad);
        assert!(matches!(
            PlacementAlgorithm::CoherenceTraffic.place(&inputs, 2),
            Err(PlacementError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn lengths_dimension_checked() {
        let (sharing, _) = inputs_fixture();
        let short = vec![1u64, 2];
        let inputs = PlacementInputs::new(&sharing, &short);
        assert!(matches!(
            PlacementAlgorithm::ShareRefs.place(&inputs, 2),
            Err(PlacementError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn all_algorithms_place_every_thread_once() {
        let (sharing, lengths) = inputs_fixture();
        let mut traffic = SymMatrix::new(4, 0u64);
        traffic.set(0, 1, 5);
        let inputs = PlacementInputs::new(&sharing, &lengths).with_traffic(&traffic);
        for algo in PlacementAlgorithm::ALL {
            for p in 1..=4 {
                let map = algo.place(&inputs, p).unwrap_or_else(|e| {
                    panic!("{algo} with p={p} failed: {e}");
                });
                assert_eq!(map.thread_count(), 4, "{algo} p={p}");
                assert_eq!(map.processor_count(), p, "{algo} p={p}");
            }
        }
    }

    #[test]
    fn names_and_metadata() {
        assert_eq!(PlacementAlgorithm::ShareRefs.paper_name(), "SHARE-REFS");
        assert_eq!(PlacementAlgorithm::ShareRefsLb.to_string(), "SHARE-REFS+LB");
        assert!(PlacementAlgorithm::ShareRefsLb.is_lb_variant());
        assert!(!PlacementAlgorithm::LoadBal.is_lb_variant());
        assert!(PlacementAlgorithm::MinShare.is_sharing_based());
        assert!(!PlacementAlgorithm::Random.is_sharing_based());
        assert_eq!(
            PlacementAlgorithm::MaxWritesLb.base(),
            PlacementAlgorithm::MaxWrites
        );
        assert_eq!(PlacementAlgorithm::ALL.len(), 15);
        assert_eq!(PlacementAlgorithm::STATIC.len(), 14);
        for a in PlacementAlgorithm::ALL {
            assert!(!a.description().is_empty());
        }
    }

    #[test]
    fn lpt_ties_are_deterministic() {
        let clusters = lpt(&[5, 5, 5, 5], 2);
        assert_eq!(clusters, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn errors_on_bad_shapes() {
        let (sharing, lengths) = inputs_fixture();
        let inputs = PlacementInputs::new(&sharing, &lengths);
        assert_eq!(
            PlacementAlgorithm::ShareRefs.place(&inputs, 0).unwrap_err(),
            PlacementError::ZeroProcessors
        );
        assert_eq!(
            PlacementAlgorithm::LoadBal.place(&inputs, 5).unwrap_err(),
            PlacementError::TooManyProcessors {
                threads: 4,
                processors: 5
            }
        );
    }
}
