//! Output sinks: JSONL appenders and atomic single-file writes.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Writes `contents` to `path` atomically: the bytes go to a `.tmp`
/// sibling first and are renamed over the target only once fully
/// flushed, so a failure mid-write never leaves a truncated file for a
/// later reader to trip over.
///
/// # Errors
///
/// Propagates the underlying filesystem error; on failure the partial
/// temporary file is removed (best-effort) and `path` is untouched.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// The `.tmp` sibling path used by [`write_atomic`] (exposed so callers
/// doing streaming writes can use the same write-then-rename protocol).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// An append-only JSON-lines sink: one complete JSON document per line.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncating) the sink file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Appends one JSON document as a line. Interior newlines are not
    /// checked — callers emit single-line JSON (the [`crate::json`]
    /// writer never emits newlines).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn append(&mut self, json: &str) -> io::Result<()> {
        self.out.write_all(json.as_bytes())?;
        self.out.write_all(b"\n")
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flush error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("placesim-obs-test-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_roundtrip() {
        let path = tmp_dir().join("atomic.json");
        write_atomic(&path, b"{\"a\": 1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\": 1}");
        assert!(!tmp_sibling(&path).exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tmp_sibling_appends_suffix() {
        let p = Path::new("/x/y/out.json");
        assert_eq!(tmp_sibling(p), Path::new("/x/y/out.json.tmp"));
    }

    #[test]
    fn jsonl_appends_lines() {
        let path = tmp_dir().join("log.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.append("{\"n\": 1}").unwrap();
        sink.append("{\"n\": 2}").unwrap();
        sink.flush().unwrap();
        drop(sink);
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(crate::json::balanced));
        fs::remove_file(&path).unwrap();
    }
}
